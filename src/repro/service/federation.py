"""The long-lived multi-user federation engine.

:class:`PolygenFederation` is the system the paper's Figure 2 sketches — a
Polygen Query Processor serving many users over a federation of autonomous
local databases — realized as one long-lived object:

- it **owns the federation**: the polygen schema, the (thread-safe) LQP
  registry, the identity resolver, the domain-transform registry, and an
  interned :class:`~repro.storage.tag_pool.TagPool` every materialized
  relation shares, so equal tag sets intern once across all queries;
- it **owns the machinery**: one shared
  :class:`~repro.pqp.pool.WorkerPool` (a single long-lived worker
  thread per local database — the paper's one-connection-per-source
  assumption, with zero per-query thread churn) and a bounded coordinator
  pool that drives up to ``max_concurrent_queries`` plan DAGs at once;
- clients open lightweight :class:`~repro.service.session.Session`\\ s and
  ``submit()`` SQL text, algebra (text or tree), or pre-built plans;
  behaviour knobs are a per-call
  :class:`~repro.service.options.QueryOptions` resolved against the
  federation's defaults rather than constructor flags.

Intra-query semantics are untouched: each submitted plan runs through the
very same serial or DAG-driven executor code path, so results — data,
headings *and tags* — are bit-for-bit what the blocking
:class:`~repro.pqp.processor.PolygenQueryProcessor` produces (that facade
is, in fact, now a single-session federation).  What changes is
*inter-query* behaviour: plans from many sessions execute concurrently,
their local rows interleaving on the shared per-database workers, which is
exactly the serialization the scheduling model charges for.

:meth:`PolygenFederation.stats` reports queries served, per-LQP busy-time
utilization (aggregated from every completed trace's measured row timings)
and live pool occupancy; :meth:`PolygenFederation.validate` feeds a
finished query's trace straight into
:func:`repro.pqp.schedule.validate_against_trace` so the cost model can be
checked against what the service actually did.
"""

from __future__ import annotations

import dataclasses
import itertools
import re
import threading
import time
import weakref
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Optional, Tuple, Union

if TYPE_CHECKING:  # pragma: no cover - typing only; service never needs
    # to import the network layer unless remote LQPs are registered.
    from repro.net.transport import TransportStats

from repro.algebra_lang.parser import parse_expression
from repro.catalog.schema import PolygenSchema
from repro.core.expression import Expression
from repro.errors import ExecutionError, QueryCancelledError, ServiceClosedError
from repro.integration.domains import TransformRegistry, default_registry
from repro.integration.identity import IdentityResolver
from repro.lqp.cost import CalibratedCostModel
from repro.lqp.registry import LQPRegistry
from repro.obs.events import EventLog, slow_query_event
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Tracer, use_span
from repro.pqp.calibrate import CostCalibrator
from repro.pqp.executor import ExecutionTrace, Executor
from repro.pqp.fingerprint import PlanFingerprints, fingerprint_plan, splice_cached
from repro.pqp.interpreter import PolygenOperationInterpreter
from repro.pqp.matrix import (
    IntermediateOperationMatrix,
    Operation,
    PolygenOperationMatrix,
)
from repro.pqp.optimizer import OptimizationReport, QueryOptimizer, ShapeChoice
from repro.pqp.result import QueryResult
from repro.pqp.runtime import ConcurrentExecutor
from repro.pqp.shard import shard_retrieves
from repro.pqp.syntax_analyzer import SyntaxAnalyzer
from repro.service.cache import CacheStats, ResultCache
from repro.service.cursor import Cursor
from repro.service.handle import QueryHandle
from repro.service.options import QueryOptions
from repro.pqp.pool import WorkerPool
from repro.service.session import Session
from repro.storage.tag_pool import GLOBAL_TAG_POOL, TagPool
from repro.translate.translator import translate_sql

__all__ = ["PolygenFederation", "FederationStats"]

#: Anything ``submit()`` accepts as a query.
Query = Union[str, Expression, IntermediateOperationMatrix]

_SQL_RE = re.compile(r"\s*select\b", re.IGNORECASE)


@dataclass(frozen=True)
class FederationStats:
    """A point-in-time snapshot of a federation's service counters."""

    queries_submitted: int
    queries_completed: int
    queries_failed: int
    queries_cancelled: int
    queries_active: int
    sessions_open: int
    uptime_seconds: float
    #: Live worker-thread names — constant across queries once warmed up.
    worker_threads: Tuple[str, ...]
    #: database → jobs queued or running on its worker right now.
    pool_occupancy: Dict[str, int]
    #: location (LQP name or "PQP") → measured busy seconds, summed over
    #: every completed query's trace timings.
    busy_by_location: Dict[str, float]
    #: database → local queries answered (from the registry's accounting).
    lqp_queries: Dict[str, int]
    #: database → tuples shipped to the PQP.
    lqp_tuples_shipped: Dict[str, int]
    #: database → cost model fitted from this federation's own traces.
    calibrated_models: Dict[str, CalibratedCostModel] = dataclasses.field(
        default_factory=dict
    )
    #: database → transport counters, for every network-backed LQP
    #: (:class:`~repro.net.client.RemoteLQP`) in the registry: requests,
    #: bytes, chunks, retries/timeouts, in-flight high-water mark.
    remote_transports: Dict[str, "TransportStats"] = dataclasses.field(
        default_factory=dict
    )
    #: Mean relative error of the calibrated model's makespan predictions
    #: over recent queries (``None`` before the first calibrated query).
    cost_model_error: Optional[float] = None
    #: Queries whose traces have fed the calibrator so far.
    plans_calibrated: int = 0
    #: Semantic result cache counters: hits, misses, subtree splices,
    #: evictions, precise invalidations, resident entries and bytes.
    cache: Optional[CacheStats] = None

    def utilization(self) -> Dict[str, float]:
        """location → fraction of the federation's uptime it spent busy.

        Can exceed 1.0: serial-engine queries run their local rows on the
        coordinating thread rather than the pool, so several threads may
        be inside the same location at once.
        """
        if self.uptime_seconds <= 0:
            return {location: 0.0 for location in self.busy_by_location}
        return {
            location: busy / self.uptime_seconds
            for location, busy in self.busy_by_location.items()
        }

    def render(self) -> str:
        lines = [
            f"queries: {self.queries_submitted} submitted, "
            f"{self.queries_completed} completed, {self.queries_failed} failed, "
            f"{self.queries_cancelled} cancelled, {self.queries_active} active",
            f"sessions open: {self.sessions_open}; uptime {self.uptime_seconds:.2f}s",
            f"pool: {len(self.worker_threads)} worker thread(s)",
        ]
        utilization = self.utilization()
        for location in sorted(self.busy_by_location):
            lines.append(
                f"  {location:>4s}: busy {self.busy_by_location[location]:.3f}s "
                f"({utilization[location]:.1%} of uptime), "
                f"{self.lqp_queries.get(location, 0)} local queries, "
                f"{self.lqp_tuples_shipped.get(location, 0)} tuples shipped, "
                f"{self.pool_occupancy.get(location, 0)} queued"
            )
        if self.calibrated_models:
            error = (
                f"{self.cost_model_error:.1%}"
                if self.cost_model_error is not None
                else "n/a"
            )
            lines.append(
                f"cost models: {len(self.calibrated_models)} calibrated over "
                f"{self.plans_calibrated} plans, makespan prediction error {error}"
            )
            for name in sorted(self.calibrated_models):
                model = self.calibrated_models[name]
                lines.append(
                    f"  {name:>4s}: per_query {model.per_query * 1e3:.2f}ms, "
                    f"per_tuple {model.per_tuple * 1e6:.2f}us "
                    f"({model.observations} obs)"
                )
        if self.remote_transports:
            lines.append(f"remote transports: {len(self.remote_transports)}")
            for name in sorted(self.remote_transports):
                lines.append(
                    f"  {name:>4s}: {self.remote_transports[name].render()}"
                )
        if self.cache is not None:
            lines.append(self.cache.render())
        return "\n".join(lines)


class PolygenFederation:
    """A long-lived PQP server: sessions in front, shared workers behind."""

    def __init__(
        self,
        schema: PolygenSchema,
        registry: LQPRegistry,
        resolver: IdentityResolver | None = None,
        transforms: TransformRegistry | None = None,
        defaults: QueryOptions | None = None,
        max_concurrent_queries: int = 8,
        tag_pool: TagPool | None = None,
        calibration_path: str | None = None,
        result_cache: ResultCache | None = None,
        source_max_age: Optional[float] = 60.0,
        event_log: EventLog | None = None,
    ):
        """``source_max_age`` bounds (in seconds) how stale a cached result
        may get when it depends on a registered source whose capabilities
        report ``signals_writes=False`` — an external SQLite file or log
        directory another process may extend without a
        ``notify_refresh``.  Precise invalidation still governs
        well-behaved sources; an explicit
        :meth:`ResultCache.set_max_age` for a database overrides this
        default for it.  ``None`` disables the safety net entirely."""
        if max_concurrent_queries < 1:
            raise ValueError(
                f"max_concurrent_queries must be >= 1, got {max_concurrent_queries}"
            )
        if source_max_age is not None and source_max_age <= 0:
            raise ValueError("source_max_age must be positive seconds or None")
        self.schema = schema
        self.registry = registry
        self.resolver = resolver or IdentityResolver.identity()
        self.transforms = transforms or default_registry()
        self.defaults = defaults or QueryOptions()
        self.tag_pool = tag_pool or GLOBAL_TAG_POOL
        self.max_concurrent_queries = max_concurrent_queries

        self._analyzer = SyntaxAnalyzer()
        #: Learns per-LQP cost models from every completed query's trace;
        #: the cost-based optimizer (``optimize="cost"``) plans with them.
        #: With a ``calibration_path``, evidence survives restarts: loaded
        #: here, saved on :meth:`close` — so a freshly started federation
        #: plans with its predecessor's measured models instead of the
        #: static defaults.
        self.calibration_path = calibration_path
        self.calibrator = CostCalibrator()
        if calibration_path is not None:
            self.calibrator.load(calibration_path)
        #: The semantic result cache (queries opt in via
        #: ``QueryOptions.cache``).  Subscribed to the registry's refresh
        #: notifications, so any ``notify_refresh(D)`` — a write hook, a
        #: re-registration, :meth:`invalidate` — precisely evicts the
        #: entries whose tag sets consult ``D``.
        # Not `result_cache or ...`: an empty ResultCache has len() 0 and
        # is falsy, which would silently discard a caller-supplied cache.
        self.cache = result_cache if result_cache is not None else ResultCache()
        self.source_max_age = source_max_age
        self._cache_listener = self.cache.invalidate
        self.registry.subscribe(self._cache_listener)
        self._pool = WorkerPool()
        self._coordinators = ThreadPoolExecutor(
            max_workers=max_concurrent_queries, thread_name_prefix="pqp-coordinator"
        )
        self._lock = threading.Lock()
        self._interpreters: Dict[bool, PolygenOperationInterpreter] = {}
        self._optimizers: Dict[Tuple[bool, bool], QueryOptimizer] = {}
        self._executors: Dict[Tuple[str, object], Executor] = {}
        #: Weak: a session a client drops without close() must not be
        #: pinned (with its last handles and results) for the life of a
        #: long-running federation.
        self._sessions: "weakref.WeakSet[Session]" = weakref.WeakSet()
        self._session_counter = itertools.count(1)
        self._query_counter = itertools.count(1)
        self._started_at = time.perf_counter()
        self._closed = False
        #: Observability: one tracer (a root ``query`` span per query, with
        #: remote LQP spans stitched in), one metrics registry (the single
        #: source of truth behind :meth:`stats` and :meth:`metrics_text`),
        #: one structured event log (the slow-query log's sink).
        self.tracer = Tracer("federation")
        self.metrics = MetricsRegistry()
        self.events = event_log if event_log is not None else EventLog()
        self._exporters: list = []
        self._m_submitted = self.metrics.counter(
            "polygen_queries_submitted_total",
            "Queries accepted by submit() or run().",
        )
        self._m_finished = self.metrics.counter(
            "polygen_queries_total",
            "Finished queries by terminal status (completed/failed/cancelled).",
        )
        self._m_active = self.metrics.gauge(
            "polygen_queries_active", "Queries currently planning or executing."
        )
        self._m_latency = self.metrics.histogram(
            "polygen_query_seconds", "End-to-end query wall time in seconds."
        )
        self._m_sources = self.metrics.counter(
            "polygen_source_consulted_total",
            "Completed queries whose answer consulted each source tag.",
        )
        self._m_session_queries = self.metrics.counter(
            "polygen_session_queries_total", "Completed queries per session."
        )
        self._m_busy = self.metrics.counter(
            "polygen_busy_seconds_total",
            "Measured busy seconds per execution location (LQP name or PQP).",
        )
        self._m_slow = self.metrics.counter(
            "polygen_slow_queries_total",
            "Queries that crossed their slow_query_ms threshold.",
        )
        self._m_sessions_opened = self.metrics.counter(
            "polygen_sessions_opened_total", "Sessions opened."
        )
        self.metrics.add_collector(self._collect_metrics)

    # -- lifecycle ----------------------------------------------------------

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def pool(self) -> WorkerPool:
        """The shared per-database worker pool (for introspection)."""
        return self._pool

    def close(self) -> None:
        """Shut the service down cleanly: close every session (cancelling
        unfinished queries), drain the coordinators, join the worker
        threads, and close any remote connections the registry dialed for
        ``polygen://`` URL registrations.  Idempotent; ``submit`` raises
        afterwards."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            sessions = list(self._sessions)
        for session in sessions:
            session.close()
        for exporter in self._exporters:
            exporter.close()
        self._coordinators.shutdown(wait=True)
        self._pool.close(wait=True)
        # The registry may be shared with (or outlive) this federation:
        # detach our cache's invalidator rather than poking a dead cache.
        self.registry.unsubscribe(self._cache_listener)
        if self.calibration_path is not None:
            try:
                self.calibrator.save(self.calibration_path)
            except OSError:
                # Best-effort: losing the snapshot only costs re-learning.
                pass
        self.registry.close()

    def __enter__(self) -> "PolygenFederation":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- sessions -----------------------------------------------------------

    def session(self, name: str | None = None, **option_overrides) -> Session:
        """Open a lightweight session.  ``option_overrides`` specialize the
        federation's default :class:`QueryOptions` for every query this
        session submits (each still overridable per ``submit``)."""
        with self._lock:
            if self._closed:
                raise ServiceClosedError("federation is closed")
            number = next(self._session_counter)
            session = Session(
                self,
                name or f"session-{number}",
                self.defaults.replace(**option_overrides),
            )
            self._sessions.add(session)
        self._m_sessions_opened.inc()
        return session

    def _forget_session(self, session: Session) -> None:
        with self._lock:
            self._sessions.discard(session)

    # -- cache invalidation ---------------------------------------------------

    def invalidate(self, database: str) -> int:
        """Report that ``database``'s data changed; returns how many cache
        entries were evicted.

        Precision is the polygen guarantee: an entry is evicted iff its tag
        set — originating *and* intermediate sources of its rows, plus
        every database its plan subtree shipped from or consulted — contains
        ``database``.  Entries that never touched it are untouched.  The
        notification routes through the registry so any other subscriber
        (another federation sharing the registry) hears it too.
        """
        before = self.cache.stats().invalidated
        self.registry.notify_refresh(database)
        return self.cache.stats().invalidated - before

    # -- pipeline stages (shared by sessions and the compat facade) ---------

    def analyze(
        self, expression: Expression | str
    ) -> Tuple[Expression, PolygenOperationMatrix]:
        """Expression (or bracket-notation text) → POM (paper, Table 1)."""
        tree = parse_expression(expression) if isinstance(expression, str) else expression
        return tree, self._analyzer.analyze(tree)

    def plan(
        self, pom: PolygenOperationMatrix, options: QueryOptions | None = None
    ) -> IntermediateOperationMatrix:
        """POM → IOM via the two-pass interpreter (paper, Tables 2–3)."""
        options = options or self.defaults
        return self._interpreter_for(options).interpret(pom)

    def optimize(
        self, iom: IntermediateOperationMatrix, options: QueryOptions | None = None
    ) -> Tuple[
        IntermediateOperationMatrix, Union[OptimizationReport, ShapeChoice, None]
    ]:
        """Optimize a plan under ``options`` (no-op when ``optimize=False``).

        ``optimize="cost"`` runs the cost-based mode: candidate shapes are
        scored by simulated makespan under this federation's *calibrated*
        per-LQP cost models (static defaults before any query has been
        observed) and the cheapest is executed.  Returns a
        :class:`~repro.pqp.optimizer.ShapeChoice` as the report then.
        """
        options = options or self.defaults
        if not options.optimize:
            return iom, None
        optimizer = self._optimizer_for(options)
        if options.optimize != "cost":
            return optimizer.optimize(iom)
        local_costs = self.calibrator.local_costs()
        kwargs = {"registry": self.registry}
        if local_costs:
            kwargs["local_costs"] = local_costs
            # Unobserved databases get the fleet average rather than the
            # static default, keeping every cost in measured seconds.
            kwargs["default_cost"] = CalibratedCostModel(
                per_query=sum(m.per_query for m in local_costs.values())
                / len(local_costs),
                per_tuple=sum(m.per_tuple for m in local_costs.values())
                / len(local_costs),
            )
        rate = self.calibrator.pqp_cost_per_tuple()
        if rate is not None:
            kwargs["pqp_cost_per_tuple"] = rate
        elif local_costs:
            # Calibrated local models are in measured seconds; mixing in
            # the static (abstract-unit) PQP default would let bogus PQP
            # cost dominate the ranking.  With no PQP row observed yet,
            # charge the PQP nothing rather than something in wrong units.
            kwargs["pqp_cost_per_tuple"] = 0.0
        return optimizer.optimize_cost_based(iom, **kwargs)

    def _interpreter_for(self, options: QueryOptions) -> PolygenOperationInterpreter:
        key = options.materialize_full_scheme
        with self._lock:
            interpreter = self._interpreters.get(key)
            if interpreter is None:
                interpreter = PolygenOperationInterpreter(
                    self.schema, materialize_full_scheme=key
                )
                self._interpreters[key] = interpreter
            return interpreter

    def _optimizer_for(self, options: QueryOptions) -> QueryOptimizer:
        key = (options.pushdown, options.prune_projections)
        with self._lock:
            optimizer = self._optimizers.get(key)
            if optimizer is None:
                optimizer = QueryOptimizer(
                    schema=self.schema,
                    resolver=self.resolver,
                    pushdown=options.pushdown,
                    prune_projections=options.prune_projections,
                    # Capability-aware pushdown: selections stay at the PQP
                    # for registered engines without native selection.
                    registry=self.registry,
                )
                self._optimizers[key] = optimizer
            return optimizer

    def executor_for(self, options: QueryOptions | None = None) -> Executor:
        """The (cached, reentrant) execution engine ``options`` selects.

        Concurrent engines dispatch into the federation's shared worker
        pool; serial engines run on the submitting coordinator thread.
        """
        options = options or self.defaults
        key = (options.engine, options.policy)
        with self._lock:
            executor = self._executors.get(key)
            if executor is None:
                if options.engine == "concurrent":
                    executor = ConcurrentExecutor(
                        self.schema,
                        self.registry,
                        resolver=self.resolver,
                        transforms=self.transforms,
                        policy=options.policy,
                        tag_pool=self.tag_pool,
                        pool=self._pool,
                    )
                else:
                    executor = Executor(
                        self.schema,
                        self.registry,
                        resolver=self.resolver,
                        transforms=self.transforms,
                        policy=options.policy,
                        tag_pool=self.tag_pool,
                    )
                self._executors[key] = executor
            return executor

    # -- submission ---------------------------------------------------------

    @staticmethod
    def _classify(query: Query) -> str:
        if isinstance(query, IntermediateOperationMatrix):
            return "plan"
        if isinstance(query, Expression):
            return "algebra"
        if isinstance(query, str):
            return "sql" if _SQL_RE.match(query) else "algebra"
        raise TypeError(
            "submit() accepts SQL text, a polygen algebra expression "
            f"(text or tree), or an IntermediateOperationMatrix; got {type(query).__name__}"
        )

    def _submit(self, session: Session, query: Query, options: QueryOptions) -> QueryHandle:
        kind = self._classify(query)
        with self._lock:
            if self._closed:
                raise ServiceClosedError("federation is closed")
            query_id = next(self._query_counter)
        cancel = threading.Event()
        cursor = Cursor(fetch_size=options.fetch_size)
        handle = QueryHandle(query_id, session, cursor, cancel)
        try:
            future = self._coordinators.submit(
                self._run_query, query, kind, options, cancel, cursor,
                session.name,
            )
        except RuntimeError:
            # Lost the race with close(): the coordinator pool shut down
            # between our closed-check and the submit.  Nothing was counted
            # yet (counters are monotone and only move after a successful
            # dispatch), so just surface the service-level error.
            raise ServiceClosedError("federation is closed") from None
        self._m_submitted.inc()
        self._m_active.inc()
        future.add_done_callback(self._settle)
        handle._bind(future)
        return handle

    def run(self, query: Query, options: QueryOptions | None = None) -> QueryResult:
        """Execute ``query`` synchronously on the *calling* thread.

        The single-user path: no coordinator is involved (so a process
        that only ever calls ``run`` — e.g. through the
        :class:`~repro.pqp.processor.PolygenQueryProcessor` facade —
        holds no service threads beyond the worker pool the concurrent
        engine warms up).  Counted in :meth:`stats` like any submission.
        """
        options = options or self.defaults
        kind = self._classify(query)
        with self._lock:
            if self._closed:
                raise ServiceClosedError("federation is closed")
            next(self._query_counter)
        self._m_submitted.inc()
        self._m_active.inc()
        try:
            # No cursor (nobody could read it before this returns) and no
            # cancel event (nobody else holds a handle to set it) — the
            # executors then skip batch slicing and cancellation polling.
            result = self._run_query(query, kind, options, None, None)
        except BaseException as exc:
            self._m_active.dec()
            status = (
                "cancelled"
                if isinstance(exc, QueryCancelledError)
                else "failed"
            )
            self._m_finished.inc(status=status)
            raise
        self._m_active.dec()
        self._m_finished.inc(status="completed")
        return result

    def _run_query(
        self,
        query: Query,
        kind: str,
        options: QueryOptions,
        cancel: threading.Event | None,
        cursor: Cursor | None,
        session: str | None = None,
    ) -> QueryResult:
        """One query, end to end, under a root ``query`` span.

        Wraps :meth:`_run_pipeline` with the per-query observability:
        opens the trace (every stage/row/remote span hangs off the root
        via the ambient contextvar), attaches the finished span set to
        ``result.trace.spans``, records latency/source/busy metrics and
        emits the slow-query event when ``options.slow_query_ms`` is
        crossed.  ``cancel`` and ``cursor`` are ``None`` on the
        synchronous :meth:`run` path; ``session`` labels the metrics."""
        began = time.perf_counter()
        root = self.tracer.start(
            "query",
            kind=kind,
            engine=options.engine,
            **({"session": session} if session else {}),
        )
        try:
            if cancel is not None and cancel.is_set():
                raise QueryCancelledError("query cancelled before it started")
            with use_span(root):
                result = self._run_pipeline(query, kind, options, cancel, cursor)
        except BaseException as exc:
            root.end(exc)
            if cursor is not None:
                cursor._fail(exc)
            raise
        root.set(tuples=len(result.relation)).end()
        result.trace.spans = root.trace_spans()
        self._observe_query(result, began, options, session)
        return result

    def _run_pipeline(
        self,
        query: Query,
        kind: str,
        options: QueryOptions,
        cancel: threading.Event | None,
        cursor: Cursor | None,
    ) -> QueryResult:
        """The full pipeline for one query, feeding the cursor (when one
        exists) the moment the plan's result node completes.  Runs with
        the query's root span ambient, so each stage opens a child."""
        sql = translation = tree = pom = report = None
        if kind == "plan":
            # A pre-built IOM executes as given — the paper's
            # "Table 3 as the execution plan, without further
            # optimization"; optimize explicitly first if wanted.
            iom = query
        else:
            if kind == "sql":
                sql = query
                with self.tracer.span("translate"):
                    translation = translate_sql(query, self.schema)
                expression = translation.expression
            else:
                expression = query
            with self.tracer.span("analyze"):
                tree, pom = self.analyze(expression)
            with self.tracer.span("plan"):
                iom = self.plan(pom, options)
            with self.tracer.span("optimize") as opt_span:
                iom, report = self.optimize(iom, options)
                chosen = getattr(report, "chosen", None)
                if chosen is not None:
                    opt_span.set(shape=chosen)
        sharding = None
        if options.shard_width and kind != "plan":
            # Pre-built plans stay verbatim (the paper's "Table 3 as
            # the execution plan"); shard explicitly via
            # repro.pqp.shard for those.
            with self.tracer.span("shard"):
                iom, sharding = shard_retrieves(
                    iom,
                    self.registry,
                    width=options.shard_width,
                    schema=self.schema,
                )
        caching = fingerprints = cache_epoch = None
        if options.cache != "off":
            with self.tracer.span("cache.probe") as probe:
                # Fingerprint the final (optimized, sharded) plan: results
                # cached under one shape key only that shape, and the
                # conflict policy salts every hash.
                fingerprints = fingerprint_plan(iom, options.policy)
                cache_epoch = self.cache.tick()
                hit = (
                    self.cache.lookup(fingerprints.final)
                    if options.cache == "on"
                    else None
                )
                if hit is not None:
                    probe.set(outcome="hit")
                elif options.cache == "on":
                    # Subtree hits: splice cached subplans into the matrix
                    # as pre-materialized CACHED rows, then re-fingerprint
                    # (carried hashes keep untouched rows' keys stable).
                    iom, splice = splice_cached(
                        iom, self.cache.splice_probe, fingerprints, options.policy
                    )
                    if splice.any:
                        caching = splice
                        fingerprints = fingerprint_plan(iom, options.policy)
                    probe.set(outcome="spliced" if splice.any else "miss")
                else:
                    probe.set(outcome="refresh")
            if hit is not None:
                # Whole-plan hit: no executor dispatch at all.  The
                # synthetic trace carries the cached relation and
                # lineage, with no timings (nothing ran).
                trace = ExecutionTrace(
                    relation=hit.relation,
                    results={iom.rows[-1].result.index: hit.relation},
                    lineage=dict(hit.lineage),
                )
                if cursor is not None:
                    cursor._feed(hit.relation)
                return QueryResult(
                    relation=hit.relation,
                    expression=tree,
                    pom=pom,
                    iom=iom,
                    trace=trace,
                    sql=sql,
                    translation=translation,
                    optimization=report,
                    sharding=sharding,
                    cache_hit=True,
                )
        executor = self.executor_for(options)
        with self.tracer.span("execute", engine=options.engine) as exec_span:
            trace = executor.execute(
                iom,
                cancel=cancel,
                on_result=None if cursor is None else cursor._feed,
                on_chunk=None if cursor is None else cursor._feed_chunk,
                stream_chunk_size=options.stream_chunk_size,
                wire_format=options.wire_format,
            )
            exec_span.set(rows=len(iom), tuples=len(trace.relation))
        # Feed the completed trace back into the calibrator so the next
        # cost-based plan is scheduled with fresher models.
        self.calibrator.observe(iom, trace)
        if options.cache != "off":
            with self.tracer.span("cache.store"):
                self._store_results(iom, trace, fingerprints, cache_epoch)
        return QueryResult(
            relation=trace.relation,
            expression=tree,
            pom=pom,
            iom=iom,
            trace=trace,
            sql=sql,
            translation=translation,
            optimization=report,
            sharding=sharding,
            caching=caching,
        )

    def _store_results(
        self,
        iom: IntermediateOperationMatrix,
        trace: ExecutionTrace,
        fingerprints: PlanFingerprints,
        as_of: Optional[int],
    ) -> None:
        """Insert every executed subtree's result into the cache.

        Each entry's tag set is the union of the relation's own
        contributing sources (the polygen harvest: origins and
        intermediates of its surviving rows) and the plan subtree's
        shipped/consulted databases — the superset matters, because a
        result whose rows from ``D`` were all filtered out still *depends*
        on ``D`` and must be evicted when ``D`` changes.  Entries are
        weighted by recompute cost — the measured trace duration or the
        calibrated estimate, whichever is larger — summed over the subtree,
        so GreedyDual eviction keeps what is expensive to rebuild.
        ``as_of`` guards against the stale-fill race (see
        :meth:`ResultCache.put`); entries whose sources include an engine
        that cannot signal its writes additionally carry a TTL
        (:meth:`_staleness_bound`).
        """
        costs = self._recompute_costs(iom, trace)
        for row in iom:
            if row.op is Operation.CACHED:
                continue
            index = row.result.index
            relation = trace.results.get(index)
            lineage = trace.lineages.get(index)
            if relation is None or lineage is None:
                continue
            sources = set(fingerprints.sources[index])
            sources.update(relation.contributing_sources())
            cost = sum(
                costs.get(member, 0.0) for member in fingerprints.subtrees[index]
            )
            self.cache.put(
                fingerprints.by_index[index],
                relation,
                lineage,
                sources,
                cost=cost,
                as_of=as_of,
                max_age=self._staleness_bound(sources),
            )

    def _staleness_bound(self, sources) -> Optional[float]:
        """The TTL (seconds) a cache entry over ``sources`` must carry.

        ``None`` — no bound — when every source either signals its writes
        (``capabilities().signals_writes``, so precise invalidation covers
        it) or has its own explicit :meth:`ResultCache.set_max_age` policy
        (the cache applies that bound itself).  A registered source that
        can neither is capped at the federation's ``source_max_age``; the
        tightest applicable bound wins.
        """
        if self.source_max_age is None:
            return None
        bound = None
        for database in sources:
            if self.cache.max_age_for(database) is not None:
                continue
            if database not in self.registry:
                continue
            if self.registry.get(database).capabilities().signals_writes:
                continue
            if bound is None or self.source_max_age < bound:
                bound = self.source_max_age
        return bound

    def _recompute_costs(
        self, iom: IntermediateOperationMatrix, trace: ExecutionTrace
    ) -> Dict[int, float]:
        """Per-row recompute-cost estimates in seconds (cache weighting)."""
        rate = self.calibrator.pqp_cost_per_tuple() or 0.0
        costs: Dict[int, float] = {}
        for row in iom:
            index = row.result.index
            timing = trace.timings.get(index)
            measured = timing.duration if timing is not None else 0.0
            estimated = 0.0
            if row.is_local:
                model = self.calibrator.model_for(row.el)
                relation = trace.results.get(index)
                if model is not None and relation is not None:
                    estimated = model.cost(1, relation.cardinality)
            else:
                estimated = rate * sum(
                    trace.results[ref.index].cardinality
                    for ref in row.referenced_results()
                    if ref.index in trace.results
                )
            costs[index] = max(measured, estimated)
        return costs

    def _settle(self, future) -> None:
        """Done-callback classifying every query's outcome (including ones
        cancelled before their coordinator ever ran them)."""
        self._m_active.dec()
        if future.cancelled():
            self._m_finished.inc(status="cancelled")
            return
        error = future.exception()
        if error is None:
            self._m_finished.inc(status="completed")
        elif isinstance(error, QueryCancelledError):
            self._m_finished.inc(status="cancelled")
        else:
            self._m_finished.inc(status="failed")

    # -- observability ------------------------------------------------------

    def _observe_query(
        self,
        result: QueryResult,
        began: float,
        options: QueryOptions,
        session: str | None,
    ) -> None:
        """Per-query metrics and the slow-query log, on the success path."""
        elapsed = time.perf_counter() - began
        self._m_latency.observe(elapsed)
        if session:
            self._m_session_queries.inc(session=session)
        busy = result.trace.busy_by_location()
        for location, seconds in busy.items():
            self._m_busy.inc(seconds, location=location)
        sources = self._consulted_sources(result)
        for source in sorted(sources):
            self._m_sources.inc(source=source)
        threshold = options.slow_query_ms
        if threshold is None or elapsed * 1000.0 < threshold:
            return
        self._m_slow.inc()
        self.events.emit(
            "slow_query",
            **slow_query_event(
                query=self._query_text(result),
                elapsed_ms=elapsed * 1000.0,
                threshold_ms=threshold,
                fingerprint=fingerprint_plan(result.iom, options.policy).final,
                shape=self._shape_of(result),
                cache=self._cache_disposition(result, options),
                busy_by_location=busy,
                sources=sorted(sources),
                session=session,
                engine=options.engine,
            ),
        )

    @staticmethod
    def _query_text(result: QueryResult) -> str:
        if result.sql is not None:
            return result.sql
        if result.expression is not None:
            return str(result.expression)
        return "<plan>"

    @staticmethod
    def _consulted_sources(result: QueryResult) -> set:
        """Source tags this query touched: the answer's contributing
        sources (the polygen harvest) plus every database a plan row
        executed against — a source whose rows were all filtered out was
        still *consulted* and must show in the per-source counters."""
        sources = set(result.relation.contributing_sources())
        for row in result.iom:
            if row.is_local and row.el:
                sources.add(row.el)
        return sources

    @staticmethod
    def _shape_of(result: QueryResult) -> Optional[str]:
        report = result.optimization
        if report is None:
            return None
        chosen = getattr(report, "chosen", None)
        return chosen if chosen is not None else "rewritten"

    @staticmethod
    def _cache_disposition(result: QueryResult, options: QueryOptions) -> str:
        if options.cache == "off":
            return "off"
        if result.cache_hit:
            return "hit"
        if result.caching is not None and result.caching.any:
            return "spliced"
        return "miss"

    def _busy_snapshot(self) -> Dict[str, float]:
        return {
            dict(key).get("location", "?"): seconds
            for key, seconds in self._m_busy.samples()
        }

    def _collect_metrics(self, registry: MetricsRegistry) -> None:
        """Scrape-time collector: gauges mirroring the pull-style
        components (pool, cache, LQP accounting, transports, calibrator)
        so one ``render()`` shows the whole federation without those
        components ever importing :mod:`repro.obs`."""
        registry.gauge(
            "polygen_uptime_seconds", "Seconds since the federation started."
        ).set(time.perf_counter() - self._started_at)
        registry.gauge(
            "polygen_sessions_open", "Sessions currently open."
        ).set(len(self._sessions))
        registry.gauge(
            "polygen_worker_threads", "Live per-database worker threads."
        ).set(len(self._pool.thread_names()))
        occupancy = registry.gauge(
            "polygen_pool_queue_depth",
            "Jobs queued or running per database worker group.",
        )
        for database, depth in self._pool.occupancy().items():
            occupancy.set(depth, database=database)
        cache = self.cache.stats()
        registry.gauge(
            "polygen_cache_entries", "Resident result-cache entries."
        ).set(cache.entries)
        registry.gauge(
            "polygen_cache_bytes", "Resident result-cache bytes."
        ).set(cache.bytes)
        events = registry.gauge(
            "polygen_cache_events", "Result-cache lifecycle counters by kind."
        )
        for kind in (
            "hits",
            "misses",
            "splices",
            "insertions",
            "evictions",
            "invalidated",
            "invalidations",
            "expired",
        ):
            events.set(getattr(cache, kind), kind=kind)
        lqp_queries = registry.gauge(
            "polygen_lqp_queries", "Local queries answered per database."
        )
        lqp_tuples = registry.gauge(
            "polygen_lqp_tuples_shipped", "Tuples shipped to the PQP per database."
        )
        for name, stats in self.registry.stats().items():
            lqp_queries.set(stats.queries, database=name)
            lqp_tuples.set(stats.tuples_shipped, database=name)
        transport_fields = (
            "requests",
            "chunks",
            "tuples",
            "bytes_sent",
            "bytes_received",
            "retries",
            "timeouts",
            "reconnects",
            "in_flight_hwm",
        )
        for name, stats in self._remote_transport_stats().items():
            for field in transport_fields:
                registry.gauge(
                    f"polygen_transport_{field}",
                    f"Remote transport {field.replace('_', ' ')} per database.",
                ).set(getattr(stats, field), database=name)
        error = self.calibrator.prediction_error()
        if error is not None:
            registry.gauge(
                "polygen_cost_model_error",
                "Mean relative makespan prediction error.",
            ).set(error)
        registry.gauge(
            "polygen_plans_calibrated", "Traces that have fed the calibrator."
        ).set(self.calibrator.observed_plans)

    def metrics_text(self) -> str:
        """The Prometheus text exposition of every federation metric
        (collectors refreshed first)."""
        return self.metrics.render()

    def serve_metrics(self, host: str = "127.0.0.1", port: int = 0):
        """Start a TCP exposition endpoint for :meth:`metrics_text`;
        returns the :class:`~repro.obs.export.MetricsExporter` (its
        ``address`` is the bound ``(host, port)``).  Closed with the
        federation."""
        from repro.obs.export import MetricsExporter

        exporter = MetricsExporter(self.metrics, host=host, port=port)
        self._exporters.append(exporter)
        return exporter

    def _remote_transport_stats(self) -> Dict[str, "TransportStats"]:
        """database → transport counters for every network-backed LQP.

        Duck-typed on ``transport_stats()`` through the ``.inner``
        decoration chain (accounting/latency wrappers), so the service
        layer needs no import of — and no dependency on — ``repro.net``
        unless remote LQPs are actually registered.
        """
        transports: Dict[str, "TransportStats"] = {}
        for lqp in self.registry:
            inner = lqp
            while inner is not None:
                snapshot = getattr(inner, "transport_stats", None)
                if callable(snapshot):
                    transports[lqp.name] = snapshot()
                    break
                inner = getattr(inner, "inner", None)
        return transports

    def stats(self) -> FederationStats:
        """A snapshot of service counters, pool state and LQP traffic.

        A thin view over :attr:`metrics` — the registry is the single
        source of truth for the query/busy counters; this keeps the
        historical :class:`FederationStats` shape for existing callers.
        """
        lqp_stats = self.registry.stats()
        remote_transports = self._remote_transport_stats()
        calibrated = self.calibrator.local_costs()
        model_error = self.calibrator.prediction_error()
        plans_calibrated = self.calibrator.observed_plans
        with self._lock:
            return FederationStats(
                queries_submitted=int(self._m_submitted.total()),
                queries_completed=int(self._m_finished.value(status="completed")),
                queries_failed=int(self._m_finished.value(status="failed")),
                queries_cancelled=int(self._m_finished.value(status="cancelled")),
                queries_active=int(round(self._m_active.value())),
                sessions_open=len(self._sessions),
                uptime_seconds=time.perf_counter() - self._started_at,
                worker_threads=self._pool.thread_names(),
                pool_occupancy=self._pool.occupancy(),
                busy_by_location=self._busy_snapshot(),
                lqp_queries={name: s.queries for name, s in lqp_stats.items()},
                lqp_tuples_shipped={
                    name: s.tuples_shipped for name, s in lqp_stats.items()
                },
                calibrated_models=calibrated,
                cost_model_error=model_error,
                plans_calibrated=plans_calibrated,
                remote_transports=remote_transports,
                cache=self.cache.stats(),
            )

    def validate(self, result: QueryResult, **schedule_kwargs):
        """Check the scheduling model against a finished query's measured
        trace: simulates ``result.iom`` with :func:`repro.pqp.schedule.
        schedule_plan` (catalog cardinalities from this federation's
        registry) and compares via :func:`repro.pqp.schedule.
        validate_against_trace`."""
        from repro.pqp.schedule import schedule_plan, validate_against_trace

        schedule_kwargs.setdefault("registry", self.registry)
        schedule = schedule_plan(result.iom, result.trace, **schedule_kwargs)
        return validate_against_trace(schedule, result.trace)

    def __repr__(self) -> str:
        state = "closed" if self._closed else "open"
        return (
            f"PolygenFederation({len(self.registry)} databases, "
            f"{len(self._sessions)} sessions, {state})"
        )
