"""Exception hierarchy for the polygen reproduction.

Every error raised by this library derives from :class:`PolygenError`, so
applications can catch the whole family with a single ``except`` clause while
still being able to discriminate the precise failure mode.

The hierarchy mirrors the layers of the system:

- schema/heading problems (:class:`HeadingError` and friends),
- algebra evaluation problems (:class:`AlgebraError` and friends),
- catalog/schema-integration problems (:class:`CatalogError` and friends),
- parsing problems for the two front-end languages (:class:`ParseError`),
- query translation and execution problems (:class:`TranslationError`,
  :class:`ExecutionError`),
- network/transport problems between a PQP and a remote LQP
  (:class:`NetworkError` and friends).
"""

from __future__ import annotations

__all__ = [
    "PolygenError",
    "HeadingError",
    "UnknownAttributeError",
    "DuplicateAttributeError",
    "AttributeCollisionError",
    "DegreeMismatchError",
    "AlgebraError",
    "UnionCompatibilityError",
    "IncomparableTypesError",
    "CoalesceConflictError",
    "InvalidOperandError",
    "CatalogError",
    "UnknownSchemeError",
    "UnknownMappingError",
    "SchemaValidationError",
    "IntegrationError",
    "UnknownTransformError",
    "ParseError",
    "SqlParseError",
    "AlgebraParseError",
    "TranslationError",
    "ExecutionError",
    "QueryCancelledError",
    "ServiceClosedError",
    "UnknownDatabaseError",
    "UnknownRelationError",
    "NetworkError",
    "ProtocolError",
    "ConnectionLostError",
    "RemoteTimeoutError",
    "RemoteQueryError",
    "LocalEngineError",
    "ConstraintViolationError",
]


class PolygenError(Exception):
    """Base class for every error raised by the ``repro`` library."""


# ---------------------------------------------------------------------------
# Heading / schema-shape errors
# ---------------------------------------------------------------------------


class HeadingError(PolygenError):
    """A problem with a relation heading (attribute list)."""


class UnknownAttributeError(HeadingError, KeyError):
    """An attribute name was referenced that the heading does not contain."""

    def __init__(self, attribute: str, heading=None):
        self.attribute = attribute
        self.heading = heading
        detail = f"unknown attribute {attribute!r}"
        if heading is not None:
            detail += f" (heading: {', '.join(heading)})"
        super().__init__(detail)

    def __str__(self) -> str:  # KeyError.__str__ would repr() the message
        return self.args[0]


class DuplicateAttributeError(HeadingError):
    """A heading was constructed with a repeated attribute name."""


class AttributeCollisionError(HeadingError):
    """Two relations being combined share attribute names that must be
    disjoint (e.g. the operands of a Cartesian product)."""


class DegreeMismatchError(HeadingError):
    """A tuple's number of cells does not match its relation's degree."""


# ---------------------------------------------------------------------------
# Algebra errors
# ---------------------------------------------------------------------------


class AlgebraError(PolygenError):
    """A polygen algebra operation was applied to invalid operands."""


class UnionCompatibilityError(AlgebraError):
    """Union/Difference operands are not union-compatible (paper, §II)."""


class IncomparableTypesError(AlgebraError, TypeError):
    """An ordering comparison (``<``, ``<=`` …) was attempted between data of
    incompatible Python types (e.g. a string and an integer)."""


class CoalesceConflictError(AlgebraError):
    """Coalesce met two non-nil, unequal data under ``ConflictPolicy.ERROR``."""

    def __init__(self, left, right, attribute: str | None = None):
        self.left = left
        self.right = right
        self.attribute = attribute
        where = f" in attribute {attribute!r}" if attribute else ""
        super().__init__(f"coalesce conflict{where}: {left!r} != {right!r}")


class InvalidOperandError(AlgebraError):
    """An operator received a structurally invalid operand (wrong arity,
    missing key, literal where an attribute was required, …)."""


# ---------------------------------------------------------------------------
# Catalog / schema-integration errors
# ---------------------------------------------------------------------------


class CatalogError(PolygenError):
    """A problem with the polygen schema / attribute-mapping catalog."""


class UnknownSchemeError(CatalogError, KeyError):
    """A polygen scheme name is not defined in the polygen schema."""

    def __init__(self, name: str):
        self.name = name
        super().__init__(f"unknown polygen scheme {name!r}")

    def __str__(self) -> str:
        return self.args[0]


class UnknownMappingError(CatalogError):
    """No (LD, LS, LA) mapping exists for the requested polygen attribute."""


class SchemaValidationError(CatalogError):
    """A polygen schema failed structural validation."""


class IntegrationError(PolygenError):
    """A schema-integration service (identity/domain mapping) failed."""


class UnknownTransformError(IntegrationError, KeyError):
    """A domain-mapping transform name is not registered."""

    def __init__(self, name: str):
        self.name = name
        super().__init__(f"unknown domain transform {name!r}")

    def __str__(self) -> str:
        return self.args[0]


# ---------------------------------------------------------------------------
# Front-end language errors
# ---------------------------------------------------------------------------


class ParseError(PolygenError):
    """Base class for lexer/parser errors of the front-end languages."""

    def __init__(self, message: str, position: int | None = None, text: str | None = None):
        self.position = position
        self.text = text
        if position is not None:
            message = f"{message} (at offset {position})"
        super().__init__(message)


class SqlParseError(ParseError):
    """The SQL front-end rejected a query string."""


class AlgebraParseError(ParseError):
    """The polygen algebra expression language rejected an expression."""


# ---------------------------------------------------------------------------
# Translation / execution errors
# ---------------------------------------------------------------------------


class TranslationError(PolygenError):
    """The SQL-to-algebra translator or the Polygen Operation Interpreter
    could not map a query onto the polygen schema."""


class ExecutionError(PolygenError):
    """The PQP executor failed to evaluate a query execution plan."""


class QueryCancelledError(ExecutionError):
    """A submitted query was cancelled before it produced its result."""


class ServiceClosedError(ExecutionError):
    """An operation was attempted on a closed federation, session, pool or
    cursor."""


class UnknownDatabaseError(ExecutionError, KeyError):
    """An execution location names a local database with no registered LQP."""

    def __init__(self, name: str):
        self.name = name
        super().__init__(f"no LQP registered for local database {name!r}")

    def __str__(self) -> str:
        return self.args[0]


class UnknownRelationError(ExecutionError, KeyError):
    """A local database does not contain the requested relation."""

    def __init__(self, relation: str, database: str | None = None):
        self.relation = relation
        self.database = database
        where = f" in database {database!r}" if database else ""
        super().__init__(f"unknown local relation {relation!r}{where}")

    def __str__(self) -> str:
        return self.args[0]


# ---------------------------------------------------------------------------
# Network / remote-LQP transport errors
# ---------------------------------------------------------------------------


class NetworkError(ExecutionError):
    """A failure in the PQP↔LQP network layer (:mod:`repro.net`).

    Subclass of :class:`ExecutionError`: to a running plan, a remote source
    that cannot be reached is an execution failure like any other, so
    existing error handling (executor wrapping, handle/cursor surfacing)
    needs no special cases — while callers that care *can* discriminate the
    transport failure modes below.
    """


class ProtocolError(NetworkError):
    """A malformed, oversized, or version-incompatible wire frame."""


class ConnectionLostError(NetworkError):
    """The connection to a remote LQP could not be established, or dropped
    mid-request (including mid-chunk-stream)."""


class RemoteTimeoutError(NetworkError):
    """A remote LQP produced no response frame within the transport's
    timeout.  A best-effort cancel is sent to the server first."""


class RemoteQueryError(NetworkError):
    """The remote LQP executed the request and *failed*; carries the
    server-side error type and message."""

    def __init__(self, error_type: str, message: str, database: str | None = None):
        self.error_type = error_type
        self.database = database
        where = f" at {database!r}" if database else ""
        super().__init__(f"remote LQP{where} raised {error_type}: {message}")


class LocalEngineError(PolygenError):
    """A failure inside the local (untagged) relational engine substrate."""


class ConstraintViolationError(LocalEngineError):
    """A local insert violated a key or schema constraint."""
