"""Warn-once deprecation shims for symbols that moved between modules.

PR 3 split the monolithic processor/runtime modules into dedicated homes
(``QueryResult`` → :mod:`repro.pqp.result`, ``WorkerPool`` →
:mod:`repro.pqp.pool`); the old import paths keep working through module
``__getattr__`` hooks that call :func:`warn_moved`.  Each (old, new) pair
warns exactly once per process — a hot loop importing through the legacy
path should nag, not spam.
"""

from __future__ import annotations

import threading
import warnings

__all__ = ["warn_moved"]

_warned: set = set()
_lock = threading.Lock()


def warn_moved(old: str, new: str) -> None:
    """Emit one :class:`DeprecationWarning` ever for ``old`` → ``new``."""
    with _lock:
        if (old, new) in _warned:
            return
        _warned.add((old, new))
    warnings.warn(
        f"{old} is deprecated; import it from {new} instead",
        DeprecationWarning,
        stacklevel=3,
    )
