"""Reverse mapping: from tagged cells back to local columns.

Observation (3) of the paper's §IV: "From the polygen schema and the
information of (ONAME, {AD, CD}), the polygen query processor can derive
the information that Genentech is from the BNAME column, BUSINESS relation
in the Alumni Database and from the FNAME column, FIRM relation in the
Company Database.  This information can be shown to the user upon request
with a simple mapping."  These helpers are that simple mapping.
"""

from __future__ import annotations

from typing import Tuple

from repro.catalog.mapping import AttributeMapping
from repro.catalog.schema import PolygenSchema
from repro.core.cell import Cell
from repro.core.tags import SourceSet

__all__ = ["local_columns_for", "cell_provenance"]


def local_columns_for(
    schema: PolygenSchema,
    scheme_name: str,
    attribute: str,
    origins: SourceSet,
) -> Tuple[AttributeMapping, ...]:
    """The ``(LD, LS, LA)`` columns a tagged value could have come from.

    Filters the polygen attribute's ``MA`` set down to the mappings whose
    database appears in the cell's originating tag set.
    """
    scheme = schema.scheme(scheme_name)
    return tuple(
        mapping
        for mapping in scheme.mappings(attribute)
        if mapping.database in origins
    )


def cell_provenance(
    schema: PolygenSchema,
    scheme_name: str,
    attribute: str,
    cell: Cell,
) -> str:
    """A human-readable provenance sentence for one cell.

    >>> # "Genentech originates from (AD, BUSINESS, BNAME), (CD, FIRM, FNAME);
    >>> #  intermediate sources: AD, CD"
    """
    columns = local_columns_for(schema, scheme_name, attribute, cell.origins)
    if cell.is_nil:
        origin_text = "has no value (nil)"
    elif columns:
        origin_text = "originates from " + ", ".join(str(m) for m in columns)
    else:
        origin_text = "originates from " + ", ".join(sorted(cell.origins)) or "unknown"
    mediators = ", ".join(sorted(cell.intermediates)) if cell.intermediates else "none"
    subject = "nil" if cell.is_nil else str(cell.datum)
    return f"{subject} {origin_text}; intermediate sources: {mediators}"
