"""Polygen schemes.

A polygen scheme pairs every polygen attribute with its ``MA`` set of local
attribute mappings (paper, §II):

    P = ((PA1, MA1), ..., (PAn, MAn))

The scheme also records the primary key, which the paper underlines in its
schema listings and which drives the Outer Natural Primary Join during
Merge.
"""

from __future__ import annotations

from typing import Dict, Mapping, Sequence, Tuple

from repro.catalog.mapping import AttributeMapping
from repro.core.heading import Heading
from repro.errors import SchemaValidationError, UnknownMappingError

__all__ = ["PolygenScheme"]


class PolygenScheme:
    """One polygen scheme: name, ordered attributes, mappings, primary key.

    >>> scheme = PolygenScheme(
    ...     "PFINANCE",
    ...     {
    ...         "ONAME": [AttributeMapping("CD", "FINANCE", "FNAME")],
    ...         "YEAR": [AttributeMapping("CD", "FINANCE", "YR")],
    ...         "PROFIT": [AttributeMapping("CD", "FINANCE", "PROFIT")],
    ...     },
    ...     primary_key=["ONAME", "YEAR"],
    ... )
    >>> scheme.attributes
    ('ONAME', 'YEAR', 'PROFIT')
    """

    def __init__(
        self,
        name: str,
        mappings: Mapping[str, Sequence[AttributeMapping]],
        primary_key: Sequence[str] = (),
    ):
        if not name:
            raise SchemaValidationError("polygen scheme name must be non-empty")
        if not mappings:
            raise SchemaValidationError(f"polygen scheme {name!r} has no attributes")
        self.name = name
        self._heading = Heading(tuple(mappings))
        self._mappings: Dict[str, Tuple[AttributeMapping, ...]] = {}
        for attribute, mapping_list in mappings.items():
            entries = tuple(mapping_list)
            if not entries:
                raise SchemaValidationError(
                    f"polygen attribute {name}.{attribute} has an empty mapping set"
                )
            locations = [(m.database, m.relation, m.attribute) for m in entries]
            if len(set(locations)) != len(locations):
                raise SchemaValidationError(
                    f"duplicate local mapping for polygen attribute {name}.{attribute}"
                )
            self._mappings[attribute] = entries
        key = tuple(primary_key)
        for attribute in key:
            if attribute not in self._heading:
                raise SchemaValidationError(
                    f"primary key attribute {attribute!r} not in scheme {name!r}"
                )
        self.primary_key: Tuple[str, ...] = key

    # -- attribute-level lookups ----------------------------------------------

    @property
    def attributes(self) -> Tuple[str, ...]:
        return self._heading.attributes

    @property
    def heading(self) -> Heading:
        return self._heading

    def __contains__(self, attribute: str) -> bool:
        return attribute in self._heading

    def mappings(self, attribute: str) -> Tuple[AttributeMapping, ...]:
        """The ``MA`` set for a polygen attribute."""
        try:
            return self._mappings[attribute]
        except KeyError:
            raise UnknownMappingError(
                f"polygen attribute {self.name}.{attribute} is not defined"
            ) from None

    def is_single_source(self, attribute: str) -> bool:
        """True when ``MA`` has exactly one element — pass one's local-routing
        case (Figure 3)."""
        return len(self.mappings(attribute)) == 1

    def single_mapping(self, attribute: str) -> AttributeMapping:
        entries = self.mappings(attribute)
        if len(entries) != 1:
            raise UnknownMappingError(
                f"polygen attribute {self.name}.{attribute} maps to "
                f"{len(entries)} local attributes, expected exactly one"
            )
        return entries[0]

    # -- relation-level lookups ---------------------------------------------------

    def local_relations(self) -> Tuple[Tuple[str, str], ...]:
        """All distinct ``(LD, LS)`` pairs referenced by this scheme, in
        first-mention order (the order the paper retrieves them in)."""
        seen: Dict[Tuple[str, str], None] = {}
        for attribute in self.attributes:
            for mapping in self._mappings[attribute]:
                seen.setdefault(mapping.location, None)
        return tuple(seen)

    def relations_for(self, attribute: str) -> Tuple[Tuple[str, str], ...]:
        """The ``(LD, LS)`` pairs contributing to one polygen attribute."""
        seen: Dict[Tuple[str, str], None] = {}
        for mapping in self.mappings(attribute):
            seen.setdefault(mapping.location, None)
        return tuple(seen)

    def mappings_at(self, database: str, relation: str) -> Tuple[AttributeMapping, ...]:
        """All mappings of this scheme that live in one local relation."""
        out = []
        for attribute in self.attributes:
            for mapping in self._mappings[attribute]:
                if mapping.location == (database, relation):
                    out.append(mapping)
        return tuple(out)

    def rename_map(self, database: str, relation: str) -> Dict[str, str]:
        """local attribute → polygen attribute for one local relation.

        The executor renames a retrieved local relation with this map so
        every PQP-side operand speaks polygen attribute names.
        """
        out: Dict[str, str] = {}
        for attribute in self.attributes:
            for mapping in self._mappings[attribute]:
                if mapping.location == (database, relation):
                    if mapping.attribute in out:
                        raise SchemaValidationError(
                            f"local attribute {mapping.attribute!r} of "
                            f"{database}.{relation} maps to multiple polygen "
                            f"attributes of {self.name!r}"
                        )
                    out[mapping.attribute] = attribute
        if not out:
            raise UnknownMappingError(
                f"scheme {self.name!r} has no mappings at {database}.{relation}"
            )
        return out

    def transform_map(self, database: str, relation: str) -> Dict[str, str]:
        """local attribute → transform name for one local relation (only
        attributes that declare a transform)."""
        out: Dict[str, str] = {}
        for attribute in self.attributes:
            for mapping in self._mappings[attribute]:
                if mapping.location == (database, relation) and mapping.transform:
                    out[mapping.attribute] = mapping.transform
        return out

    def polygen_attribute_for(self, database: str, relation: str, local_attribute: str) -> str:
        """The paper's ``PA(LS, LA)`` helper (Figure 4, footnote 12): map a
        local column back to its polygen attribute."""
        for attribute in self.attributes:
            for mapping in self._mappings[attribute]:
                if mapping.location == (database, relation) and mapping.attribute == local_attribute:
                    return attribute
        raise UnknownMappingError(
            f"no polygen attribute of {self.name!r} maps to "
            f"{database}.{relation}.{local_attribute}"
        )

    def __repr__(self) -> str:
        return f"PolygenScheme({self.name!r}, attributes={list(self.attributes)!r})"

    def describe(self) -> str:
        """Multi-line rendering in the paper's mapping-table style."""
        lines = [f"The {self.name} Polygen Scheme"]
        for attribute in self.attributes:
            rendered = ", ".join(str(m) for m in self._mappings[attribute])
            marker = "*" if attribute in self.primary_key else ""
            lines.append(f"  {attribute}{marker}: {{{rendered}}}")
        return "\n".join(lines)
