"""Polygen schema (de)serialization.

The paper's central engineering claim is that its translation mechanism
"separates the mapping algorithm from the mapping data.  As a result,
adding a new database to the existing system does not require modifying
the existing procedural view definitions" (§I).  For that claim to hold in
practice the mapping data must live *outside* the program — so the catalog
round-trips through plain dictionaries / JSON documents.

Document shape::

    {
      "schemes": [
        {
          "name": "PORGANIZATION",
          "primary_key": ["ONAME"],
          "attributes": [
            {"name": "ONAME",
             "mappings": [
               {"database": "AD", "relation": "BUSINESS", "attribute": "BNAME"},
               {"database": "CD", "relation": "FIRM", "attribute": "FNAME"}]},
            {"name": "HEADQUARTERS",
             "mappings": [
               {"database": "CD", "relation": "FIRM", "attribute": "HQ",
                "transform": "city_state_to_state"}]}
          ]
        }
      ]
    }
"""

from __future__ import annotations

import json
from typing import Any, Dict, List

from repro.catalog.mapping import AttributeMapping
from repro.catalog.schema import PolygenSchema
from repro.catalog.scheme import PolygenScheme
from repro.errors import SchemaValidationError

__all__ = [
    "schema_to_dict",
    "schema_from_dict",
    "schema_to_json",
    "schema_from_json",
]


def _mapping_to_dict(mapping: AttributeMapping) -> Dict[str, Any]:
    out: Dict[str, Any] = {
        "database": mapping.database,
        "relation": mapping.relation,
        "attribute": mapping.attribute,
    }
    if mapping.transform:
        out["transform"] = mapping.transform
    return out


def _mapping_from_dict(document: Dict[str, Any], context: str) -> AttributeMapping:
    try:
        return AttributeMapping(
            database=document["database"],
            relation=document["relation"],
            attribute=document["attribute"],
            transform=document.get("transform"),
        )
    except KeyError as missing:
        raise SchemaValidationError(
            f"mapping in {context} lacks required key {missing}"
        ) from None


def schema_to_dict(schema: PolygenSchema) -> Dict[str, Any]:
    """Serialize a polygen schema to a plain dictionary."""
    return {
        "schemes": [
            {
                "name": scheme.name,
                "primary_key": list(scheme.primary_key),
                "attributes": [
                    {
                        "name": attribute,
                        "mappings": [
                            _mapping_to_dict(m) for m in scheme.mappings(attribute)
                        ],
                    }
                    for attribute in scheme.attributes
                ],
            }
            for scheme in schema
        ]
    }


def schema_from_dict(document: Dict[str, Any]) -> PolygenSchema:
    """Rebuild a polygen schema from :func:`schema_to_dict`'s shape.

    Validation errors carry enough context to locate the offending entry
    in a hand-edited document.
    """
    if not isinstance(document, dict) or "schemes" not in document:
        raise SchemaValidationError('a schema document needs a top-level "schemes" list')
    schema = PolygenSchema()
    for scheme_doc in document["schemes"]:
        name = scheme_doc.get("name")
        if not name:
            raise SchemaValidationError("every scheme needs a non-empty name")
        attributes = scheme_doc.get("attributes")
        if not attributes:
            raise SchemaValidationError(f"scheme {name!r} declares no attributes")
        mappings: Dict[str, List[AttributeMapping]] = {}
        for attribute_doc in attributes:
            attribute = attribute_doc.get("name")
            if not attribute:
                raise SchemaValidationError(f"an attribute of {name!r} lacks a name")
            mappings[attribute] = [
                _mapping_from_dict(m, f"{name}.{attribute}")
                for m in attribute_doc.get("mappings", [])
            ]
        schema.add(
            PolygenScheme(
                name, mappings, primary_key=scheme_doc.get("primary_key", [])
            )
        )
    return schema


def schema_to_json(schema: PolygenSchema, indent: int = 2) -> str:
    """Serialize to a JSON string."""
    return json.dumps(schema_to_dict(schema), indent=indent, sort_keys=False)


def schema_from_json(text: str) -> PolygenSchema:
    """Parse a JSON schema document."""
    try:
        document = json.loads(text)
    except json.JSONDecodeError as exc:
        raise SchemaValidationError(f"invalid schema JSON: {exc}") from exc
    return schema_from_dict(document)
