"""The polygen schema: a named set of polygen schemes (paper, §II)."""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, Tuple

from repro.catalog.scheme import PolygenScheme
from repro.errors import SchemaValidationError, UnknownSchemeError

__all__ = ["PolygenSchema"]


class PolygenSchema:
    """A set ``{P1, ..., PN}`` of polygen schemes with name lookup.

    The schema is the sole input (besides the operation matrix itself) to
    the Polygen Operation Interpreter — the "mapping data" that the paper's
    data-driven translation separates from the mapping algorithm.
    """

    def __init__(self, schemes: Iterable[PolygenScheme] = ()):
        self._schemes: Dict[str, PolygenScheme] = {}
        for scheme in schemes:
            self.add(scheme)

    def add(self, scheme: PolygenScheme) -> "PolygenSchema":
        if scheme.name in self._schemes:
            raise SchemaValidationError(f"duplicate polygen scheme {scheme.name!r}")
        self._schemes[scheme.name] = scheme
        return self

    # -- lookup ----------------------------------------------------------------

    def scheme(self, name: str) -> PolygenScheme:
        try:
            return self._schemes[name]
        except KeyError:
            raise UnknownSchemeError(name) from None

    def __contains__(self, name: str) -> bool:
        return name in self._schemes

    def __iter__(self) -> Iterator[PolygenScheme]:
        return iter(self._schemes.values())

    def __len__(self) -> int:
        return len(self._schemes)

    def names(self) -> Tuple[str, ...]:
        return tuple(self._schemes)

    def databases(self) -> Tuple[str, ...]:
        """Every local database referenced by any scheme, in first-use order."""
        seen: Dict[str, None] = {}
        for scheme in self:
            for database, _ in scheme.local_relations():
                seen.setdefault(database, None)
        return tuple(seen)

    def schemes_using(self, database: str) -> Tuple[PolygenScheme, ...]:
        """Schemes with at least one mapping into ``database``."""
        return tuple(
            scheme
            for scheme in self
            if any(ld == database for ld, _ in scheme.local_relations())
        )

    # -- validation -------------------------------------------------------------

    def validate_against(self, relation_catalog: Dict[str, Dict[str, Tuple[str, ...]]]) -> None:
        """Check every mapping against a catalog of local relations.

        ``relation_catalog`` maps database name → relation name → attribute
        tuple.  Raises :class:`SchemaValidationError` on the first dangling
        mapping; useful when wiring a new federation.
        """
        for scheme in self:
            for attribute in scheme.attributes:
                for mapping in scheme.mappings(attribute):
                    relations = relation_catalog.get(mapping.database)
                    if relations is None:
                        raise SchemaValidationError(
                            f"{scheme.name}.{attribute} maps to unknown database "
                            f"{mapping.database!r}"
                        )
                    attributes = relations.get(mapping.relation)
                    if attributes is None:
                        raise SchemaValidationError(
                            f"{scheme.name}.{attribute} maps to unknown relation "
                            f"{mapping.database}.{mapping.relation}"
                        )
                    if mapping.attribute not in attributes:
                        raise SchemaValidationError(
                            f"{scheme.name}.{attribute} maps to unknown column "
                            f"{mapping.database}.{mapping.relation}.{mapping.attribute}"
                        )

    def describe(self) -> str:
        """Paper-style rendering of every scheme's mapping table."""
        return "\n\n".join(scheme.describe() for scheme in self)

    def __repr__(self) -> str:
        return f"PolygenSchema({list(self._schemes)!r})"
