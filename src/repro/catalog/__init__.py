"""The polygen schema catalog.

A polygen scheme ``P = ((PA1, MA1), ..., (PAn, MAn))`` pairs each polygen
attribute with the set of local attributes it maps to, where each element of
``MA`` is an ``(LD, LS, LA)`` triplet — local database, local scheme, local
attribute (paper, §II).  The catalog is pure data: the Polygen Operation
Interpreter consults it to translate polygen operations into local ones,
which is exactly the paper's "data-driven" claim — adding a database means
adding mappings, not rewriting procedural view definitions.
"""

from repro.catalog.mapping import AttributeMapping
from repro.catalog.reverse import cell_provenance, local_columns_for
from repro.catalog.schema import PolygenSchema
from repro.catalog.scheme import PolygenScheme
from repro.catalog.serialize import (
    schema_from_dict,
    schema_from_json,
    schema_to_dict,
    schema_to_json,
)

__all__ = [
    "AttributeMapping",
    "PolygenScheme",
    "PolygenSchema",
    "cell_provenance",
    "local_columns_for",
    "schema_to_dict",
    "schema_from_dict",
    "schema_to_json",
    "schema_from_json",
]
