"""Attribute mappings: the paper's ``(LD, LS, LA)`` triplets.

Each mapping locates one local column that feeds a polygen attribute, plus
an optional named domain transform (see :mod:`repro.integration.domains`)
that converts local values into the polygen attribute's domain.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["AttributeMapping"]


@dataclass(frozen=True, slots=True)
class AttributeMapping:
    """``(LD, LS, LA)`` with an optional domain-transform name.

    >>> m = AttributeMapping("CD", "FIRM", "HQ", transform="city_state_to_state")
    >>> str(m)
    '(CD, FIRM, HQ via city_state_to_state)'
    """

    database: str   # LD — the local database name
    relation: str   # LS — the local scheme (relation) name
    attribute: str  # LA — the local attribute name
    transform: str | None = None

    @property
    def location(self) -> tuple[str, str]:
        """The ``(LD, LS)`` pair — which relation of which database."""
        return (self.database, self.relation)

    def __str__(self) -> str:
        base = f"({self.database}, {self.relation}, {self.attribute}"
        if self.transform:
            base += f" via {self.transform}"
        return base + ")"
