"""Unit tests for SQL → polygen algebra translation (paper, §III)."""

import pytest

from repro.core.expression import Join, Product, Project, Restrict, SchemeRef, Select
from repro.core.predicate import Theta
from repro.datasets.paper import paper_polygen_schema
from repro.errors import TranslationError
from repro.translate.translator import translate_sql

PAPER_SQL = """
SELECT ONAME, CEO
FROM PORGANIZATION, PALUMNUS
WHERE CEO = ANAME AND ONAME IN
    (SELECT ONAME FROM PCAREER WHERE AID# IN
        (SELECT AID# FROM PALUMNUS WHERE DEGREE = "MBA"))
"""

#: The paper's §III algebraic expression, in our renderer's notation.
PAPER_ALGEBRA = (
    '(((((PALUMNUS [DEGREE = "MBA"]) [AID# = AID#] PCAREER) '
    "[ONAME = ONAME] PORGANIZATION) [CEO = ANAME]) [ONAME, CEO])"
)


@pytest.fixture(scope="module")
def schema():
    return paper_polygen_schema()


class TestPaperTranslation:
    def test_reproduces_the_papers_expression(self, schema):
        result = translate_sql(PAPER_SQL, schema)
        assert result.render() == PAPER_ALGEBRA

    def test_outer_palumnus_is_dropped(self, schema):
        # The paper binds ANAME against the subquery's PALUMNUS; the outer
        # FROM PALUMNUS is never joined.
        result = translate_sql(PAPER_SQL, schema)
        assert result.dropped_tables == ("PALUMNUS",)

    def test_tree_shape(self, schema):
        expr = translate_sql(PAPER_SQL, schema).expression
        assert isinstance(expr, Project)
        assert expr.attributes == ("ONAME", "CEO")
        assert isinstance(expr.child, Restrict)
        join2 = expr.child.child
        assert isinstance(join2, Join)
        assert join2.right == SchemeRef("PORGANIZATION")
        join1 = join2.left
        assert isinstance(join1, Join)
        assert join1.right == SchemeRef("PCAREER")
        assert isinstance(join1.left, Select)


class TestGeneralTranslation:
    def test_plain_select(self, schema):
        result = translate_sql('SELECT ANAME FROM PALUMNUS WHERE DEGREE = "MBA"', schema)
        assert result.render() == '((PALUMNUS [DEGREE = "MBA"]) [ANAME])'

    def test_select_star_has_no_projection(self, schema):
        result = translate_sql('SELECT * FROM PALUMNUS WHERE DEGREE = "MBA"', schema)
        assert isinstance(result.expression, Select)

    def test_no_where(self, schema):
        result = translate_sql("SELECT ANAME FROM PALUMNUS", schema)
        assert result.render() == "(PALUMNUS [ANAME])"

    def test_attribute_pair_joins_two_tables(self, schema):
        result = translate_sql(
            "SELECT POSITION FROM PCAREER, PALUMNUS WHERE ANAME = POSITION", schema
        )
        expr = result.expression
        assert isinstance(expr, Project)
        assert isinstance(expr.child, Join)

    def test_section_one_style_query(self, schema):
        # Literal select happens first, then the cross-table comparison
        # becomes a join.
        result = translate_sql(
            'SELECT CEO FROM PORGANIZATION, PALUMNUS WHERE CEO = ANAME AND DEGREE = "MBA"',
            schema,
        )
        expr = result.expression
        assert isinstance(expr, Project)
        join = expr.child
        assert isinstance(join, Join)
        assert join.left_attribute == "CEO"
        assert join.right_attribute == "ANAME"
        assert isinstance(join.right, Select)  # PALUMNUS [DEGREE = "MBA"]
        assert result.dropped_tables == ()

    def test_in_against_single_table(self, schema):
        result = translate_sql(
            'SELECT POSITION FROM PCAREER WHERE AID# IN '
            '(SELECT AID# FROM PALUMNUS WHERE DEGREE = "MBA")',
            schema,
        )
        assert result.render() == (
            '(((PALUMNUS [DEGREE = "MBA"]) [AID# = AID#] PCAREER) [POSITION])'
        )

    def test_in_against_single_table_shape(self, schema):
        result = translate_sql(
            'SELECT POSITION FROM PCAREER WHERE AID# IN '
            '(SELECT AID# FROM PALUMNUS WHERE DEGREE = "MBA")',
            schema,
        )
        expr = result.expression
        assert isinstance(expr, Project)
        assert isinstance(expr.child, Join)

    def test_unconnected_tables_with_selected_attrs_product(self, schema):
        result = translate_sql("SELECT ANAME, SNAME FROM PALUMNUS, PSTUDENT", schema)
        expr = result.expression
        assert isinstance(expr, Project)
        assert isinstance(expr.child, Product)

    def test_multiple_literal_conditions_stack(self, schema):
        result = translate_sql(
            'SELECT ANAME FROM PALUMNUS WHERE DEGREE = "MBA" AND MAJOR = "IS"', schema
        )
        expr = result.expression.child
        assert isinstance(expr, Select)
        assert isinstance(expr.child, Select)


class TestTranslationErrors:
    def test_unknown_scheme(self, schema):
        with pytest.raises(TranslationError):
            translate_sql("SELECT A FROM NOPE", schema)

    def test_unknown_attribute(self, schema):
        with pytest.raises(TranslationError):
            translate_sql("SELECT NOPE FROM PALUMNUS", schema)

    def test_ambiguous_attribute_across_pristine_tables(self, schema):
        # MAJOR exists in both PALUMNUS and PSTUDENT.
        with pytest.raises(TranslationError):
            translate_sql(
                'SELECT MAJOR FROM PALUMNUS, PSTUDENT WHERE MAJOR = "IS"', schema
            )

    def test_subquery_must_select_one_attribute(self, schema):
        with pytest.raises(TranslationError):
            translate_sql(
                "SELECT ANAME FROM PALUMNUS WHERE AID# IN (SELECT * FROM PCAREER)",
                schema,
            )

    def test_star_subquery_rejected(self, schema):
        with pytest.raises(TranslationError):
            translate_sql(
                "SELECT ANAME FROM PALUMNUS WHERE AID# IN "
                "(SELECT AID#, ONAME FROM PCAREER)",
                schema,
            )
