"""Unit tests for the polygen algebra expression language."""

import pytest

from repro.algebra_lang.lexer import TokenType, tokenize
from repro.algebra_lang.parser import parse_expression
from repro.core.expression import (
    Coalesce,
    Difference,
    Intersect,
    Join,
    Product,
    Project,
    Restrict,
    SchemeRef,
    Select,
    Union,
)
from repro.core.predicate import Theta
from repro.errors import AlgebraParseError

PAPER_EXPRESSION = (
    '( ( ( ( PALUMNUS [DEGREE = "MBA"] ) [AID#=AID#] PCAREER) [ONAME = '
    "ONAME] PORGANIZATION) [CEO = ANAME ] ) [ONAME, CEO]"
)


class TestLexer:
    def test_names_with_hash(self):
        tokens = tokenize("AID#")
        assert tokens[0].type is TokenType.NAME
        assert tokens[0].value == "AID#"

    def test_strings_double_and_single_quotes(self):
        assert tokenize('"MBA"')[0].value == "MBA"
        assert tokenize("'MBA'")[0].value == "MBA"

    def test_numbers(self):
        assert tokenize("1989")[0].value == 1989
        assert tokenize("3.5")[0].value == 3.5
        assert tokenize("-2")[0].value == -2

    def test_theta_longest_match(self):
        values = [t.value for t in tokenize("<= >= <> != = < >")[:-1]]
        assert values == ["<=", ">=", "<>", "!=", "=", "<", ">"]

    def test_keywords_are_reserved(self):
        tokens = tokenize("A UNION B")
        assert tokens[1].type is TokenType.KEYWORD

    def test_unterminated_string(self):
        with pytest.raises(AlgebraParseError):
            tokenize('"oops')

    def test_unexpected_character(self):
        with pytest.raises(AlgebraParseError):
            tokenize("A @ B")

    def test_end_token_present(self):
        assert tokenize("A")[-1].type is TokenType.END


class TestParserShapes:
    def test_scheme_ref(self):
        assert parse_expression("PALUMNUS") == SchemeRef("PALUMNUS")

    def test_select_string(self):
        expr = parse_expression('PALUMNUS [DEGREE = "MBA"]')
        assert expr == Select(SchemeRef("PALUMNUS"), "DEGREE", Theta.EQ, "MBA")

    def test_select_number(self):
        expr = parse_expression("PFINANCE [YEAR = 1989]")
        assert expr == Select(SchemeRef("PFINANCE"), "YEAR", Theta.EQ, 1989)

    def test_restrict(self):
        expr = parse_expression("R [CEO = ANAME]")
        assert expr == Restrict(SchemeRef("R"), "CEO", Theta.EQ, "ANAME")

    def test_join(self):
        expr = parse_expression("R [A = B] S")
        assert expr == Join(SchemeRef("R"), "A", Theta.EQ, "B", SchemeRef("S"))

    def test_join_with_parenthesized_right(self):
        expr = parse_expression("R [A = B] (S UNION T)")
        assert isinstance(expr, Join)
        assert isinstance(expr.right, Union)

    def test_project_single_and_list(self):
        assert parse_expression("R [ONAME]") == Project(SchemeRef("R"), ["ONAME"])
        assert parse_expression("R [ONAME, CEO]") == Project(
            SchemeRef("R"), ["ONAME", "CEO"]
        )

    def test_coalesce(self):
        expr = parse_expression("R [IND COALESCE TRADE AS INDUSTRY]")
        assert expr == Coalesce(SchemeRef("R"), "IND", "TRADE", "INDUSTRY")

    def test_set_operators_left_associative(self):
        expr = parse_expression("A UNION B MINUS C")
        assert isinstance(expr, Difference)
        assert isinstance(expr.left, Union)

    def test_times_and_intersect(self):
        assert isinstance(parse_expression("A TIMES B"), Product)
        assert isinstance(parse_expression("A INTERSECT B"), Intersect)

    def test_postfix_chains(self):
        expr = parse_expression('(R [A = B] S) [X = "v"] [X, Y]')
        assert isinstance(expr, Project)
        assert isinstance(expr.child, Select)
        assert isinstance(expr.child.child, Join)

    def test_theta_variants(self):
        assert parse_expression("R [A < B]").theta is Theta.LT
        assert parse_expression("R [A <> B]").theta is Theta.NE
        assert parse_expression("R [A >= 5]").theta is Theta.GE


class TestParserErrors:
    @pytest.mark.parametrize(
        "text",
        [
            "",
            "(A",
            "A [",
            "A [X =]",
            "A [X Y]",
            "A UNION",
            "A B",
            "[X] A",
            "A [X COALESCE Y]",  # missing AS
            "A [X COALESCE Y AS]",
        ],
    )
    def test_malformed_expressions(self, text):
        with pytest.raises(AlgebraParseError):
            parse_expression(text)

    def test_error_carries_position(self):
        with pytest.raises(AlgebraParseError) as err:
            parse_expression("A [X = ]")
        assert "offset" in str(err.value)


class TestPaperExpression:
    def test_parses_to_expected_tree(self):
        expr = parse_expression(PAPER_EXPRESSION)
        assert isinstance(expr, Project)
        assert expr.attributes == ("ONAME", "CEO")
        restrict = expr.child
        assert isinstance(restrict, Restrict)
        assert (restrict.left_attribute, restrict.right_attribute) == ("CEO", "ANAME")
        join2 = restrict.child
        assert isinstance(join2, Join)
        assert join2.right == SchemeRef("PORGANIZATION")
        join1 = join2.left
        assert isinstance(join1, Join)
        assert join1.right == SchemeRef("PCAREER")
        select = join1.left
        assert select == Select(SchemeRef("PALUMNUS"), "DEGREE", Theta.EQ, "MBA")

    def test_round_trips_through_render(self):
        expr = parse_expression(PAPER_EXPRESSION)
        assert parse_expression(expr.render()) == expr

    def test_render_parse_fixpoint_for_all_node_kinds(self):
        texts = [
            "A UNION B",
            "A MINUS B",
            "A TIMES B",
            "A INTERSECT B",
            "A [X COALESCE Y AS Z]",
            '(A [X = "v"]) [P, Q]',
            "A [X < Y] B",
        ]
        for text in texts:
            expr = parse_expression(text)
            assert parse_expression(expr.render()) == expr
