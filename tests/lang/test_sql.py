"""Unit tests for the SQL front-end."""

import pytest

from repro.core.predicate import Theta
from repro.errors import SqlParseError
from repro.sql.ast import ComparisonPredicate, InPredicate, SelectStatement
from repro.sql.parser import parse_sql

PAPER_SQL = """
SELECT ONAME, CEO
FROM PORGANIZATION, PALUMNUS
WHERE CEO = ANAME AND ONAME IN
    (SELECT ONAME FROM PCAREER WHERE AID# IN
        (SELECT AID# FROM PALUMNUS WHERE DEGREE = "MBA"))
"""

SECTION_ONE_SQL = """
SELECT CEO
FROM PORGANIZATION, PALUMNUS
WHERE CEO = ANAME AND DEGREE = "MBA"
"""


class TestBasicParsing:
    def test_select_from(self):
        stmt = parse_sql("SELECT A, B FROM T")
        assert stmt == SelectStatement(("A", "B"), ("T",), ())

    def test_select_star(self):
        stmt = parse_sql("SELECT * FROM T")
        assert stmt.is_star
        assert stmt.select_list == ()

    def test_keywords_case_insensitive(self):
        stmt = parse_sql("select A from T where A = 1")
        assert stmt.select_list == ("A",)
        assert stmt.where[0].right == 1

    def test_multiple_from_tables(self):
        stmt = parse_sql("SELECT A FROM T, U, V")
        assert stmt.from_tables == ("T", "U", "V")

    def test_literal_comparison(self):
        stmt = parse_sql('SELECT A FROM T WHERE DEG = "MBA"')
        predicate = stmt.where[0]
        assert predicate == ComparisonPredicate("DEG", Theta.EQ, "MBA", False)

    def test_attribute_comparison(self):
        stmt = parse_sql("SELECT A FROM T WHERE CEO = ANAME")
        predicate = stmt.where[0]
        assert predicate.right_is_attribute
        assert predicate.right == "ANAME"

    def test_numeric_literals(self):
        stmt = parse_sql("SELECT A FROM T WHERE YR = 1989 AND GPA >= 3.5")
        assert stmt.where[0].right == 1989
        assert stmt.where[1].right == 3.5
        assert stmt.where[1].theta is Theta.GE

    def test_single_quoted_strings(self):
        stmt = parse_sql("SELECT A FROM T WHERE X = 'y'")
        assert stmt.where[0].right == "y"

    def test_hash_attribute_names(self):
        stmt = parse_sql("SELECT AID# FROM PALUMNUS")
        assert stmt.select_list == ("AID#",)

    def test_in_subquery(self):
        stmt = parse_sql("SELECT A FROM T WHERE K IN (SELECT K FROM U)")
        predicate = stmt.where[0]
        assert isinstance(predicate, InPredicate)
        assert predicate.subquery.from_tables == ("U",)


class TestPaperQueries:
    def test_nested_in_parses(self):
        stmt = parse_sql(PAPER_SQL)
        assert stmt.select_list == ("ONAME", "CEO")
        assert stmt.from_tables == ("PORGANIZATION", "PALUMNUS")
        assert len(stmt.where) == 2
        comparison, membership = stmt.where
        assert isinstance(comparison, ComparisonPredicate)
        assert isinstance(membership, InPredicate)
        inner = membership.subquery
        assert inner.from_tables == ("PCAREER",)
        innermost = inner.where[0].subquery
        assert innermost.from_tables == ("PALUMNUS",)
        assert innermost.where[0].right == "MBA"

    def test_section_one_query(self):
        stmt = parse_sql(SECTION_ONE_SQL)
        assert stmt.select_list == ("CEO",)
        assert len(stmt.where) == 2

    def test_render_round_trip(self):
        stmt = parse_sql(PAPER_SQL)
        assert parse_sql(stmt.render()) == stmt


class TestErrors:
    @pytest.mark.parametrize(
        "text",
        [
            "",
            "SELECT",
            "SELECT FROM T",
            "SELECT A",
            "SELECT A FROM",
            "SELECT A FROM T WHERE",
            "SELECT A FROM T WHERE A",
            "SELECT A FROM T WHERE A = ",
            "SELECT A FROM T WHERE A IN SELECT",
            "SELECT A FROM T WHERE A IN (SELECT A FROM U",
            "SELECT A FROM T extra",
            'SELECT A FROM T WHERE A = "unterminated',
        ],
    )
    def test_malformed_queries(self, text):
        with pytest.raises(SqlParseError):
            parse_sql(text)

    def test_error_carries_offset(self):
        with pytest.raises(SqlParseError) as err:
            parse_sql("SELECT A FROM T WHERE A = ")
        assert "offset" in str(err.value)
