"""Smoke tests: every example script runs cleanly and prints its headline
artifacts.  The examples are documentation; broken documentation fails CI.
"""

import io
import pathlib
import runpy
import sys
from contextlib import redirect_stdout

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parents[2] / "examples"


def run_example(name: str) -> str:
    buffer = io.StringIO()
    with redirect_stdout(buffer):
        runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    return buffer.getvalue()


class TestExamples:
    def test_examples_directory_contents(self):
        scripts = sorted(path.name for path in EXAMPLES.glob("*.py"))
        assert scripts == [
            "ceo_report.py",
            "credibility_ranking.py",
            "federation_at_scale.py",
            "federation_service.py",
            "heterogeneous_sources.py",
            "lineage_audit.py",
            "observability.py",
            "polystore.py",
            "quickstart.py",
            "remote_federation.py",
            "streaming_pipeline.py",
        ]

    def test_quickstart(self):
        output = run_example("quickstart.py")
        assert "Genentech, {AD, CD}, {AD, CD}" in output
        assert "R(10)" in output  # the Table 3 plan
        assert "Intermediate Source Tagging" in output

    def test_ceo_report(self):
        output = run_example("ceo_report.py")
        assert "Bob Swanson" in output and "John Reed" in output and "Stu Madnick" in output
        assert "Retrieve" in output  # both-sides-local plan is printed

    def test_credibility_ranking(self):
        output = run_example("credibility_ranking.py")
        assert "Credibility ranking" in output
        assert "0.95" in output or "0.9" in output
        assert "Plain polygen Merge keeps 0 tuple(s)" in output
        assert "Oracle" in output

    def test_federation_at_scale(self):
        output = run_example("federation_at_scale.py")
        assert "12 databases" in output
        assert "Corroboration profile" in output
        assert "local queries:" in output

    def test_lineage_audit(self):
        output = run_example("lineage_audit.py")
        assert "(AD, BUSINESS, BNAME)" in output
        assert "(CD, FIRM, FNAME)" in output
        assert "MIT" in output and "BP" in output  # dangling references

    def test_heterogeneous_sources(self):
        output = run_example("heterogeneous_sources.py")
        assert "Identical" in output
        assert "Genentech, {AD, CD}, {AD, CD}" in output

    def test_observability(self):
        output = run_example("observability.py")
        assert "Stitched trace:" in output
        assert "[remote]" in output  # server-side spans in the same tree
        assert "Slow-query log entry:" in output
        assert "polygen_query_seconds_bucket" in output
        assert "polygen_source_consulted_total" in output
        assert "Genentech, {AD, CD}, {AD, CD}" in output  # still the paper's answer

    def test_remote_federation(self):
        output = run_example("remote_federation.py")
        assert "polygen://" in output  # sources registered by URL
        assert "Genentech, {AD, CD}, {AD, CD}" in output  # paper answer, tagged
        assert "tag-identical to the in-process federation: True" in output
        assert "remote transports: 3" in output  # per-transport counters
        assert "first rows usable after" in output  # streamed vs batch

    def test_polystore(self):
        output = run_example("polystore.py")
        assert "AD: sqlite file" in output and "PD: jsonl log" in output
        assert "native_select" in output  # the capability matrix
        assert "Genentech, {AD, CD}, {AD, CD}" in output  # paper answer, tagged
        assert "Tag-identical to the all-in-memory baseline" in output
        assert "tuples shipped" in output  # per-backend transfer counters

    def test_streaming_pipeline(self, monkeypatch):
        # The documented demo scans 10^6 tuples; CI runs a scaled-down
        # relation — the pipeline layers exercised are identical.
        monkeypatch.setenv("STREAMING_PIPELINE_ROWS", "50000")
        output = run_example("streaming_pipeline.py")
        assert "Remote source serving 50,000 tuples" in output
        assert "First-row latency improvement" in output
        assert "binary v2 scan" in output and "JSON v1" in output
        assert "Bytes-on-wire reduction from the v2 format" in output

    def test_federation_service(self):
        output = run_example("federation_service.py")
        assert "Genentech, CEO Bob Swanson" in output  # the paper's Table 9
        assert "IBM (origins ['AD', 'PD'])" in output  # streamed with tags
        assert "executed by ['serial']" in output  # per-session override
        assert "3 submitted, 3 completed, 0 failed" in output
        assert "worker thread(s)" in output
