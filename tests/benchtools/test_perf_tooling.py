"""Unit tests for the perf-trajectory tooling (trend report + CI gate)."""

import json

import pytest

from benchmarks.bench_history import (
    flatten_metrics,
    is_speedup_metric,
    latest_baseline,
    load_history,
    median_baseline,
)
from benchmarks.check_regression import main as gate_main
from benchmarks.report import render, sparkline


def _entry(sha, python, timestamp, speedup, *, old_key=False):
    key = sha if old_key else f"{sha}@{'.'.join(python.split('.')[:2])}"
    return key, {
        "sha": None if old_key else sha,
        "python": python,
        "platform": "test",
        "timestamp": timestamp,
        "results": {
            "bench": {"speedup": speedup, "seconds": 1.0 / speedup, "tuples": 42}
        },
    }


def _write_history(path, entries):
    history = {}
    for key, value in entries:
        value = {k: v for k, v in value.items() if v is not None}
        history[key] = value
    path.write_text(json.dumps(history))
    return path


class TestHistoryParsing:
    def test_new_and_old_key_formats(self, tmp_path):
        path = _write_history(
            tmp_path / "h.json",
            [
                _entry("a" * 40, "3.11.7", "2026-01-01T00:00:00+00:00", 2.0, old_key=True),
                _entry("b" * 40, "3.12.1", "2026-01-02T00:00:00+00:00", 3.0),
            ],
        )
        old, new = load_history(path)
        assert old.sha == "a" * 40 and old.python_series == "3.11"
        assert new.sha == "b" * 40 and new.python_series == "3.12"
        assert old.timestamp < new.timestamp

    def test_flatten_and_classify(self):
        flat = flatten_metrics({"bench": {"speedup": 2.5, "name": "x", "tuples": 7}})
        assert flat == {"bench.speedup": 2.5, "bench.tuples": 7.0}
        assert is_speedup_metric("bench.speedup")
        assert is_speedup_metric("b.measured_overlap")
        assert is_speedup_metric("b.choice_speedup")
        assert not is_speedup_metric("bench.tuples")
        assert not is_speedup_metric("bench.seconds")

    def test_latest_baseline_prefers_matching_python(self, tmp_path):
        path = _write_history(
            tmp_path / "h.json",
            [
                _entry("a" * 40, "3.12.1", "2026-01-01T00:00:00+00:00", 2.0),
                _entry("b" * 40, "3.11.7", "2026-01-02T00:00:00+00:00", 3.0),
                _entry("c" * 40, "3.12.1", "2026-01-03T00:00:00+00:00", 4.0),
            ],
        )
        entries = load_history(path)
        baseline = latest_baseline(entries, current_sha="c" * 40, series="3.12")
        assert baseline.sha == "a" * 40  # same series, other SHA
        # Other series never qualify: a 3.13 run has no baseline until a
        # 3.13 entry exists (speedups don't normalize across interpreters).
        assert latest_baseline(entries, current_sha="c" * 40, series="3.13") is None
        assert latest_baseline(entries[:1], current_sha="a" * 40) is None


class TestMedianBaseline:
    def _entries(self, tmp_path, speedups, pythons=None):
        pythons = pythons or ["3.12.1"] * len(speedups)
        path = _write_history(
            tmp_path / "h.json",
            [
                _entry(
                    chr(ord("a") + i) * 40,
                    pythons[i],
                    f"2026-01-{i + 1:02d}T00:00:00+00:00",
                    speedup,
                )
                for i, speedup in enumerate(speedups)
            ],
        )
        return load_history(path)

    def test_median_over_window(self, tmp_path):
        entries = self._entries(tmp_path, [2.0, 3.0, 10.0])
        baseline = median_baseline(entries, current_sha="z" * 40)
        assert baseline.metrics["bench.speedup"] == pytest.approx(3.0)
        assert len(baseline.entries) == 3
        assert "median of 3 run(s)" in baseline.describe()

    def test_window_takes_most_recent(self, tmp_path):
        entries = self._entries(tmp_path, [2.0, 3.0, 10.0])
        baseline = median_baseline(entries, current_sha="z" * 40, window=2)
        # Last two runs (3.0, 10.0): median is their midpoint.
        assert baseline.metrics["bench.speedup"] == pytest.approx(6.5)

    def test_single_entry_matches_latest_baseline(self, tmp_path):
        entries = self._entries(tmp_path, [4.0])
        median = median_baseline(entries, current_sha="z" * 40)
        latest = latest_baseline(entries, current_sha="z" * 40)
        assert median.metrics == flatten_metrics(latest.results)

    def test_filters_current_sha_and_series(self, tmp_path):
        entries = self._entries(
            tmp_path, [2.0, 3.0], pythons=["3.12.1", "3.11.7"]
        )
        only_312 = median_baseline(entries, current_sha="z" * 40, series="3.12")
        assert only_312.metrics["bench.speedup"] == pytest.approx(2.0)
        assert median_baseline(entries, current_sha="z" * 40, series="3.13") is None
        assert median_baseline(entries[:1], current_sha="a" * 40) is None

    def test_window_validation(self, tmp_path):
        entries = self._entries(tmp_path, [2.0])
        with pytest.raises(ValueError):
            median_baseline(entries, current_sha="z" * 40, window=0)


class TestGate:
    def _snapshot(self, tmp_path, speedup, python="3.12.1"):
        path = tmp_path / "BENCH_runtime.json"
        path.write_text(
            json.dumps(
                {
                    "python": python,
                    "platform": "test",
                    "results": {"bench": {"speedup": speedup, "seconds": 1.0}},
                }
            )
        )
        return path

    def test_regression_fails(self, tmp_path, capsys):
        history = _write_history(
            tmp_path / "h.json",
            [_entry("a" * 40, "3.12.1", "2026-01-01T00:00:00+00:00", 4.0)],
        )
        current = self._snapshot(tmp_path, speedup=2.0)
        code = gate_main(
            ["--current", str(current), "--history", str(history), "--sha", "b" * 40]
        )
        assert code == 1
        assert "REGRESSION" in capsys.readouterr().out

    def test_small_drop_passes(self, tmp_path):
        history = _write_history(
            tmp_path / "h.json",
            [_entry("a" * 40, "3.12.1", "2026-01-01T00:00:00+00:00", 4.0)],
        )
        current = self._snapshot(tmp_path, speedup=3.6)
        assert (
            gate_main(
                ["--current", str(current), "--history", str(history), "--sha", "b" * 40]
            )
            == 0
        )

    def test_custom_threshold(self, tmp_path):
        history = _write_history(
            tmp_path / "h.json",
            [_entry("a" * 40, "3.12.1", "2026-01-01T00:00:00+00:00", 4.0)],
        )
        current = self._snapshot(tmp_path, speedup=3.6)
        code = gate_main(
            [
                "--current", str(current),
                "--history", str(history),
                "--sha", "b" * 40,
                "--threshold", "0.05",
            ]
        )
        assert code == 1

    def test_no_baseline_passes(self, tmp_path):
        # History only holds the current SHA (first run): nothing to gate.
        history = _write_history(
            tmp_path / "h.json",
            [_entry("a" * 40, "3.12.1", "2026-01-01T00:00:00+00:00", 4.0)],
        )
        current = self._snapshot(tmp_path, speedup=1.0)
        assert (
            gate_main(
                ["--current", str(current), "--history", str(history), "--sha", "a" * 40]
            )
            == 0
        )

    def test_missing_files_pass(self, tmp_path):
        assert gate_main(["--current", str(tmp_path / "none.json")]) == 0
        current = self._snapshot(tmp_path, speedup=1.0)
        assert (
            gate_main(
                [
                    "--current", str(current),
                    "--history", str(tmp_path / "none.json"),
                    "--sha", "a" * 40,
                ]
            )
            == 0
        )


class TestWallClockBudgets:
    """``--max-seconds``: absolute budgets gate with or without history."""

    def _args(self, tmp_path, *budgets):
        current = tmp_path / "BENCH_runtime.json"
        current.write_text(
            json.dumps(
                {
                    "python": "3.12.1",
                    "platform": "test",
                    "results": {"bench": {"speedup": 4.0, "seconds": 1.5}},
                }
            )
        )
        args = ["--current", str(current), "--history", str(tmp_path / "none.json")]
        for budget in budgets:
            args.extend(["--max-seconds", budget])
        return args

    def test_within_budget_passes(self, tmp_path, capsys):
        assert gate_main(self._args(tmp_path, "bench.seconds=2.0")) == 0
        assert "budget 2.000s" in capsys.readouterr().out

    def test_breach_fails_without_any_history(self, tmp_path, capsys):
        assert gate_main(self._args(tmp_path, "bench.seconds=1.0")) == 1
        assert "BREACH" in capsys.readouterr().out

    def test_missing_budgeted_metric_fails(self, tmp_path, capsys):
        # A budget someone wrote down must not evaporate with a renamed
        # bench: absence breaches, it does not silently pass.
        assert gate_main(self._args(tmp_path, "bench.gone_s=1.0")) == 1
        assert "missing from the current run" in capsys.readouterr().out

    def test_repeatable_and_first_breach_reported(self, tmp_path, capsys):
        code = gate_main(
            self._args(tmp_path, "bench.seconds=2.0", "bench.seconds=1.0")
        )
        assert code == 1
        out = capsys.readouterr().out
        assert "ok" in out and "BREACH" in out

    def test_budget_runs_alongside_relative_gate(self, tmp_path):
        history = _write_history(
            tmp_path / "h.json",
            [_entry("a" * 40, "3.12.1", "2026-01-01T00:00:00+00:00", 4.0)],
        )
        current = tmp_path / "BENCH_runtime.json"
        current.write_text(
            json.dumps(
                {
                    "python": "3.12.1",
                    "platform": "test",
                    "results": {"bench": {"speedup": 4.0, "seconds": 1.5}},
                }
            )
        )
        base = ["--current", str(current), "--history", str(history), "--sha", "b" * 40]
        assert gate_main(base + ["--max-seconds", "bench.seconds=2.0"]) == 0
        assert gate_main(base + ["--max-seconds", "bench.seconds=1.0"]) == 1

    def test_malformed_budget_rejected(self, tmp_path):
        for bad in ("bench.seconds", "=1.0", "bench.seconds=-1", "bench.seconds=x"):
            with pytest.raises(SystemExit):
                gate_main(self._args(tmp_path, bad))


class TestReport:
    def test_sparkline_normalizes(self):
        assert sparkline([1.0, 2.0, 3.0]) == "▁▅█"
        assert sparkline([5.0, 5.0]) == "▄▄"
        assert sparkline([]) == ""

    def test_render_groups_by_python_series(self, tmp_path):
        path = _write_history(
            tmp_path / "h.json",
            [
                _entry("a" * 40, "3.11.7", "2026-01-01T00:00:00+00:00", 2.0),
                _entry("b" * 40, "3.11.7", "2026-01-02T00:00:00+00:00", 3.0),
                _entry("b" * 40, "3.12.1", "2026-01-02T00:00:00+00:00", 2.5),
            ],
        )
        text = render(load_history(path))
        assert "## Python 3.11" in text and "## Python 3.12" in text
        assert "`bench.speedup`" in text
        assert "+50.0%" in text  # 2.0 -> 3.0 on the 3.11 series

    def test_render_empty(self):
        assert "No benchmark history" in render([])
