"""Unit tests for the six orthogonal primitives of the polygen algebra.

Each test class pins down one primitive's data semantics *and* its tag
propagation rule as defined in §II of the paper.
"""

import pytest

from repro.core.algebra import coalesce, difference, product, project, rename, restrict, union
from repro.core.cell import Cell, ConflictPolicy
from repro.core.predicate import AttributeRef, Literal, Theta
from repro.core.relation import PolygenRelation
from repro.core.tags import sources
from repro.errors import (
    AttributeCollisionError,
    CoalesceConflictError,
    InvalidOperandError,
    UnionCompatibilityError,
)


def cell(datum, origins=(), intermediates=()):
    return Cell.of(datum, origins, intermediates)


def rel(heading, cell_rows):
    return PolygenRelation.from_cells(heading, cell_rows)


class TestProject:
    def test_keeps_requested_columns_in_order(self):
        r = PolygenRelation.from_data(["A", "B", "C"], [["a", "b", "c"]])
        out = project(r, ["C", "A"])
        assert out.attributes == ("C", "A")
        assert out.data_rows() == (("c", "a"),)

    def test_requires_attributes(self):
        r = PolygenRelation.from_data(["A"], [["a"]])
        with pytest.raises(InvalidOperandError):
            project(r, [])

    def test_unique_tuples_pass_through_unchanged(self):
        r = rel(["A", "B"], [[cell("a", ["AD"], ["PD"]), cell("b", ["CD"])]])
        out = project(r, ["A"])
        assert out.tuples[0][0] == cell("a", ["AD"], ["PD"])

    def test_duplicates_union_tags_attribute_wise(self):
        # Paper: t'[xj](o) = union of the duplicate tuples' origins, per attribute.
        r = rel(
            ["A", "B"],
            [
                [cell("x", ["AD"], ["AD"]), cell(1, ["AD"])],
                [cell("x", ["CD"]), cell(2, ["CD"])],
            ],
        )
        out = project(r, ["A"])
        assert out.cardinality == 1
        merged = out.tuples[0][0]
        assert merged.origins == sources("AD", "CD")
        assert merged.intermediates == sources("AD")

    def test_dedup_is_on_projected_columns_only(self):
        r = PolygenRelation.from_data(["A", "B"], [["x", 1], ["x", 2], ["y", 1]])
        assert project(r, ["A"]).cardinality == 2
        assert project(r, ["A", "B"]).cardinality == 3

    def test_nil_data_deduplicate_together(self):
        r = rel(["A"], [[cell(None, [], ["AD"])], [cell(None, [], ["PD"])]])
        out = project(r, ["A"])
        assert out.cardinality == 1
        assert out.tuples[0][0].intermediates == sources("AD", "PD")

    def test_projection_is_idempotent(self):
        r = PolygenRelation.from_data(["A", "B"], [["x", 1], ["y", 2]], origins=["AD"])
        once = project(r, ["A"])
        assert project(once, ["A"]) == once


class TestProduct:
    def test_concatenates_tuples(self):
        left = PolygenRelation.from_data(["A"], [["a1"], ["a2"]], origins=["AD"])
        right = PolygenRelation.from_data(["B"], [["b1"], ["b2"]], origins=["CD"])
        out = product(left, right)
        assert out.attributes == ("A", "B")
        assert set(out.data_rows()) == {
            ("a1", "b1"),
            ("a1", "b2"),
            ("a2", "b1"),
            ("a2", "b2"),
        }

    def test_tags_untouched(self):
        left = rel(["A"], [[cell("a", ["AD"], ["PD"])]])
        right = rel(["B"], [[cell("b", ["CD"])]])
        out = product(left, right)
        assert out.tuples[0].cells == (cell("a", ["AD"], ["PD"]), cell("b", ["CD"]))

    def test_rejects_attribute_collision(self):
        r = PolygenRelation.from_data(["A"], [["x"]])
        with pytest.raises(AttributeCollisionError):
            product(r, r)

    def test_empty_operand_gives_empty_product(self):
        left = PolygenRelation.from_data(["A"], [["x"]])
        right = PolygenRelation(["B"])
        assert product(left, right).cardinality == 0


class TestRestrict:
    def setup_method(self):
        self.r = rel(
            ["X", "Y", "Z"],
            [
                [cell(1, ["AD"]), cell(1, ["PD"]), cell("keep", ["CD"])],
                [cell(1, ["AD"]), cell(2, ["PD"]), cell("drop", ["CD"])],
            ],
        )

    def test_attribute_comparison_filters(self):
        out = restrict(self.r, "X", Theta.EQ, AttributeRef("Y"))
        assert out.data_rows() == ((1, 1, "keep"),)

    def test_intermediates_updated_on_every_cell(self):
        # t'[w](i) = t[w](i) u t[x](o) u t[y](o) for ALL attributes w.
        out = restrict(self.r, "X", Theta.EQ, AttributeRef("Y"))
        for c in out.tuples[0]:
            assert c.intermediates == sources("AD", "PD")

    def test_origins_unchanged(self):
        out = restrict(self.r, "X", Theta.EQ, AttributeRef("Y"))
        assert [c.origins for c in out.tuples[0]] == [
            sources("AD"),
            sources("PD"),
            sources("CD"),
        ]

    def test_literal_comparison_adds_only_attribute_origins(self):
        out = restrict(self.r, "Z", Theta.EQ, Literal("keep"))
        for c in out.tuples[0]:
            assert c.intermediates == sources("CD")

    def test_existing_intermediates_preserved(self):
        r = rel(["X"], [[cell(1, ["AD"], ["PD"])]])
        out = restrict(r, "X", Theta.EQ, Literal(1))
        assert out.tuples[0][0].intermediates == sources("PD", "AD")

    def test_nil_never_satisfies(self):
        r = rel(["X"], [[cell(None)]])
        assert restrict(r, "X", Theta.EQ, Literal(None)).cardinality == 0

    def test_ordering_comparisons(self):
        r = PolygenRelation.from_data(["X"], [[1], [5], [10]], origins=["AD"])
        out = restrict(r, "X", Theta.GT, Literal(4))
        assert {row.data[0] for row in out} == {5, 10}

    def test_cell_level_origins_not_column_level(self):
        # Only the *matching tuple's* cell origins mediate, not the column's.
        r = rel(
            ["X"],
            [[cell(1, ["AD"])], [cell(1, ["PD"])]],
        )
        out = restrict(r, "X", Theta.EQ, Literal(1))
        inters = sorted(tuple(sorted(t[0].intermediates)) for t in out)
        assert inters == [("AD",), ("PD",)]


class TestUnion:
    def test_requires_union_compatibility(self):
        a = PolygenRelation.from_data(["A"], [["x"]])
        b = PolygenRelation.from_data(["B"], [["x"]])
        with pytest.raises(UnionCompatibilityError):
            union(a, b)

    def test_disjoint_tuples_kept_verbatim(self):
        a = rel(["A"], [[cell("x", ["AD"], ["AD"])]])
        b = rel(["A"], [[cell("y", ["CD"])]])
        out = union(a, b)
        assert set(out.data_rows()) == {("x",), ("y",)}
        by_data = {t.data[0]: t for t in out}
        assert by_data["x"][0] == cell("x", ["AD"], ["AD"])
        assert by_data["y"][0] == cell("y", ["CD"])

    def test_shared_data_merges_tags(self):
        a = rel(["A"], [[cell("x", ["AD"], ["AD"])]])
        b = rel(["A"], [[cell("x", ["CD"], ["PD"])]])
        out = union(a, b)
        assert out.cardinality == 1
        merged = out.tuples[0][0]
        assert merged.origins == sources("AD", "CD")
        assert merged.intermediates == sources("AD", "PD")

    def test_is_commutative(self):
        a = PolygenRelation.from_data(["A"], [["x"], ["y"]], origins=["AD"])
        b = PolygenRelation.from_data(["A"], [["y"], ["z"]], origins=["CD"])
        assert union(a, b) == union(b, a)

    def test_is_idempotent(self):
        a = PolygenRelation.from_data(["A"], [["x"]], origins=["AD"])
        assert union(a, a) == a


class TestDifference:
    def test_requires_union_compatibility(self):
        a = PolygenRelation.from_data(["A"], [["x"]])
        b = PolygenRelation.from_data(["B"], [["x"]])
        with pytest.raises(UnionCompatibilityError):
            difference(a, b)

    def test_filters_on_data_portion(self):
        a = PolygenRelation.from_data(["A"], [["x"], ["y"]], origins=["AD"])
        b = PolygenRelation.from_data(["A"], [["y"]], origins=["CD"])
        out = difference(a, b)
        assert out.data_rows() == (("x",),)

    def test_subtrahend_origins_become_intermediates(self):
        # t'[w](i) = t[w](i) u p2(o) for every attribute w.
        a = rel(["A", "B"], [[cell("x", ["AD"]), cell(1, ["AD"], ["AD"])]])
        b = rel(
            ["A", "B"],
            [
                [cell("q", ["CD"]), cell(9, ["PD"])],
                [cell("r", ["PD"]), cell(8, ["PD"])],
            ],
        )
        out = difference(a, b)
        for c in out.tuples[0]:
            assert sources("CD", "PD") <= c.intermediates
        assert out.tuples[0][1].intermediates == sources("AD", "CD", "PD")

    def test_empty_subtrahend_adds_nothing(self):
        a = rel(["A"], [[cell("x", ["AD"])]])
        out = difference(a, PolygenRelation(["A"]))
        assert out.tuples[0][0].intermediates == frozenset()

    def test_tag_differences_do_not_protect_tuples(self):
        # Difference compares data portions only.
        a = rel(["A"], [[cell("x", ["AD"])]])
        b = rel(["A"], [[cell("x", ["CD"])]])
        assert difference(a, b).cardinality == 0

    def test_self_difference_is_empty(self):
        a = PolygenRelation.from_data(["A"], [["x"], ["y"]], origins=["AD"])
        assert difference(a, a).cardinality == 0


class TestCoalesce:
    def test_basic_fold_keeps_x_position_drops_y(self):
        r = rel(
            ["A", "X", "B", "Y"],
            [[cell("a"), cell("v", ["AD"]), cell("b"), cell("v", ["CD"])]],
        )
        out = coalesce(r, "X", "Y", w="W")
        assert out.attributes == ("A", "W", "B")
        assert out.tuples[0][1].origins == sources("AD", "CD")

    def test_default_output_name_is_x(self):
        r = rel(["X", "Y"], [[cell("v"), cell("v")]])
        assert coalesce(r, "X", "Y").attributes == ("X",)

    def test_right_nil_takes_left(self):
        r = rel(["X", "Y"], [[cell("v", ["AD"], ["AD"]), cell(None, [], ["PD"])]])
        out = coalesce(r, "X", "Y")
        assert out.tuples[0][0] == cell("v", ["AD"], ["AD"])

    def test_left_nil_takes_right(self):
        r = rel(["X", "Y"], [[cell(None, [], ["AD"]), cell("v", ["PD"])]])
        out = coalesce(r, "X", "Y")
        assert out.tuples[0][0] == cell("v", ["PD"])

    def test_conflict_dropped_by_default(self):
        # The paper's set definition covers no conflicting case, so the
        # tuple vanishes.
        r = rel(["X", "Y"], [[cell("a"), cell("b")], [cell("c"), cell("c")]])
        out = coalesce(r, "X", "Y")
        assert out.data_rows() == (("c",),)

    def test_conflict_error_policy(self):
        r = rel(["X", "Y"], [[cell("a"), cell("b")]])
        with pytest.raises(CoalesceConflictError):
            coalesce(r, "X", "Y", policy=ConflictPolicy.ERROR)

    def test_conflict_prefer_policies(self):
        r = rel(["X", "Y"], [[cell("a", ["AD"]), cell("b", ["CD"])]])
        left = coalesce(r, "X", "Y", policy=ConflictPolicy.PREFER_LEFT)
        right = coalesce(r, "X", "Y", policy=ConflictPolicy.PREFER_RIGHT)
        assert left.tuples[0][0].datum == "a"
        assert right.tuples[0][0].datum == "b"

    def test_same_attribute_rejected(self):
        r = rel(["X"], [[cell("a")]])
        with pytest.raises(InvalidOperandError):
            coalesce(r, "X", "X")


class TestRename:
    def test_rename_is_pure(self):
        r = rel(["BNAME"], [[cell("IBM", ["AD"], ["PD"])]])
        out = rename(r, {"BNAME": "ONAME"})
        assert out.attributes == ("ONAME",)
        assert out.tuples[0][0] == cell("IBM", ["AD"], ["PD"])
        assert r.attributes == ("BNAME",)  # original untouched
