"""Unit tests for polygen tuples and relations."""

import pytest

from repro.core.cell import Cell
from repro.core.heading import Heading
from repro.core.relation import PolygenRelation
from repro.core.row import PolygenTuple
from repro.core.tags import sources
from repro.errors import DegreeMismatchError, UnknownAttributeError


def cell(datum, origins=(), intermediates=()):
    return Cell.of(datum, origins, intermediates)


class TestPolygenTuple:
    def test_data_portion(self):
        t = PolygenTuple([cell("a", ["AD"]), cell(1, ["CD"])])
        assert t.data == ("a", 1)

    def test_origins_and_intermediates_union(self):
        t = PolygenTuple([cell("a", ["AD"], ["PD"]), cell("b", ["CD"], ["AD"])])
        assert t.origins() == sources("AD", "CD")
        assert t.intermediates() == sources("PD", "AD")

    def test_take_reorders(self):
        t = PolygenTuple([cell("a"), cell("b"), cell("c")])
        assert t.take([2, 0]).data == ("c", "a")

    def test_concat(self):
        t = PolygenTuple([cell("a")]).concat(PolygenTuple([cell("b")]))
        assert t.data == ("a", "b")

    def test_replace_cell(self):
        t = PolygenTuple([cell("a"), cell("b")]).replace_cell(1, cell("z"))
        assert t.data == ("a", "z")

    def test_with_intermediates_hits_every_cell(self):
        t = PolygenTuple([cell("a", ["AD"]), cell("b", ["CD"])])
        out = t.with_intermediates(sources("PD"))
        assert all(c.intermediates == sources("PD") for c in out)

    def test_with_intermediates_empty_is_noop(self):
        t = PolygenTuple([cell("a")])
        assert t.with_intermediates(frozenset()) is t

    def test_merge_tags_cell_wise(self):
        t = PolygenTuple([cell("a", ["AD"])])
        s = PolygenTuple([cell("a", ["CD"], ["PD"])])
        merged = t.merge_tags(s)
        assert merged[0].origins == sources("AD", "CD")
        assert merged[0].intermediates == sources("PD")

    def test_equality_and_hash(self):
        t = PolygenTuple([cell("a", ["AD"])])
        s = PolygenTuple([cell("a", ["AD"])])
        assert t == s and hash(t) == hash(s)


class TestRelationConstruction:
    def test_heading_coercion_from_names(self):
        r = PolygenRelation(["A", "B"])
        assert isinstance(r.heading, Heading)
        assert r.degree == 2 and r.cardinality == 0

    def test_degree_mismatch_rejected(self):
        with pytest.raises(DegreeMismatchError):
            PolygenRelation(["A", "B"], [PolygenTuple([cell("x")])])

    def test_exact_duplicates_collapse(self):
        row = PolygenTuple([cell("x", ["AD"])])
        r = PolygenRelation(["A"], [row, row])
        assert r.cardinality == 1

    def test_data_duplicates_with_different_tags_coexist(self):
        r = PolygenRelation(
            ["A"],
            [PolygenTuple([cell("x", ["AD"])]), PolygenTuple([cell("x", ["CD"])])],
        )
        assert r.cardinality == 2

    def test_from_data_tags_uniformly(self):
        r = PolygenRelation.from_data(["A", "B"], [["x", "y"]], origins=["AD"])
        for c in r.tuples[0]:
            assert c.origins == sources("AD")
            assert c.intermediates == frozenset()

    def test_from_data_nil_has_no_origins(self):
        r = PolygenRelation.from_data(["A"], [[None]], origins=["AD"], intermediates=["PD"])
        c = r.tuples[0][0]
        assert c.is_nil
        assert c.origins == frozenset()
        assert c.intermediates == sources("PD")

    def test_from_cells(self):
        r = PolygenRelation.from_cells(["A"], [[cell("x", ["AD"])]])
        assert r.tuples[0][0].origins == sources("AD")

    def test_empty_like(self):
        r = PolygenRelation.from_data(["A"], [["x"]])
        assert r.empty_like().cardinality == 0
        assert r.empty_like().heading == r.heading


class TestRelationAccessors:
    def setup_method(self):
        self.r = PolygenRelation.from_cells(
            ["A", "B"],
            [
                [cell("a1", ["AD"], ["PD"]), cell("b1", ["CD"])],
                [cell("a2", ["PD"]), cell("b2", ["AD"], ["CD"])],
            ],
        )

    def test_column(self):
        col = self.r.column("B")
        assert [c.datum for c in col] == ["b1", "b2"]

    def test_column_unknown(self):
        with pytest.raises(UnknownAttributeError):
            self.r.column("Z")

    def test_data_rows(self):
        assert self.r.data_rows() == (("a1", "b1"), ("a2", "b2"))

    def test_all_origins(self):
        assert self.r.all_origins() == sources("AD", "CD", "PD")

    def test_all_intermediates(self):
        assert self.r.all_intermediates() == sources("PD", "CD")

    def test_contributing_sources(self):
        assert self.r.contributing_sources() == sources("AD", "CD", "PD")

    def test_truthiness_is_not_cardinality(self):
        assert PolygenRelation(["A"])  # empty relation is still truthy


class TestRelationEquality:
    def test_order_insensitive(self):
        a = PolygenRelation.from_data(["A"], [["x"], ["y"]], origins=["AD"])
        b = PolygenRelation.from_data(["A"], [["y"], ["x"]], origins=["AD"])
        assert a == b
        assert hash(a) == hash(b)

    def test_tags_matter(self):
        a = PolygenRelation.from_data(["A"], [["x"]], origins=["AD"])
        b = PolygenRelation.from_data(["A"], [["x"]], origins=["CD"])
        assert a != b

    def test_same_data_ignores_tags(self):
        a = PolygenRelation.from_data(["A"], [["x"]], origins=["AD"])
        b = PolygenRelation.from_data(["A"], [["x"]], origins=["CD"])
        assert a.same_data(b)

    def test_same_data_heading_sensitive(self):
        a = PolygenRelation.from_data(["A"], [["x"]])
        b = PolygenRelation.from_data(["B"], [["x"]])
        assert not a.same_data(b)


class TestRelationDerivation:
    def test_rename(self):
        r = PolygenRelation.from_data(["BNAME"], [["IBM"]], origins=["AD"])
        out = r.rename({"BNAME": "ONAME"})
        assert out.attributes == ("ONAME",)
        assert out.tuples[0][0].datum == "IBM"

    def test_sorted_by_data_puts_nil_last(self):
        r = PolygenRelation.from_data(["A"], [[None], ["b"], ["a"]])
        assert [t.data[0] for t in r.sorted_by_data()] == ["a", "b", None]

    def test_repr_mentions_cardinality(self):
        r = PolygenRelation.from_data(["A"], [["x"]])
        assert "cardinality=1" in repr(r)
