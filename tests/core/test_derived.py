"""Unit tests for the derived operators: Select, Join, Intersection, the
outer natural joins and Merge (paper, §II and Appendix A)."""

import pytest

from repro.core.algebra import coalesce, product, project, restrict
from repro.core.cell import Cell, ConflictPolicy
from repro.core.derived import (
    RHS_SUFFIX,
    intersect,
    join,
    merge,
    outer_join,
    outer_natural_primary_join,
    outer_natural_total_join,
    select,
)
from repro.core.predicate import AttributeRef, Theta
from repro.core.relation import PolygenRelation
from repro.core.tags import sources
from repro.errors import AttributeCollisionError, InvalidOperandError

def cell(datum, origins=(), intermediates=()):
    return Cell.of(datum, origins, intermediates)


def rel(heading, cell_rows):
    return PolygenRelation.from_cells(heading, cell_rows)


class TestSelect:
    def test_select_is_restrict_against_literal(self):
        r = PolygenRelation.from_data(
            ["DEG", "NAME"], [["MBA", "Bob"], ["MS", "Ken"]], origins=["AD"]
        )
        out = select(r, "DEG", Theta.EQ, "MBA")
        assert out.data_rows() == (("MBA", "Bob"),)

    def test_select_updates_intermediates(self):
        # "Since Select and Join are defined through Restrict, they also
        # update t(i)."
        r = PolygenRelation.from_data(["DEG"], [["MBA"]], origins=["AD"])
        out = select(r, "DEG", Theta.EQ, "MBA")
        assert out.tuples[0][0].intermediates == sources("AD")


class TestJoin:
    def test_equijoin_different_names_keeps_both_columns(self):
        left = rel(["A", "K1"], [[cell("a", ["AD"]), cell(1, ["AD"])]])
        right = rel(["K2", "B"], [[cell(1, ["CD"]), cell("b", ["CD"])]])
        out = join(left, right, "K1", Theta.EQ, "K2")
        assert out.attributes == ("A", "K1", "K2", "B")
        assert out.data_rows() == (("a", 1, 1, "b"),)

    def test_join_intermediates_from_both_key_cells(self):
        left = rel(["A", "K1"], [[cell("a", ["AD"]), cell(1, ["AD"])]])
        right = rel(["K2", "B"], [[cell(1, ["CD"]), cell("b", ["PD"])]])
        out = join(left, right, "K1", Theta.EQ, "K2")
        for c in out.tuples[0]:
            assert c.intermediates == sources("AD", "CD")

    def test_same_name_equijoin_coalesces_key(self):
        # This is the executor's case: both sides use the polygen attribute
        # name, and the result has a single key column with unioned tags
        # (paper, Tables 5 and 7).
        left = rel(["K", "A"], [[cell(1, ["AD"]), cell("a", ["AD"])]])
        right = rel(["K", "B"], [[cell(1, ["CD"]), cell("b", ["CD"])]])
        out = join(left, right, "K", Theta.EQ, "K")
        assert out.attributes == ("K", "A", "B")
        key = out.tuples[0][0]
        assert key.origins == sources("AD", "CD")
        assert key.intermediates == sources("AD", "CD")

    def test_same_name_equijoin_can_keep_both_columns(self):
        left = rel(["K"], [[cell(1, ["AD"])]])
        right = rel(["K"], [[cell(1, ["CD"])]])
        out = join(left, right, "K", Theta.EQ, "K", coalesce_equal=False)
        assert out.attributes == ("K", "K" + RHS_SUFFIX)

    def test_same_name_non_equijoin_rejected(self):
        left = rel(["K"], [[cell(1, ["AD"])]])
        right = rel(["K"], [[cell(2, ["CD"])]])
        with pytest.raises(InvalidOperandError):
            join(left, right, "K", Theta.LT, "K")

    def test_non_join_collision_rejected(self):
        left = rel(["K", "X"], [[cell(1), cell("x")]])
        right = rel(["J", "X"], [[cell(1), cell("y")]])
        with pytest.raises(AttributeCollisionError):
            join(left, right, "K", Theta.EQ, "J")

    def test_theta_join(self):
        left = PolygenRelation.from_data(["A"], [[1], [5]], origins=["AD"])
        right = PolygenRelation.from_data(["B"], [[3]], origins=["CD"])
        out = join(left, right, "A", Theta.LT, "B")
        assert out.data_rows() == ((1, 3),)

    def test_join_equals_restrict_of_product(self):
        # Definitional identity (paper, §II) for disjoint attribute names.
        left = PolygenRelation.from_data(["A", "K1"], [["a", 1], ["b", 2]], origins=["AD"])
        right = PolygenRelation.from_data(["K2", "B"], [[1, "x"], [3, "y"]], origins=["CD"])
        via_join = join(left, right, "K1", Theta.EQ, "K2")
        via_primitives = restrict(product(left, right), "K1", Theta.EQ, AttributeRef("K2"))
        assert via_join == via_primitives


class TestIntersect:
    def test_requires_same_heading(self):
        a = PolygenRelation.from_data(["A"], [["x"]])
        b = PolygenRelation.from_data(["B"], [["x"]])
        with pytest.raises(InvalidOperandError):
            intersect(a, b)

    def test_keeps_common_data_only(self):
        a = PolygenRelation.from_data(["A"], [["x"], ["y"]], origins=["AD"])
        b = PolygenRelation.from_data(["A"], [["y"], ["z"]], origins=["CD"])
        out = intersect(a, b)
        assert out.data_rows() == (("y",),)

    def test_tags_union_and_all_origins_mediate(self):
        a = rel(["A", "B"], [[cell("x", ["AD"]), cell(1, ["PD"])]])
        b = rel(["A", "B"], [[cell("x", ["CD"]), cell(1, ["CD"])]])
        out = intersect(a, b)
        t = out.tuples[0]
        assert t[0].origins == sources("AD", "CD")
        assert t[1].origins == sources("PD", "CD")
        # Every origin of both matched tuples becomes an intermediate of
        # every cell (n restricts, one per attribute pair).
        for c in t:
            assert c.intermediates == sources("AD", "PD", "CD")

    def test_matches_primitive_composition(self):
        # intersection = project over all attributes of the join over all
        # attributes (paper's definition), evaluated with the primitives.
        a = rel(
            ["A", "B"],
            [
                [cell("x", ["AD"]), cell(1, ["AD"])],
                [cell("q", ["AD"]), cell(7, ["AD"])],
            ],
        )
        b = rel(
            ["A", "B"],
            [
                [cell("x", ["CD"], ["PD"]), cell(1, ["CD"])],
            ],
        )
        qualified = b.rename({"A": "A'", "B": "B'"})
        composed = product(a, qualified)
        composed = restrict(composed, "A", Theta.EQ, AttributeRef("A'"))
        composed = restrict(composed, "B", Theta.EQ, AttributeRef("B'"))
        composed = coalesce(composed, "A", "A'")
        composed = coalesce(composed, "B", "B'")
        composed = project(composed, ["A", "B"])
        assert intersect(a, b) == composed

    def test_is_commutative(self):
        a = PolygenRelation.from_data(["A"], [["x"], ["y"]], origins=["AD"])
        b = PolygenRelation.from_data(["A"], [["y"]], origins=["CD"])
        assert intersect(a, b) == intersect(b, a)


class TestOuterJoin:
    def setup_method(self):
        self.left = rel(
            ["LK", "LV"],
            [
                [cell("both", ["AD"]), cell("l1", ["AD"])],
                [cell("left-only", ["AD"]), cell("l2", ["AD"])],
            ],
        )
        self.right = rel(
            ["RK", "RV"],
            [
                [cell("both", ["PD"]), cell("r1", ["PD"])],
                [cell("right-only", ["PD"]), cell("r2", ["PD"])],
            ],
        )

    def test_heading_is_concatenation(self):
        out = outer_join(self.left, self.right, [("LK", "RK")])
        assert out.attributes == ("LK", "LV", "RK", "RV")

    def test_matched_rows_record_both_key_origins(self):
        out = outer_join(self.left, self.right, [("LK", "RK")])
        matched = [t for t in out if t.data[0] == "both"][0]
        for c in matched:
            assert c.intermediates == sources("AD", "PD")

    def test_unmatched_left_records_left_key_origins_only(self):
        # Table A4: "Langley Castle, {AD}, {AD}" with nil, {}, {AD} padding.
        out = outer_join(self.left, self.right, [("LK", "RK")])
        unmatched = [t for t in out if t.data[0] == "left-only"][0]
        assert unmatched[0].intermediates == sources("AD")
        assert unmatched[2].is_nil
        assert unmatched[2].origins == frozenset()
        assert unmatched[2].intermediates == sources("AD")

    def test_unmatched_right_is_symmetric(self):
        out = outer_join(self.left, self.right, [("LK", "RK")])
        unmatched = [t for t in out if t.data[2] == "right-only"][0]
        assert unmatched[0].is_nil
        assert unmatched[0].intermediates == sources("PD")
        assert unmatched[3].intermediates == sources("PD")

    def test_nil_keys_never_match(self):
        left = rel(["LK"], [[cell(None, [], ["AD"])]])
        right = rel(["RK"], [[cell(None, [], ["PD"])]])
        out = outer_join(left, right, [("LK", "RK")])
        # Two unmatched rows, not one matched row.
        assert out.cardinality == 2

    def test_multi_attribute_keys(self):
        left = rel(
            ["K1", "K2"],
            [[cell("a", ["AD"]), cell(1, ["AD"])], [cell("a", ["AD"]), cell(2, ["AD"])]],
        )
        right = rel(
            ["J1", "J2"],
            [[cell("a", ["PD"]), cell(1, ["PD"])]],
        )
        out = outer_join(left, right, [("K1", "J1"), ("K2", "J2")])
        matched = [t for t in out if t.data[2] is not None]
        assert len(matched) == 1
        assert matched[0].data == ("a", 1, "a", 1)

    def test_duplicate_matches_multiply(self):
        left = rel(["K"], [[cell("k", ["AD"])]])
        right = rel(
            ["J", "V"],
            [[cell("k", ["PD"]), cell(1, ["PD"])], [cell("k", ["PD"]), cell(2, ["PD"])]],
        )
        out = outer_join(left, right, [("K", "J")])
        assert out.cardinality == 2

    def test_requires_key(self):
        with pytest.raises(InvalidOperandError):
            outer_join(self.left, self.right, [])


class TestOuterNaturalJoins:
    def setup_method(self):
        # Two sources describing overlapping organizations, already renamed
        # to polygen attribute names, as the executor produces them.
        self.p1 = rel(
            ["ONAME", "INDUSTRY"],
            [
                [cell("IBM", ["AD"]), cell("High Tech", ["AD"])],
                [cell("MIT", ["AD"]), cell("Education", ["AD"])],
            ],
        )
        self.p2 = rel(
            ["ONAME", "INDUSTRY", "HQ"],
            [
                [cell("IBM", ["PD"]), cell("High Tech", ["PD"]), cell("NY", ["PD"])],
                [cell("Apple", ["PD"]), cell("High Tech", ["PD"]), cell("CA", ["PD"])],
            ],
        )

    def test_onpj_coalesces_key_only(self):
        out = outer_natural_primary_join(self.p1, self.p2, [("ONAME", "ONAME")])
        assert out.attributes == ("ONAME", "INDUSTRY", "INDUSTRY" + RHS_SUFFIX, "HQ")
        ibm = [t for t in out if t.data[0] == "IBM"][0]
        assert ibm[0].origins == sources("AD", "PD")

    def test_ontj_coalesces_all_shared(self):
        out = outer_natural_total_join(self.p1, self.p2, [("ONAME", "ONAME")])
        assert out.attributes == ("ONAME", "INDUSTRY", "HQ")
        ibm = [t for t in out if t.data[0] == "IBM"][0]
        assert ibm[1].origins == sources("AD", "PD")
        assert ibm[1].intermediates == sources("AD", "PD")

    def test_ontj_left_only_row_keeps_nil_padding(self):
        out = outer_natural_total_join(self.p1, self.p2, [("ONAME", "ONAME")])
        mit = [t for t in out if t.data[0] == "MIT"][0]
        assert mit.data == ("MIT", "Education", None)
        assert mit[2].intermediates == sources("AD")

    def test_ontj_differently_named_pair_via_extra_pairs(self):
        left = rel(["BNAME", "IND"], [[cell("IBM", ["AD"]), cell("High Tech", ["AD"])]])
        right = rel(["CNAME", "TRADE"], [[cell("IBM", ["PD"]), cell("High Tech", ["PD"])]])
        out = outer_natural_total_join(
            left,
            right,
            key_pairs=[("BNAME", "CNAME")],
            output_names=["ONAME"],
            extra_pairs=[("IND", "TRADE", "INDUSTRY")],
        )
        assert out.attributes == ("ONAME", "INDUSTRY")
        row = out.tuples[0]
        assert row[0].origins == sources("AD", "PD")
        assert row[1].origins == sources("AD", "PD")

    def test_onpj_output_names_must_align(self):
        with pytest.raises(InvalidOperandError):
            outer_natural_primary_join(
                self.p1, self.p2, [("ONAME", "ONAME")], output_names=["A", "B"]
            )


class TestMerge:
    def build(self, name, rows, source):
        return PolygenRelation.from_data(["K", name], rows, origins=[source])

    def test_merge_requires_an_operand(self):
        with pytest.raises(InvalidOperandError):
            merge([], ["K"])

    def test_merge_single_relation_is_identity(self):
        r = self.build("V", [["k1", 1]], "AD")
        assert merge([r], ["K"]) == r

    def test_merge_requires_key_everywhere(self):
        a = self.build("V", [["k1", 1]], "AD")
        b = PolygenRelation.from_data(["J", "V"], [["k1", 1]], origins=["PD"])
        with pytest.raises(Exception):
            merge([a, b], ["K"])

    def test_three_way_merge_unions_coverage(self):
        a = PolygenRelation.from_data(["K", "X"], [["k1", "x1"]], origins=["AD"])
        b = PolygenRelation.from_data(["K", "Y"], [["k1", "y1"], ["k2", "y2"]], origins=["PD"])
        c = PolygenRelation.from_data(["K", "Z"], [["k3", "z3"]], origins=["CD"])
        out = merge([a, b, c], ["K"])
        assert out.attributes == ("K", "X", "Y", "Z")
        assert {t.data[0] for t in out} == {"k1", "k2", "k3"}
        k1 = [t for t in out if t.data[0] == "k1"][0]
        assert k1[0].origins == sources("AD", "PD")
        assert k1.data == ("k1", "x1", "y1", None)

    def test_merge_order_is_immaterial(self):
        # Paper §II: "the order in which Outer Natural Total Join are
        # performed over a set of polygen relations in a Merge is immaterial."
        a = PolygenRelation.from_data(["K", "X"], [["k1", "x"], ["k2", "x"]], origins=["AD"])
        b = PolygenRelation.from_data(["K", "X"], [["k1", "x"], ["k3", "q"]], origins=["PD"])
        c = PolygenRelation.from_data(["K", "X"], [["k3", "q"]], origins=["CD"])
        import itertools

        results = []
        for perm in itertools.permutations([a, b, c]):
            out = merge(perm, ["K"])
            # Normalize column order for comparison (heading order follows
            # the fold order for non-shared attributes; here all are shared).
            results.append({(t.data, t.cells) for t in out})
        assert all(r == results[0] for r in results)

    def test_merge_conflict_policy_threads_through(self):
        a = PolygenRelation.from_data(["K", "X"], [["k1", "a"]], origins=["AD"])
        b = PolygenRelation.from_data(["K", "X"], [["k1", "b"]], origins=["PD"])
        dropped = merge([a, b], ["K"])
        assert dropped.cardinality == 0
        kept = merge([a, b], ["K"], policy=ConflictPolicy.PREFER_LEFT)
        assert kept.tuples[0].data == ("k1", "a")
