"""Unit tests for comparison predicates (θ relations)."""

import pytest

from repro.core.predicate import AttributeRef, Literal, Theta, comparand_from
from repro.errors import IncomparableTypesError


class TestParsing:
    @pytest.mark.parametrize(
        "symbol,member",
        [
            ("=", Theta.EQ),
            ("<>", Theta.NE),
            ("!=", Theta.NE),
            ("<", Theta.LT),
            ("<=", Theta.LE),
            (">", Theta.GT),
            (">=", Theta.GE),
        ],
    )
    def test_from_symbol(self, symbol, member):
        assert Theta.from_symbol(symbol) is member

    def test_unknown_symbol(self):
        with pytest.raises(ValueError):
            Theta.from_symbol("~")

    def test_symbol_roundtrip(self):
        for member in Theta:
            assert Theta.from_symbol(member.symbol) is member


class TestEvaluation:
    def test_equality(self):
        assert Theta.EQ.evaluate("MBA", "MBA")
        assert not Theta.EQ.evaluate("MBA", "MS")

    def test_inequality(self):
        assert Theta.NE.evaluate(1, 2)
        assert not Theta.NE.evaluate(1, 1)

    def test_ordering(self):
        assert Theta.LT.evaluate(1, 2)
        assert Theta.LE.evaluate(2, 2)
        assert Theta.GT.evaluate(3, 2)
        assert Theta.GE.evaluate(2, 2)

    def test_string_ordering(self):
        assert Theta.LT.evaluate("a", "b")

    def test_int_float_comparable(self):
        assert Theta.LT.evaluate(1, 1.5)

    def test_nil_never_matches(self):
        for theta in Theta:
            assert not theta.evaluate(None, "x")
            assert not theta.evaluate("x", None)
            assert not theta.evaluate(None, None)

    def test_cross_type_equality_is_false(self):
        assert not Theta.EQ.evaluate("1", 1)
        assert Theta.NE.evaluate("1", 1)

    def test_cross_type_ordering_raises(self):
        with pytest.raises(IncomparableTypesError):
            Theta.LT.evaluate("a", 1)

    def test_bool_is_not_numeric_for_ordering(self):
        with pytest.raises(IncomparableTypesError):
            Theta.LT.evaluate(True, 2.5)
        assert Theta.LT.evaluate(False, True)


class TestFlipped:
    @pytest.mark.parametrize(
        "theta,flip",
        [
            (Theta.EQ, Theta.EQ),
            (Theta.NE, Theta.NE),
            (Theta.LT, Theta.GT),
            (Theta.LE, Theta.GE),
            (Theta.GT, Theta.LT),
            (Theta.GE, Theta.LE),
        ],
    )
    def test_flip_table(self, theta, flip):
        assert theta.flipped() is flip

    @pytest.mark.parametrize("theta", list(Theta))
    def test_flip_preserves_truth(self, theta):
        assert theta.evaluate(1, 2) == theta.flipped().evaluate(2, 1)


class TestComparands:
    def test_literal_rendering(self):
        assert str(Literal("MBA")) == '"MBA"'
        assert str(Literal(1989)) == "1989"

    def test_attribute_rendering(self):
        assert str(AttributeRef("ANAME")) == "ANAME"

    def test_comparand_from_wraps_values(self):
        assert comparand_from("x") == Literal("x")
        assert comparand_from(5) == Literal(5)

    def test_comparand_from_passes_through(self):
        ref = AttributeRef("A")
        assert comparand_from(ref) is ref
        lit = Literal("x")
        assert comparand_from(lit) is lit
