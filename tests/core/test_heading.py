"""Unit tests for relation headings."""

import pytest

from repro.core.heading import Heading
from repro.errors import (
    AttributeCollisionError,
    DuplicateAttributeError,
    HeadingError,
    UnknownAttributeError,
)


class TestConstruction:
    def test_preserves_order(self):
        h = Heading(["ONAME", "INDUSTRY", "CEO"])
        assert h.attributes == ("ONAME", "INDUSTRY", "CEO")
        assert list(h) == ["ONAME", "INDUSTRY", "CEO"]

    def test_rejects_empty(self):
        with pytest.raises(HeadingError):
            Heading([])

    def test_rejects_duplicates(self):
        with pytest.raises(DuplicateAttributeError):
            Heading(["A", "B", "A"])

    def test_rejects_non_string_names(self):
        with pytest.raises(HeadingError):
            Heading(["A", 3])

    def test_rejects_empty_name(self):
        with pytest.raises(HeadingError):
            Heading([""])

    def test_hash_paper_attribute_names(self):
        # '#' appears in the paper's key attributes (AID#, SID#).
        h = Heading(["AID#", "ANAME"])
        assert "AID#" in h


class TestLookups:
    def test_index(self):
        h = Heading(["A", "B", "C"])
        assert h.index("B") == 1

    def test_index_unknown_raises_with_context(self):
        h = Heading(["A", "B"])
        with pytest.raises(UnknownAttributeError) as err:
            h.index("Z")
        assert "Z" in str(err.value)
        assert "A" in str(err.value)

    def test_indices_follow_request_order(self):
        h = Heading(["A", "B", "C"])
        assert h.indices(["C", "A"]) == (2, 0)

    def test_contains(self):
        h = Heading(["A"])
        assert "A" in h and "B" not in h

    def test_getitem(self):
        assert Heading(["A", "B"])[1] == "B"


class TestEquality:
    def test_equal_same_order(self):
        assert Heading(["A", "B"]) == Heading(["A", "B"])

    def test_order_matters(self):
        assert Heading(["A", "B"]) != Heading(["B", "A"])

    def test_hashable(self):
        assert len({Heading(["A"]), Heading(["A"])}) == 1


class TestDerivation:
    def test_project(self):
        h = Heading(["A", "B", "C"]).project(["C", "B"])
        assert h.attributes == ("C", "B")

    def test_project_unknown(self):
        with pytest.raises(UnknownAttributeError):
            Heading(["A"]).project(["B"])

    def test_concat_disjoint(self):
        h = Heading(["A"]).concat(Heading(["B", "C"]))
        assert h.attributes == ("A", "B", "C")

    def test_concat_collision(self):
        with pytest.raises(AttributeCollisionError):
            Heading(["A", "B"]).concat(Heading(["B"]))

    def test_rename(self):
        h = Heading(["BNAME", "IND"]).rename({"BNAME": "ONAME", "IND": "INDUSTRY"})
        assert h.attributes == ("ONAME", "INDUSTRY")

    def test_rename_unknown_source(self):
        with pytest.raises(UnknownAttributeError):
            Heading(["A"]).rename({"Z": "Y"})

    def test_rename_into_duplicate_rejected(self):
        with pytest.raises(DuplicateAttributeError):
            Heading(["A", "B"]).rename({"A": "B"})

    def test_replace(self):
        assert Heading(["A", "B"]).replace("A", "X").attributes == ("X", "B")

    def test_remove(self):
        assert Heading(["A", "B", "C"]).remove(["B"]).attributes == ("A", "C")

    def test_remove_all_rejected(self):
        with pytest.raises(HeadingError):
            Heading(["A"]).remove(["A"])

    def test_shared_with_uses_left_order(self):
        left = Heading(["C", "A", "B"])
        right = Heading(["A", "C"])
        assert left.shared_with(right) == ("C", "A")
