"""Unit tests for algebra expression trees: rendering, traversal, direct
evaluation."""

import pytest

from repro.core.expression import (
    Coalesce,
    Difference,
    Intersect,
    Join,
    Product,
    Project,
    Restrict,
    SchemeRef,
    Select,
    Union,
    evaluate,
    referenced_schemes,
    walk,
)
from repro.core.predicate import Theta
from repro.core.relation import PolygenRelation
from repro.core.tags import sources
from repro.errors import InvalidOperandError


def paper_expression():
    """The example polygen algebraic expression of §III."""
    return Project(
        Restrict(
            Join(
                Join(
                    Select(SchemeRef("PALUMNUS"), "DEGREE", Theta.EQ, "MBA"),
                    "AID#",
                    Theta.EQ,
                    "AID#",
                    SchemeRef("PCAREER"),
                ),
                "ONAME",
                Theta.EQ,
                "ONAME",
                SchemeRef("PORGANIZATION"),
            ),
            "CEO",
            Theta.EQ,
            "ANAME",
        ),
        ["ONAME", "CEO"],
    )


class TestRendering:
    def test_paper_expression_renders_in_bracket_notation(self):
        text = paper_expression().render()
        assert text == (
            '(((((PALUMNUS [DEGREE = "MBA"]) [AID# = AID#] PCAREER) '
            "[ONAME = ONAME] PORGANIZATION) [CEO = ANAME]) [ONAME, CEO])"
        )

    def test_literal_rendering_for_numbers(self):
        node = Select(SchemeRef("PFINANCE"), "YEAR", Theta.EQ, 1989)
        assert node.render() == "(PFINANCE [YEAR = 1989])"

    def test_set_operator_rendering(self):
        a, b = SchemeRef("A"), SchemeRef("B")
        assert Union(a, b).render() == "(A UNION B)"
        assert Difference(a, b).render() == "(A MINUS B)"
        assert Product(a, b).render() == "(A TIMES B)"
        assert Intersect(a, b).render() == "(A INTERSECT B)"

    def test_coalesce_rendering(self):
        node = Coalesce(SchemeRef("R"), "IND", "TRADE", "INDUSTRY")
        assert node.render() == "(R [IND COALESCE TRADE AS INDUSTRY])"

    def test_str_is_render(self):
        assert str(SchemeRef("X")) == "X"


class TestTraversal:
    def test_walk_is_post_order(self):
        expr = paper_expression()
        kinds = [type(node).__name__ for node in walk(expr)]
        assert kinds == [
            "SchemeRef",  # PALUMNUS
            "Select",
            "SchemeRef",  # PCAREER
            "Join",
            "SchemeRef",  # PORGANIZATION
            "Join",
            "Restrict",
            "Project",
        ]

    def test_referenced_schemes_first_use_order(self):
        assert referenced_schemes(paper_expression()) == (
            "PALUMNUS",
            "PCAREER",
            "PORGANIZATION",
        )


class TestEvaluate:
    def setup_method(self):
        self.relations = {
            "R": PolygenRelation.from_data(
                ["A", "B"], [["x", 1], ["y", 2]], origins=["AD"]
            ),
            "S": PolygenRelation.from_data(
                ["A", "C"], [["x", 10]], origins=["CD"]
            ),
            "R2": PolygenRelation.from_data(["A", "B"], [["z", 3]], origins=["PD"]),
        }
        self.resolve = self.relations.__getitem__

    def test_scheme_ref_resolves(self):
        assert evaluate(SchemeRef("R"), self.resolve) == self.relations["R"]

    def test_select(self):
        out = evaluate(Select(SchemeRef("R"), "B", Theta.EQ, 1), self.resolve)
        assert out.data_rows() == (("x", 1),)

    def test_restrict(self):
        r = PolygenRelation.from_data(["A", "B"], [[1, 1], [1, 2]], origins=["AD"])
        out = evaluate(
            Restrict(SchemeRef("T"), "A", Theta.EQ, "B"), {"T": r}.__getitem__
        )
        assert out.data_rows() == ((1, 1),)

    def test_join_coalesces_same_name(self):
        out = evaluate(
            Join(SchemeRef("R"), "A", Theta.EQ, "A", SchemeRef("S")), self.resolve
        )
        assert out.attributes == ("A", "B", "C")
        assert out.tuples[0][0].origins == sources("AD", "CD")

    def test_project(self):
        out = evaluate(Project(SchemeRef("R"), ["B"]), self.resolve)
        assert set(out.data_rows()) == {(1,), (2,)}

    def test_union(self):
        out = evaluate(Union(SchemeRef("R"), SchemeRef("R2")), self.resolve)
        assert out.cardinality == 3

    def test_difference(self):
        out = evaluate(Difference(SchemeRef("R"), SchemeRef("R2")), self.resolve)
        assert out.cardinality == 2

    def test_product(self):
        out = evaluate(
            Product(SchemeRef("R"), SchemeRef("B_only")),
            {**self.relations, "B_only": PolygenRelation.from_data(["Z"], [["z"]])}.__getitem__,
        )
        assert out.attributes == ("A", "B", "Z")
        assert out.cardinality == 2

    def test_product_collision_raises(self):
        from repro.errors import AttributeCollisionError

        with pytest.raises(AttributeCollisionError):
            evaluate(Product(SchemeRef("R"), SchemeRef("S")), self.resolve)

    def test_intersect(self):
        out = evaluate(Intersect(SchemeRef("R"), SchemeRef("R2")), self.resolve)
        assert out.cardinality == 0

    def test_coalesce(self):
        r = PolygenRelation.from_data(["X", "Y"], [["v", None]], origins=["AD"])
        out = evaluate(
            Coalesce(SchemeRef("T"), "X", "Y", "W"), {"T": r}.__getitem__
        )
        assert out.attributes == ("W",)

    def test_unknown_node_rejected(self):
        class Rogue(SchemeRef.__mro__[1]):  # Expression subclass sans evaluate
            def render(self):
                return "rogue"

        with pytest.raises(InvalidOperandError):
            evaluate(Rogue(), self.resolve)

    def test_paper_expression_shape_over_stub_relations(self):
        # Evaluate the §III expression directly over small stand-in
        # relations (no LQP pipeline): checks expression plumbing end to end.
        relations = {
            "PALUMNUS": PolygenRelation.from_data(
                ["AID#", "ANAME", "DEGREE", "MAJOR"],
                [["123", "Bob Swanson", "MBA", "MGT"], ["789", "Ken Olsen", "MS", "EE"]],
                origins=["AD"],
            ),
            "PCAREER": PolygenRelation.from_data(
                ["AID#", "ONAME", "POSITION"],
                [["123", "Genentech", "CEO"], ["789", "DEC", "CEO"]],
                origins=["AD"],
            ),
            "PORGANIZATION": PolygenRelation.from_data(
                ["ONAME", "INDUSTRY", "CEO", "HEADQUARTERS"],
                [["Genentech", "High Tech", "Bob Swanson", "CA"]],
                origins=["CD"],
            ),
        }
        out = evaluate(paper_expression(), relations.__getitem__)
        assert out.attributes == ("ONAME", "CEO")
        assert out.data_rows() == (("Genentech", "Bob Swanson"),)
