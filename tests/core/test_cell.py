"""Unit tests for polygen cells: the (datum, origins, intermediates) triplet."""

import pytest

from repro.core.cell import NIL, Cell, ConflictPolicy
from repro.core.tags import EMPTY_SOURCES, sources
from repro.errors import CoalesceConflictError


class TestConstruction:
    def test_of_builds_frozensets(self):
        cell = Cell.of("IBM", ["AD", "PD"], ["CD"])
        assert cell.datum == "IBM"
        assert cell.origins == frozenset({"AD", "PD"})
        assert cell.intermediates == frozenset({"CD"})

    def test_plain_sets_are_normalized(self):
        cell = Cell("IBM", {"AD"}, {"PD"})
        assert isinstance(cell.origins, frozenset)
        assert isinstance(cell.intermediates, frozenset)

    def test_default_tags_are_empty(self):
        cell = Cell("IBM")
        assert cell.origins == EMPTY_SOURCES
        assert cell.intermediates == EMPTY_SOURCES

    def test_nil_constructor(self):
        cell = Cell.nil(["AD"])
        assert cell.is_nil
        assert cell.origins == EMPTY_SOURCES
        assert cell.intermediates == sources("AD")

    def test_nil_singleton_is_fully_empty(self):
        assert NIL.is_nil
        assert NIL.origins == EMPTY_SOURCES
        assert NIL.intermediates == EMPTY_SOURCES

    def test_cells_hash_and_compare_by_value(self):
        a = Cell.of("x", ["AD"], ["PD"])
        b = Cell.of("x", ["AD"], ["PD"])
        assert a == b
        assert hash(a) == hash(b)
        assert len({a, b}) == 1

    def test_inequality_on_any_component(self):
        base = Cell.of("x", ["AD"], ["PD"])
        assert base != Cell.of("y", ["AD"], ["PD"])
        assert base != Cell.of("x", ["CD"], ["PD"])
        assert base != Cell.of("x", ["AD"], ["CD"])


class TestPredicates:
    def test_is_nil_only_for_none(self):
        assert Cell(None).is_nil
        assert not Cell(0).is_nil
        assert not Cell("").is_nil

    def test_data_equals_ignores_tags(self):
        assert Cell.of("x", ["AD"]).data_equals(Cell.of("x", ["CD"], ["PD"]))
        assert not Cell.of("x").data_equals(Cell.of("y"))

    def test_data_equals_nil_nil(self):
        assert Cell(None).data_equals(Cell.nil(["AD"]))


class TestWithIntermediates:
    def test_adds_sources(self):
        cell = Cell.of("x", ["AD"]).with_intermediates(sources("PD"))
        assert cell.intermediates == sources("PD")
        assert cell.origins == sources("AD")

    def test_union_not_replace(self):
        cell = Cell.of("x", ["AD"], ["CD"]).with_intermediates(sources("PD"))
        assert cell.intermediates == sources("CD", "PD")

    def test_noop_returns_same_object(self):
        cell = Cell.of("x", ["AD"], ["PD"])
        assert cell.with_intermediates(sources("PD")) is cell
        assert cell.with_intermediates(EMPTY_SOURCES) is cell


class TestMergeTags:
    def test_unions_both_portions(self):
        a = Cell.of("x", ["AD"], ["AD"])
        b = Cell.of("x", ["CD"], ["PD"])
        merged = a.merge_tags(b)
        assert merged.datum == "x"
        assert merged.origins == sources("AD", "CD")
        assert merged.intermediates == sources("AD", "PD")

    def test_rejects_different_data(self):
        with pytest.raises(CoalesceConflictError):
            Cell.of("x").merge_tags(Cell.of("y"))


class TestCoalesce:
    """The cell-level Coalesce operator (paper, §II)."""

    def test_equal_data_union_tags(self):
        a = Cell.of("IBM", ["AD"], ["AD"])
        b = Cell.of("IBM", ["PD"], ["PD"])
        out = a.coalesce_with(b)
        assert out.datum == "IBM"
        assert out.origins == sources("AD", "PD")
        assert out.intermediates == sources("AD", "PD")

    def test_right_nil_takes_left_verbatim(self):
        a = Cell.of("Hotel", ["AD"], ["AD"])
        out = a.coalesce_with(Cell.nil(["PD"]))
        assert out == a

    def test_left_nil_takes_right_verbatim(self):
        b = Cell.of("CA", ["PD"], ["PD"])
        out = Cell.nil(["AD"]).coalesce_with(b)
        assert out == b

    def test_both_nil_unions_tags(self):
        out = Cell.nil(["AD"]).coalesce_with(Cell.nil(["PD"]))
        assert out.is_nil
        assert out.intermediates == sources("AD", "PD")

    def test_conflict_drop_returns_none(self):
        assert Cell.of("a").coalesce_with(Cell.of("b")) is None

    def test_conflict_error_policy_raises(self):
        with pytest.raises(CoalesceConflictError) as err:
            Cell.of("a").coalesce_with(Cell.of("b"), ConflictPolicy.ERROR, attribute="X")
        assert "X" in str(err.value)

    def test_conflict_prefer_left(self):
        a = Cell.of("a", ["AD"], [])
        b = Cell.of("b", ["CD"], ["PD"])
        out = a.coalesce_with(b, ConflictPolicy.PREFER_LEFT)
        assert out.datum == "a"
        assert out.origins == sources("AD")
        # The losing side's sources are recorded as intermediates.
        assert out.intermediates == sources("CD", "PD")

    def test_conflict_prefer_right(self):
        a = Cell.of("a", ["AD"], [])
        b = Cell.of("b", ["CD"], [])
        out = a.coalesce_with(b, ConflictPolicy.PREFER_RIGHT)
        assert out.datum == "b"
        assert out.origins == sources("CD")
        assert out.intermediates == sources("AD")


class TestRendering:
    def test_paper_notation(self):
        cell = Cell.of("IBM", ["AD"], ["PD", "AD"])
        assert cell.render() == "IBM, {AD}, {AD, PD}"

    def test_nil_rendering(self):
        assert Cell.nil(["AD"]).render() == "nil, {}, {AD}"

    def test_repr_contains_render(self):
        assert "IBM" in repr(Cell.of("IBM", ["AD"]))
