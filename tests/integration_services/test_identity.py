"""Unit tests for instance identity resolution."""

import pytest

from repro.errors import IntegrationError
from repro.integration.identity import IdentityResolver


class TestIdentityResolver:
    def test_resolves_variants_to_canonical(self):
        resolver = IdentityResolver({"Citicorp": ["CitiCorp", "CITICORP"]})
        assert resolver.resolve("CitiCorp") == "Citicorp"
        assert resolver.resolve("CITICORP") == "Citicorp"

    def test_canonical_resolves_to_itself(self):
        resolver = IdentityResolver({"Citicorp": ["CitiCorp"]})
        assert resolver.resolve("Citicorp") == "Citicorp"

    def test_unregistered_pass_through(self):
        resolver = IdentityResolver()
        assert resolver.resolve("IBM") == "IBM"
        assert resolver.resolve(42) == 42
        assert resolver.resolve(None) is None

    def test_identity_constructor(self):
        assert len(IdentityResolver.identity()) == 0

    def test_is_registered(self):
        resolver = IdentityResolver({"IBM": ["I.B.M."]})
        assert resolver.is_registered("I.B.M.")
        assert resolver.is_registered("IBM")
        assert not resolver.is_registered("DEC")

    def test_conflicting_group_rejected(self):
        resolver = IdentityResolver({"IBM": ["I.B.M."]})
        with pytest.raises(IntegrationError):
            resolver.add_group("International Business Machines", ["I.B.M."])

    def test_re_adding_same_mapping_is_fine(self):
        resolver = IdentityResolver({"IBM": ["I.B.M."]})
        resolver.add_group("IBM", ["I.B.M.", "ibm"])
        assert resolver.resolve("ibm") == "IBM"

    def test_groups_listing(self):
        resolver = IdentityResolver({"IBM": ["I.B.M."], "Citicorp": ["CitiCorp"]})
        groups = dict(resolver.groups())
        assert groups["IBM"] == ("I.B.M.",)
        assert groups["Citicorp"] == ("CitiCorp",)

    def test_paper_example_non_string_ids(self):
        # "social security identification number vs employee identification
        # number" — identifiers need not be strings.
        resolver = IdentityResolver({1001: [("ssn", "078-05-1120")]})
        assert resolver.resolve(("ssn", "078-05-1120")) == 1001
