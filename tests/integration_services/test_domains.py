"""Unit tests for domain mappings (unit/scale/representation transforms)."""

import pytest

from repro.errors import IntegrationError, UnknownTransformError
from repro.integration.domains import (
    TransformRegistry,
    billions_to_units,
    city_state_to_state,
    default_registry,
    millions_to_units,
    money_text_to_float,
    strip_whitespace,
    uppercase,
)


class TestCityStateToState:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("NY, NY", "NY"),
            ("Cambridge, MA", "MA"),
            ("So. San Francisco, CA", "CA"),
            ("Dearborn, MI", "MI"),
            ("MA", "MA"),  # already bare
            ("  Armonk,  NY ", "NY"),
        ],
    )
    def test_paper_hq_values(self, text, expected):
        assert city_state_to_state(text) == expected


class TestMoneyTextToFloat:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("1.7 bil", 1.7e9),
            ("-1.7 bil", -1.7e9),
            ("648 mil", 6.48e8),
            ("1 mil", 1e6),
            ("5.5 bil", 5.5e9),
            ("400 mil", 4e8),
            ("$2.5 mil", 2.5e6),
            ("120k", 1.2e5),
            ("42", 42.0),
        ],
    )
    def test_paper_profit_values(self, text, expected):
        assert money_text_to_float(text) == pytest.approx(expected)

    def test_numbers_pass_through(self):
        assert money_text_to_float(7) == 7.0
        assert money_text_to_float(7.5) == 7.5

    def test_garbage_rejected(self):
        with pytest.raises(ValueError):
            money_text_to_float("lots of money")


class TestScalarTransforms:
    def test_strip_whitespace(self):
        assert strip_whitespace("  x ") == "x"
        assert strip_whitespace(5) == 5

    def test_uppercase(self):
        assert uppercase("ibm") == "IBM"
        assert uppercase(5) == 5

    def test_scale_conversions(self):
        assert millions_to_units(1.5) == 1.5e6
        assert billions_to_units(2) == 2e9


class TestRegistry:
    def test_default_registry_contents(self):
        registry = default_registry()
        for name in (
            "city_state_to_state",
            "money_text_to_float",
            "strip_whitespace",
            "uppercase",
            "millions_to_units",
            "billions_to_units",
        ):
            assert name in registry

    def test_get_unknown(self):
        with pytest.raises(UnknownTransformError):
            default_registry().get("nope")

    def test_register_and_call(self):
        registry = TransformRegistry()
        transform = registry.register("double", lambda v: v * 2, "double it")
        assert registry.get("double")(21) == 42
        assert transform.description == "double it"

    def test_duplicate_name_rejected(self):
        registry = TransformRegistry()
        registry.register("t", lambda v: v, "")
        with pytest.raises(IntegrationError):
            registry.register("t", lambda v: v, "")

    def test_transform_preserves_none(self):
        registry = default_registry()
        assert registry.get("money_text_to_float")(None) is None

    def test_transform_failure_is_wrapped(self):
        registry = default_registry()
        with pytest.raises(IntegrationError) as err:
            registry.get("money_text_to_float")("garbage value")
        assert "money_text_to_float" in str(err.value)
        assert "garbage value" in str(err.value)

    def test_iteration_and_names(self):
        registry = default_registry()
        assert set(registry.names()) == {name for name, _ in registry}
