"""Tests for the span-tree and timeline renderers."""

from repro.display.trace import render_span_tree, render_timeline
from repro.obs.trace import Span, Tracer


def _sample_trace():
    tracer = Tracer()
    root = tracer.start("query", kind="sql")
    execute = root.child("execute")
    row = execute.child("row R(1)", location="AD")
    serve = Span.from_payload(
        {
            "name": "serve.retrieve",
            "trace": root.trace_id,
            "span": "srv-1",
            "parent": row.span_id,
            "start": row.start,
            "finish": row.start + 0.001,
            "status": "ok",
        }
    )
    row._book.add(serve)
    serve.trace_id = root.trace_id
    serve._book = row._book
    row.end()
    execute.end()
    root.end()
    return root


class TestRenderSpanTree:
    def test_structure_and_flags(self):
        text = render_span_tree(_sample_trace(), attributes=False)
        lines = text.splitlines()
        assert lines[0].startswith("query")
        assert any(line.lstrip("│ ├└─").startswith("execute") for line in lines)
        # The remote span is nested under its row and flagged.
        row_index = next(i for i, l in enumerate(lines) if "row R(1)" in l)
        serve_index = next(i for i, l in enumerate(lines) if "serve.retrieve" in l)
        assert serve_index == row_index + 1
        assert "[remote]" in lines[serve_index]
        assert all("ms" in line for line in lines)

    def test_attributes_rendered_when_asked(self):
        text = render_span_tree(_sample_trace())
        assert "(kind=sql)" in text
        assert "location=AD" in text

    def test_error_status_flagged(self):
        span = Tracer().start("op")
        span.end(ValueError("nope"))
        assert "[error]" in render_span_tree([span])

    def test_accepts_query_result_like_objects(self):
        class _Trace:
            spans = _sample_trace().trace_spans()

        class _Result:
            trace = _Trace()

        assert render_span_tree(_Result()).startswith("query")

    def test_empty_trace(self):
        assert render_span_tree([]) == "(no spans)"


class TestRenderTimeline:
    def test_bars_fit_width_and_mark_remote(self):
        text = render_timeline(_sample_trace(), width=30)
        lines = text.splitlines()
        assert len(lines) == 4
        for line in lines:
            assert line.startswith("|") and "#" in line
            assert len(line.split("|")[1]) == 30
        assert any("*serve.retrieve" in line for line in lines)

    def test_longest_span_fills_the_strip(self):
        # The synthetic remote span dominates this trace's extent, so its
        # bar must run edge to edge while shorter spans stay slivers.
        text = render_timeline(_sample_trace(), width=20)
        longest = next(l for l in text.splitlines() if "serve.retrieve" in l)
        assert longest[1:21] == "#" * 20
        sliver = next(l for l in text.splitlines() if " query" in l)
        assert sliver[1:21] != "#" * 20

    def test_empty_trace(self):
        assert render_timeline([]) == "(no spans)"
