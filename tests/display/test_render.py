"""Unit tests for paper-style rendering."""

import pytest

from repro.core.cell import Cell
from repro.core.relation import PolygenRelation
from repro.display.render import render_relation, render_relation_markdown


@pytest.fixture
def relation():
    return PolygenRelation.from_cells(
        ["ONAME", "CEO"],
        [
            [
                Cell.of("Genentech", ["AD", "CD"], ["AD", "CD"]),
                Cell.of("Bob Swanson", ["CD"], ["AD", "CD"]),
            ],
            [
                Cell.of("MIT", ["AD"], ["AD"]),
                Cell.nil(["AD"]),
            ],
        ],
    )


class TestTextRendering:
    def test_cells_use_paper_notation(self, relation):
        text = render_relation(relation)
        assert "Genentech, {AD, CD}, {AD, CD}" in text
        assert "Bob Swanson, {CD}, {AD, CD}" in text

    def test_nil_rendering(self, relation):
        assert "nil, {}, {AD}" in render_relation(relation)

    def test_header_and_separator(self, relation):
        lines = render_relation(relation).splitlines()
        assert lines[0].startswith("ONAME")
        assert set(lines[1]) == {"-"}

    def test_sorted_option(self, relation):
        text = render_relation(relation, sort=True)
        assert text.index("Genentech") < text.index("MIT")

    def test_columns_align(self, relation):
        lines = render_relation(relation).splitlines()
        body = [line for line in lines[2:]]
        first_column_width = max(len(line.split("  ")[0]) for line in body)
        assert first_column_width <= len(lines[1])


class TestMarkdownRendering:
    def test_table_structure(self, relation):
        text = render_relation_markdown(relation)
        lines = text.splitlines()
        assert lines[0] == "| ONAME | CEO |"
        assert lines[1].startswith("|") and "---" in lines[1]
        assert len(lines) == 2 + relation.cardinality

    def test_cells_present(self, relation):
        text = render_relation_markdown(relation, sort=True)
        assert "| Genentech, {AD, CD}, {AD, CD} |" in text
