"""Unit tests for plan and source graphs."""

import pytest

from repro.datasets.paper import build_paper_federation
from repro.display.graph import plan_graph, source_graph, to_dot
from repro.display.graphlib import DiGraph

from tests.integration.conftest import PAPER_SQL


@pytest.fixture(scope="module")
def paper_run():
    return build_paper_federation().run_sql(PAPER_SQL)


class TestPlanGraph:
    def test_nodes_match_plan_rows(self, paper_run):
        graph = plan_graph(paper_run.iom)
        assert graph.number_of_nodes() == len(paper_run.iom)

    def test_edges_follow_dataflow(self, paper_run):
        graph = plan_graph(paper_run.iom)
        # R(7) (the Merge) consumes R(4), R(5), R(6).
        assert set(graph.predecessors(7)) == {4, 5, 6}
        # R(10) (the final Project) consumes R(9).
        assert set(graph.predecessors(10)) == {9}

    def test_is_a_dag_with_single_sink(self, paper_run):
        graph = plan_graph(paper_run.iom)
        assert isinstance(graph, DiGraph)
        assert graph.is_dag()
        sinks = [node for node in graph if graph.out_degree(node) == 0]
        assert sinks == [10]

    def test_node_attributes(self, paper_run):
        graph = plan_graph(paper_run.iom)
        assert graph.nodes[1]["local"] is True
        assert graph.nodes[1]["location"] == "AD"
        assert "Select" in graph.nodes[1]["label"]
        assert graph.nodes[7]["location"] == "PQP"


class TestSourceGraph:
    def test_attributes_and_databases_as_nodes(self, paper_run):
        graph = source_graph(paper_run.relation)
        kinds = {data["kind"] for _, data in graph.nodes(data=True)}
        assert kinds == {"attribute", "database"}
        databases = {
            data["name"]
            for _, data in graph.nodes(data=True)
            if data["kind"] == "database"
        }
        assert databases == {"AD", "PD", "CD"}

    def test_origin_edges(self, paper_run):
        graph = source_graph(paper_run.relation)
        edge = graph.edges[("attribute", "CEO"), ("database", "CD")]
        assert edge["role"] == "origin"

    def test_intermediate_only_edge(self, paper_run):
        # PD never originates a CEO datum; it only mediates.
        graph = source_graph(paper_run.relation)
        edge = graph.edges[("attribute", "CEO"), ("database", "PD")]
        assert edge["role"] == "intermediate"


class TestDot:
    def test_plan_dot(self, paper_run):
        dot = to_dot(plan_graph(paper_run.iom))
        assert dot.startswith("digraph")
        assert "Merge" in dot
        assert "->" in dot

    def test_source_dot_marks_intermediates_dashed(self, paper_run):
        dot = to_dot(source_graph(paper_run.relation))
        assert dot.startswith("graph")
        assert "style=dashed" in dot
        assert "--" in dot
