"""Tests for the package-level public API and the error hierarchy."""

import pytest

import repro
from repro import errors


class TestLazyExports:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_build_paper_federation(self):
        pqp = repro.build_paper_federation()
        assert pqp.registry.names() == ("AD", "PD", "CD")

    def test_schema_and_databases(self):
        assert len(repro.paper_polygen_schema()) == 6
        assert set(repro.paper_databases()) == {"AD", "PD", "CD"}

    def test_processor_class(self):
        from repro.pqp.processor import PolygenQueryProcessor

        assert repro.PolygenQueryProcessor is PolygenQueryProcessor

    def test_service_classes(self):
        from repro.pqp.result import QueryResult
        from repro.service.federation import PolygenFederation
        from repro.service.options import QueryOptions

        assert repro.PolygenFederation is PolygenFederation
        assert repro.QueryOptions is QueryOptions
        assert repro.QueryResult is QueryResult

    def test_dir_lists_the_flat_api(self):
        listed = dir(repro)
        for name in repro.__all__:
            assert name in listed
        # Lazy exports are discoverable without having been touched.
        assert "PolygenFederation" in listed and "QueryOptions" in listed

    def test_service_package_dir_and_lazy_exports(self):
        from repro import service

        assert "PolygenFederation" in dir(service)
        assert service.Session.__name__ == "Session"
        with pytest.raises(AttributeError):
            service.nonexistent_thing

    def test_unknown_attribute(self):
        with pytest.raises(AttributeError):
            repro.nonexistent_thing

    def test_streaming_api_classes(self):
        from repro.service.cursor import Cursor
        from repro.service.handle import QueryHandle
        from repro.service.session import Session

        assert repro.Cursor is Cursor
        assert repro.QueryHandle is QueryHandle
        assert repro.Session is Session
        assert callable(repro.connect)
        assert "connect" in repro.__all__

    def test_every_all_entry_resolves(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None


class TestConnect:
    def test_connect_to_existing_federation(self):
        from repro.datasets.paper import (
            paper_databases,
            paper_identity_resolver,
            paper_polygen_schema,
        )
        from repro.lqp.registry import LQPRegistry
        from repro.lqp.relational_lqp import RelationalLQP

        registry = LQPRegistry()
        for database in paper_databases().values():
            registry.register(RelationalLQP(database))
        with repro.PolygenFederation(
            paper_polygen_schema(), registry, resolver=paper_identity_resolver()
        ) as federation:
            with repro.connect(federation, fetch_size=5) as session:
                assert session.defaults.fetch_size == 5
                result = session.execute('SELECT ANAME FROM PALUMNUS')
                assert result.relation.cardinality > 0
            assert not federation.closed  # caller's federation stays up

    def test_connect_rejects_nonsense(self):
        with pytest.raises(TypeError, match="connect"):
            repro.connect(42)
        with pytest.raises(TypeError, match="connect"):
            repro.connect([])

    def test_connect_urls_owns_the_federation(self):
        from repro.datasets.paper import (
            paper_databases,
            paper_identity_resolver,
            paper_polygen_schema,
        )
        from repro.lqp.relational_lqp import RelationalLQP
        from repro.net import LQPServer

        servers = [
            LQPServer(
                RelationalLQP(database), schema=paper_polygen_schema()
            ).start()
            for database in paper_databases().values()
        ]
        try:
            session = repro.connect(
                [server.url for server in servers],
                resolver=paper_identity_resolver(),
            )
            with session:
                result = session.execute(
                    'SELECT ANAME FROM PALUMNUS WHERE DEGREE = "MBA"'
                )
                assert result.relation.cardinality == 5
                owned = session._owned_federation
                assert owned is not None
            assert owned.closed  # closing the session tears it all down
        finally:
            for server in servers:
                server.stop()


class TestDeprecationShims:
    def test_query_result_legacy_path_warns_once(self):
        import importlib
        import warnings

        import repro._compat as compat
        import repro.pqp.processor as processor
        from repro.pqp.result import QueryResult

        compat._warned.discard(
            ("repro.pqp.processor.QueryResult", "repro.pqp.result")
        )
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            assert processor.QueryResult is QueryResult
            assert processor.QueryResult is QueryResult  # second touch
        messages = [w for w in caught if issubclass(w.category, DeprecationWarning)]
        assert len(messages) == 1
        assert "repro.pqp.result" in str(messages[0].message)

    def test_worker_pool_legacy_path_warns_once(self):
        import warnings

        import repro._compat as compat
        import repro.pqp.runtime as runtime
        from repro.pqp.pool import WorkerPool

        compat._warned.discard(("repro.pqp.runtime.WorkerPool", "repro.pqp.pool"))
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            assert runtime.WorkerPool is WorkerPool
            assert runtime.WorkerPool is WorkerPool
        messages = [w for w in caught if issubclass(w.category, DeprecationWarning)]
        assert len(messages) == 1

    def test_new_homes_do_not_warn(self):
        import warnings

        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            from repro.pqp.pool import WorkerPool  # noqa: F401
            from repro.pqp.result import QueryResult  # noqa: F401
        assert not [
            w for w in caught if issubclass(w.category, DeprecationWarning)
        ]

    def test_unknown_module_attributes_still_raise(self):
        import repro.pqp.processor as processor
        import repro.pqp.runtime as runtime

        with pytest.raises(AttributeError):
            processor.not_a_thing
        with pytest.raises(AttributeError):
            runtime.not_a_thing


class TestErrorHierarchy:
    def test_every_error_is_a_polygen_error(self):
        for name in errors.__all__:
            exception_class = getattr(errors, name)
            assert issubclass(exception_class, errors.PolygenError)

    def test_key_errors_render_cleanly(self):
        # KeyError subclasses normally repr() their message; ours override
        # __str__ so error text reads naturally.
        err = errors.UnknownSchemeError("NOPE")
        assert str(err) == "unknown polygen scheme 'NOPE'"
        err = errors.UnknownDatabaseError("XX")
        assert "XX" in str(err) and not str(err).startswith('"')

    def test_catch_all_family(self):
        from repro.core.heading import Heading

        with pytest.raises(errors.PolygenError):
            Heading([])


class TestSelfJoinLimitation:
    """Self-joins of a polygen scheme are not expressible (documented).

    The paper's SQL subset has no table aliases, so a self-join would need
    two copies of the same polygen relation with colliding attribute names;
    the Cartesian product rejects that explicitly rather than guessing.
    """

    def test_self_join_raises_attribute_collision(self):
        pqp = repro.build_paper_federation()
        from repro.errors import AttributeCollisionError, ExecutionError

        with pytest.raises((AttributeCollisionError, ExecutionError)) as err:
            pqp.run_algebra("PALUMNUS [AID# = AID#] PALUMNUS")
        assert "share" in str(err.value) or "collision" in str(err.value).lower()

    def test_self_union_is_fine(self):
        pqp = repro.build_paper_federation()
        result = pqp.run_algebra("(PALUMNUS [ANAME]) UNION (PALUMNUS [ANAME])")
        assert result.relation.cardinality == 8
        # The optimizer deduplicated the two ALUMNUS retrieves.
        retrieves = [row for row in result.iom if row.op.value == "Retrieve"]
        assert len(retrieves) == 1
