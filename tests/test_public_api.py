"""Tests for the package-level public API and the error hierarchy."""

import pytest

import repro
from repro import errors


class TestLazyExports:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_build_paper_federation(self):
        pqp = repro.build_paper_federation()
        assert pqp.registry.names() == ("AD", "PD", "CD")

    def test_schema_and_databases(self):
        assert len(repro.paper_polygen_schema()) == 6
        assert set(repro.paper_databases()) == {"AD", "PD", "CD"}

    def test_processor_class(self):
        from repro.pqp.processor import PolygenQueryProcessor

        assert repro.PolygenQueryProcessor is PolygenQueryProcessor

    def test_unknown_attribute(self):
        with pytest.raises(AttributeError):
            repro.nonexistent_thing


class TestErrorHierarchy:
    def test_every_error_is_a_polygen_error(self):
        for name in errors.__all__:
            exception_class = getattr(errors, name)
            assert issubclass(exception_class, errors.PolygenError)

    def test_key_errors_render_cleanly(self):
        # KeyError subclasses normally repr() their message; ours override
        # __str__ so error text reads naturally.
        err = errors.UnknownSchemeError("NOPE")
        assert str(err) == "unknown polygen scheme 'NOPE'"
        err = errors.UnknownDatabaseError("XX")
        assert "XX" in str(err) and not str(err).startswith('"')

    def test_catch_all_family(self):
        from repro.core.heading import Heading

        with pytest.raises(errors.PolygenError):
            Heading([])


class TestSelfJoinLimitation:
    """Self-joins of a polygen scheme are not expressible (documented).

    The paper's SQL subset has no table aliases, so a self-join would need
    two copies of the same polygen relation with colliding attribute names;
    the Cartesian product rejects that explicitly rather than guessing.
    """

    def test_self_join_raises_attribute_collision(self):
        pqp = repro.build_paper_federation()
        from repro.errors import AttributeCollisionError, ExecutionError

        with pytest.raises((AttributeCollisionError, ExecutionError)) as err:
            pqp.run_algebra("PALUMNUS [AID# = AID#] PALUMNUS")
        assert "share" in str(err.value) or "collision" in str(err.value).lower()

    def test_self_union_is_fine(self):
        pqp = repro.build_paper_federation()
        result = pqp.run_algebra("(PALUMNUS [ANAME]) UNION (PALUMNUS [ANAME])")
        assert result.relation.cardinality == 8
        # The optimizer deduplicated the two ALUMNUS retrieves.
        retrieves = [row for row in result.iom if row.op.value == "Retrieve"]
        assert len(retrieves) == 1
