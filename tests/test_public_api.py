"""Tests for the package-level public API and the error hierarchy."""

import pytest

import repro
from repro import errors


class TestLazyExports:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_build_paper_federation(self):
        pqp = repro.build_paper_federation()
        assert pqp.registry.names() == ("AD", "PD", "CD")

    def test_schema_and_databases(self):
        assert len(repro.paper_polygen_schema()) == 6
        assert set(repro.paper_databases()) == {"AD", "PD", "CD"}

    def test_processor_class(self):
        from repro.pqp.processor import PolygenQueryProcessor

        assert repro.PolygenQueryProcessor is PolygenQueryProcessor

    def test_service_classes(self):
        from repro.pqp.result import QueryResult
        from repro.service.federation import PolygenFederation
        from repro.service.options import QueryOptions

        assert repro.PolygenFederation is PolygenFederation
        assert repro.QueryOptions is QueryOptions
        assert repro.QueryResult is QueryResult

    def test_dir_lists_the_flat_api(self):
        listed = dir(repro)
        for name in repro.__all__:
            assert name in listed
        # Lazy exports are discoverable without having been touched.
        assert "PolygenFederation" in listed and "QueryOptions" in listed

    def test_service_package_dir_and_lazy_exports(self):
        from repro import service

        assert "PolygenFederation" in dir(service)
        assert service.Session.__name__ == "Session"
        with pytest.raises(AttributeError):
            service.nonexistent_thing

    def test_unknown_attribute(self):
        with pytest.raises(AttributeError):
            repro.nonexistent_thing


class TestErrorHierarchy:
    def test_every_error_is_a_polygen_error(self):
        for name in errors.__all__:
            exception_class = getattr(errors, name)
            assert issubclass(exception_class, errors.PolygenError)

    def test_key_errors_render_cleanly(self):
        # KeyError subclasses normally repr() their message; ours override
        # __str__ so error text reads naturally.
        err = errors.UnknownSchemeError("NOPE")
        assert str(err) == "unknown polygen scheme 'NOPE'"
        err = errors.UnknownDatabaseError("XX")
        assert "XX" in str(err) and not str(err).startswith('"')

    def test_catch_all_family(self):
        from repro.core.heading import Heading

        with pytest.raises(errors.PolygenError):
            Heading([])


class TestSelfJoinLimitation:
    """Self-joins of a polygen scheme are not expressible (documented).

    The paper's SQL subset has no table aliases, so a self-join would need
    two copies of the same polygen relation with colliding attribute names;
    the Cartesian product rejects that explicitly rather than guessing.
    """

    def test_self_join_raises_attribute_collision(self):
        pqp = repro.build_paper_federation()
        from repro.errors import AttributeCollisionError, ExecutionError

        with pytest.raises((AttributeCollisionError, ExecutionError)) as err:
            pqp.run_algebra("PALUMNUS [AID# = AID#] PALUMNUS")
        assert "share" in str(err.value) or "collision" in str(err.value).lower()

    def test_self_union_is_fine(self):
        pqp = repro.build_paper_federation()
        result = pqp.run_algebra("(PALUMNUS [ANAME]) UNION (PALUMNUS [ANAME])")
        assert result.relation.cardinality == 8
        # The optimizer deduplicated the two ALUMNUS retrieves.
        retrieves = [row for row in result.iom if row.op.value == "Retrieve"]
        assert len(retrieves) == 1
