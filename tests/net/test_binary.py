"""Unit tests for the v2 binary columnar chunk codec."""

import math

import pytest

from repro.core.heading import Heading
from repro.errors import ProtocolError
from repro.net import binary
from repro.storage.columnar import ColumnarRelation
from repro.storage.tag_pool import TagPool


def roundtrip(columns, attributes=None, count=None, **kwargs):
    attributes = attributes or [f"C{i}" for i in range(len(columns))]
    count = count if count is not None else (len(columns[0]) if columns else 0)
    payload = binary.encode_chunk_payload(7, 3, attributes, columns, count, **kwargs)
    return binary.decode_chunk_payload(payload)


class TestColumnRoundTrips:
    def test_typed_vectors_survive(self):
        columns = [
            [1, -2, 30000000000, 0],                # ints (zigzag varint)
            [1.5, -2.25, 0.0, 3.75],                # compact floats
            ["a", "b", "", "a"],                    # strings
            [True, False, True, False],             # bools
            [None, None, None, None],               # all-nil
            ["x", None, 2, 1.5],                    # mixed + validity bitmap
        ]
        message = roundtrip(columns)
        assert message["columns"] == columns
        assert message["count"] == 4
        assert message["id"] == 7 and message["seq"] == 3

    def test_float_nan_and_specials_survive(self):
        values = [math.nan, math.inf, -math.inf, -0.0, 1e308]
        (decoded,) = roundtrip([values])["columns"]
        assert math.isnan(decoded[0])
        assert decoded[1:] == values[1:]
        assert math.copysign(1.0, decoded[3]) == -1.0

    def test_dictionary_encoded_strings(self):
        # Heavy repetition triggers the dictionary encoding; the payload
        # must be smaller than naive per-value strings and decode equal.
        values = ["alpha", "beta"] * 500
        payload = binary.encode_chunk_payload(1, 0, ["S"], [values], len(values))
        naive = sum(len(v) + 1 for v in values)
        assert len(payload) < naive
        assert binary.decode_chunk_payload(payload)["columns"] == [values]

    def test_empty_heading_chunk(self):
        message = roundtrip([], attributes=[], count=3)
        assert message["columns"] == []
        assert binary.columns_to_rows(message) == [(), (), ()]

    def test_zero_row_chunk(self):
        message = roundtrip([[], []], attributes=["A", "B"], count=0)
        assert message["columns"] == [[], []]
        assert binary.columns_to_rows(message) == []


class TestFrameValidation:
    def test_bad_magic_refused(self):
        payload = binary.encode_chunk_payload(1, 0, ["A"], [[1]], 1)
        with pytest.raises(ProtocolError, match="opens with byte"):
            binary.decode_chunk_payload(b"\x00" + payload[1:])

    def test_future_encoding_version_refused(self):
        payload = bytearray(binary.encode_chunk_payload(1, 0, ["A"], [[1]], 1))
        payload[1] = 99
        with pytest.raises(ProtocolError, match="version 99"):
            binary.decode_chunk_payload(bytes(payload))

    def test_trailing_garbage_refused(self):
        payload = binary.encode_chunk_payload(1, 0, ["A"], [[1]], 1)
        with pytest.raises(ProtocolError, match="trailing"):
            binary.decode_chunk_payload(payload + b"\x00")

    def test_truncated_header_refused(self):
        with pytest.raises(ProtocolError, match="shorter than its header"):
            binary.decode_chunk_payload(b"\xb2")

    def test_ragged_columns_refused(self):
        with pytest.raises(ProtocolError):
            binary.encode_chunk_payload(1, 0, ["A", "B"], [[1]], 1)


def tagged_store(pool):
    data = [("ann", 1), ("bob", 2), ("cal", None), ("ann", 4)]
    a = pool.intern(frozenset({"AD"}), frozenset())
    b = pool.intern(frozenset({"AD"}), frozenset({"PD"}))
    nil = pool.intern(frozenset(), frozenset({"PD"}))
    tags = [(a, a), (a, b), (b, nil), (b, a)]
    return ColumnarRelation.from_row_major(Heading(("N", "K")), data, tags, pool)


class TestTaggedStoreStreams:
    def test_store_round_trip_with_tags(self):
        sender, receiver = TagPool(), TagPool()
        store = tagged_store(sender)
        payloads = list(binary.store_chunk_payloads(store, 2))
        assert len(payloads) == 2
        back = binary.store_from_chunk_payloads(payloads, pool=receiver)
        assert list(back.data_rows()) == list(store.data_rows())
        # Tags are pool-translated, so compare the pairs they intern.
        for ours, theirs in zip(back.tag_rows(), store.tag_rows()):
            for mine, original in zip(ours, theirs):
                assert receiver.pair(mine) == sender.pair(original)

    def test_delta_split_across_chunk_boundaries(self):
        # chunk_size=1: each new tag pair must be described exactly in the
        # first chunk that uses it and referenced by bare id afterwards.
        sender = TagPool()
        store = tagged_store(sender)
        messages = [
            binary.decode_chunk_payload(p)
            for p in binary.store_chunk_payloads(store, 1)
        ]
        assert len(messages) == 4
        described = [
            {tag_id for tag_id, _, _ in (m["tag_delta"] or ())} for m in messages
        ]
        seen = set()
        for m, ids in zip(messages, described):
            used = {t for column in m["tag_columns"] for t in column}
            assert used <= seen | ids  # never referenced before described
            assert not (ids & seen)  # never re-described
            seen |= ids

    def test_empty_store_ships_one_heading_chunk(self):
        pool = TagPool()
        store = ColumnarRelation.empty(Heading(("A", "B")), pool)
        payloads = list(binary.store_chunk_payloads(store, 10))
        assert len(payloads) == 1
        back = binary.store_from_chunk_payloads(payloads, pool=TagPool())
        assert back.cardinality == 0
        assert back.heading.attributes == ("A", "B")

    def test_missing_tag_section_refused(self):
        payload = binary.encode_chunk_payload(1, 0, ["A"], [[1]], 1)
        with pytest.raises(ProtocolError, match="tag section"):
            binary.store_from_chunk_payloads([payload], pool=TagPool())


class TestRelationChunkPayloads:
    def test_slicing_matches_json_chunking(self):
        from repro.relational.relation import Relation

        relation = Relation(("A", "B"), [(i, str(i)) for i in range(7)])
        chunks = list(binary.relation_chunk_payloads(5, relation, 3))
        assert [count for _, count in chunks] == [3, 3, 1]
        rows = []
        for payload, _ in chunks:
            rows.extend(binary.columns_to_rows(binary.decode_chunk_payload(payload)))
        assert rows == list(relation.rows)

    def test_empty_relation_ships_no_chunks(self):
        from repro.relational.relation import Relation

        relation = Relation(("A",), [])
        assert list(binary.relation_chunk_payloads(1, relation, 3)) == []
