"""Integration tests of the network layer: a real LQPServer on loopback,
a RemoteLQP client, concurrency, and fault injection (dead sockets,
dropped connections, timeouts, cancellation).

Every transport in this module carries an explicit short timeout and
every polling loop a deadline, so a regression can fail these tests but
never hang them — CI must survive a dead socket.
"""

import socket
import struct
import threading
import time

import pytest

from repro.core.predicate import Theta
from repro.datasets.paper import paper_databases
from repro.errors import (
    ConnectionLostError,
    ProtocolError,
    RemoteQueryError,
    RemoteTimeoutError,
    ServiceClosedError,
)
from repro.lqp.cost import AccountingLQP, LatencyLQP
from repro.lqp.registry import LQPRegistry
from repro.lqp.relational_lqp import RelationalLQP
from repro.net import LQPServer, RemoteLQP, protocol

#: Transport timeout used throughout: long enough for a loaded CI runner,
#: short enough that a hung socket fails fast.
TIMEOUT = 5.0


def ad_lqp() -> RelationalLQP:
    return RelationalLQP(paper_databases()["AD"])


@pytest.fixture
def server():
    with LQPServer(ad_lqp(), chunk_size=3) as running:
        yield running


def wait_for(predicate, deadline=TIMEOUT):
    limit = time.monotonic() + deadline
    while time.monotonic() < limit:
        if predicate():
            return True
        time.sleep(0.01)
    return False


class _ScriptedServer:
    """A hand-driven TCP peer for fault injection: each accepted
    connection runs the next handler from ``scripts`` — full control over
    hello frames, partial streams, and connection drops."""

    def __init__(self, *scripts):
        self.scripts = list(scripts)
        self.frames_read = []
        self.listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self.listener.bind(("127.0.0.1", 0))
        self.listener.listen()
        self.listener.settimeout(TIMEOUT)
        self.thread = threading.Thread(target=self._serve, daemon=True)
        self.thread.start()

    @property
    def url(self) -> str:
        host, port = self.listener.getsockname()[:2]
        return protocol.format_url(host, port)

    def _serve(self):
        for script in self.scripts:
            try:
                sock, _ = self.listener.accept()
            except OSError:
                return
            sock.settimeout(TIMEOUT)
            try:
                script(self, sock)
            except OSError:
                pass
            finally:
                sock.close()

    def read_frame(self, sock) -> dict:
        def read_exactly(count: int) -> bytes:
            data = b""
            while len(data) < count:
                piece = sock.recv(count - len(data))
                if not piece:
                    raise ConnectionError("peer hung up")
                data += piece
            return data

        frame = protocol.read_frame(read_exactly)
        self.frames_read.append(frame)
        return frame

    def close(self):
        self.listener.close()
        self.thread.join(timeout=TIMEOUT)


class TestLoopbackEquivalence:
    def test_hello_names_the_database_and_relations(self, server):
        with RemoteLQP(server.url, timeout=TIMEOUT) as remote:
            assert remote.name == "AD"
            assert set(remote.relation_names()) == {"ALUMNUS", "CAREER", "BUSINESS"}

    def test_retrieve_matches_in_process(self, server):
        direct = ad_lqp()
        with RemoteLQP(server.url, timeout=TIMEOUT) as remote:
            for relation_name in direct.relation_names():
                assert remote.retrieve(relation_name) == direct.retrieve(
                    relation_name
                )

    def test_select_matches_in_process(self, server):
        direct = ad_lqp()
        with RemoteLQP(server.url, timeout=TIMEOUT) as remote:
            assert remote.select(
                "ALUMNUS", "DEG", Theta.EQ, "MBA"
            ) == direct.select("ALUMNUS", "DEG", Theta.EQ, "MBA")

    def test_empty_select_preserves_heading(self, server):
        with RemoteLQP(server.url, timeout=TIMEOUT) as remote:
            empty = remote.select("ALUMNUS", "DEG", Theta.EQ, "Atlantis")
            assert empty.cardinality == 0
            assert empty.attributes == ("AID#", "ANAME", "DEG", "MAJ")

    def test_cardinality_and_catalog(self, server):
        direct = ad_lqp()
        with RemoteLQP(server.url, timeout=TIMEOUT) as remote:
            assert remote.cardinality_estimate("ALUMNUS") == direct.cardinality_estimate(
                "ALUMNUS"
            )
            catalog = remote.catalog()
            assert catalog == {
                name: direct.cardinality_estimate(name)
                for name in direct.relation_names()
            }

    def test_retrieve_range_matches_in_process(self):
        from repro.relational.database import LocalDatabase
        from repro.relational.schema import RelationSchema

        db = LocalDatabase("XD")
        db.load(
            RelationSchema("NUMS", ["ID", "K"], key=["ID"]),
            [(f"i{n}", n if n % 5 else None) for n in range(30)],
        )
        direct = RelationalLQP(db)
        windows = [
            (None, 10, True),
            (10, 20, False),
            (20, None, False),
            (None, None, True),
            (100, 200, False),  # empty shard
        ]
        with LQPServer(direct, chunk_size=4) as running:
            with RemoteLQP(running.url, timeout=TIMEOUT) as remote:
                for lower, upper, include_nil in windows:
                    assert remote.retrieve_range(
                        "NUMS", "K", lower=lower, upper=upper, include_nil=include_nil
                    ) == direct.retrieve_range(
                        "NUMS", "K", lower=lower, upper=upper, include_nil=include_nil
                    )

    def test_select_range_matches_in_process(self, server):
        direct = ad_lqp()
        with RemoteLQP(server.url, timeout=TIMEOUT) as remote:
            for lower, upper, include_nil in [
                (None, "500", True),
                ("500", None, False),
                (None, None, True),
            ]:
                assert remote.select_range(
                    "ALUMNUS", "DEG", Theta.NE, "PhD", "AID#",
                    lower=lower, upper=upper, include_nil=include_nil,
                ) == direct.select_range(
                    "ALUMNUS", "DEG", Theta.NE, "PhD", "AID#",
                    lower=lower, upper=upper, include_nil=include_nil,
                )

    def test_columns_narrow_over_the_wire(self, server):
        direct = ad_lqp()
        with RemoteLQP(server.url, timeout=TIMEOUT) as remote:
            assert remote.supports_column_projection
            narrowed = remote.retrieve("ALUMNUS", columns=["ANAME", "DEG"])
            assert narrowed == direct.retrieve("ALUMNUS", columns=["ANAME", "DEG"])
            assert narrowed.attributes == ("ANAME", "DEG")
            selected = remote.select(
                "ALUMNUS", "DEG", Theta.EQ, "MBA", columns=["AID#"]
            )
            assert selected.attributes == ("AID#",)

    def test_columns_projected_server_side_for_legacy_lqp(self):
        # An LQP that never heard of ``columns=`` still serves narrowed
        # results: the server projects after the verb, so only the
        # requested columns cross the wire either way.
        class Legacy(RelationalLQP):
            supports_column_projection = False

            def retrieve(self, relation_name):  # the pre-projection signature
                return self._database.relation(relation_name)

        from repro.lqp.base import project_columns

        legacy = Legacy(paper_databases()["AD"])
        with LQPServer(legacy, chunk_size=3) as running:
            with RemoteLQP(running.url, timeout=TIMEOUT) as remote:
                narrowed = remote.retrieve("ALUMNUS", columns=["DEG"])
                assert narrowed.attributes == ("DEG",)
                assert narrowed == project_columns(
                    legacy.retrieve("ALUMNUS"), ["DEG"]
                )

    def test_relation_stats_served_and_cached(self, server):
        direct = ad_lqp()
        with RemoteLQP(server.url, timeout=TIMEOUT) as remote:
            for name in direct.relation_names():
                assert remote.relation_stats(name) == direct.relation_stats(name)
            requests = remote.transport_stats().requests
            # Static sources: the second ask is answered from the cache.
            remote.relation_stats("ALUMNUS")
            assert remote.transport_stats().requests == requests

    def test_relation_stats_unknown_relation_is_a_remote_error(self, server):
        with RemoteLQP(server.url, timeout=TIMEOUT) as remote:
            with pytest.raises(RemoteQueryError):
                remote.relation_stats("NOPE")

    def test_remote_error_carries_server_side_type(self, server):
        with RemoteLQP(server.url, timeout=TIMEOUT) as remote:
            with pytest.raises(RemoteQueryError) as caught:
                remote.retrieve("NO_SUCH_RELATION")
            assert caught.value.error_type == "UnknownRelationError"
            assert caught.value.database == "AD"

    def test_schema_round_trips_when_served(self):
        from repro.datasets.paper import paper_polygen_schema

        schema = paper_polygen_schema()
        with LQPServer(ad_lqp(), schema=schema) as running:
            with RemoteLQP(running.url, timeout=TIMEOUT) as remote:
                fetched = remote.fetch_schema()
        assert sorted(s.name for s in fetched) == sorted(s.name for s in schema)

    def test_schema_refused_when_not_served(self, server):
        with RemoteLQP(server.url, timeout=TIMEOUT) as remote:
            with pytest.raises(RemoteQueryError, match="schema"):
                remote.fetch_schema()


class TestChunkStreaming:
    def test_chunks_arrive_in_order_and_bounded(self, server):
        seen = []
        with RemoteLQP(server.url, timeout=TIMEOUT) as remote:
            relation = remote.retrieve_stream(
                "ALUMNUS", lambda attributes, rows: seen.append(list(rows))
            )
        # chunk_size=3 over 8 tuples: 3+3+2.
        assert [len(batch) for batch in seen] == [3, 3, 2]
        assert [row for batch in seen for row in batch] == list(relation.rows)

    def test_transport_counts_chunks_and_bytes(self, server):
        with RemoteLQP(server.url, timeout=TIMEOUT) as remote:
            remote.retrieve("ALUMNUS")
            stats = remote.transport_stats()
        assert stats.requests == 1
        assert stats.chunks == 3
        assert stats.tuples == 8
        assert stats.bytes_sent > 0 and stats.bytes_received > 0


class TestConcurrency:
    def test_requests_overlap_up_to_the_concurrency_level(self):
        delay = 0.15
        slow = LatencyLQP(ad_lqp(), per_query=delay)
        with LQPServer(slow) as running:
            with RemoteLQP(running.url, concurrency=4, timeout=TIMEOUT) as remote:
                workers = []
                began = time.perf_counter()
                for _ in range(4):
                    worker = threading.Thread(
                        target=remote.retrieve, args=("ALUMNUS",)
                    )
                    worker.start()
                    workers.append(worker)
                for worker in workers:
                    worker.join(timeout=TIMEOUT)
                elapsed = time.perf_counter() - began
                stats = remote.transport_stats()
        # Four concurrent requests over one multiplexed connection: the
        # sleeps overlap server-side, so wall clock is ~1 delay, not 4.
        assert elapsed < 4 * delay
        assert stats.in_flight_hwm >= 2

    def test_concurrency_one_serializes(self):
        delay = 0.1
        slow = LatencyLQP(ad_lqp(), per_query=delay)
        with LQPServer(slow) as running:
            with RemoteLQP(running.url, concurrency=1, timeout=TIMEOUT) as remote:
                workers = [
                    threading.Thread(target=remote.retrieve, args=("ALUMNUS",))
                    for _ in range(3)
                ]
                began = time.perf_counter()
                for worker in workers:
                    worker.start()
                for worker in workers:
                    worker.join(timeout=TIMEOUT)
                elapsed = time.perf_counter() - began
                stats = remote.transport_stats()
        assert elapsed >= 3 * delay * 0.9
        assert stats.in_flight_hwm == 1

    def test_native_concurrency_survives_wrapper_chain(self, server):
        with RemoteLQP(server.url, concurrency=6, timeout=TIMEOUT) as remote:
            wrapped = AccountingLQP(LatencyLQP(remote, per_query=0.0))
            assert wrapped.native_concurrency == 6
        assert ad_lqp().native_concurrency == 1


class TestRegistryIntegration:
    def test_register_by_url(self, server):
        registry = LQPRegistry()
        wrapped = registry.register(server.url, concurrency=2, timeout=TIMEOUT)
        assert wrapped.name == "AD"
        assert "AD" in registry
        assert wrapped.native_concurrency == 2
        assert registry.get("AD").retrieve("ALUMNUS") == ad_lqp().retrieve("ALUMNUS")
        inner = wrapped.inner
        assert isinstance(inner, RemoteLQP)
        inner.close()

    def test_remote_options_rejected_for_in_process_lqps(self):
        registry = LQPRegistry()
        with pytest.raises(TypeError, match="polygen://"):
            registry.register(ad_lqp(), concurrency=4)

    def test_bad_url_rejected(self):
        registry = LQPRegistry()
        with pytest.raises(ProtocolError):
            registry.register("http://127.0.0.1:1")


class TestFaults:
    def test_connect_to_dead_port_raises_typed_error(self):
        # Bind-then-close guarantees the port is unserved.
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        with pytest.raises(ConnectionLostError):
            RemoteLQP(
                host="127.0.0.1", port=port, timeout=1.0, retries=0
            )

    def test_version_mismatch_raises_protocol_error(self):
        def bad_hello(scripted, sock):
            # A far-future server whose *floor* is beyond us: no overlap.
            hello = protocol.hello_message("XX", [])
            hello["protocol"] = protocol.PROTOCOL_VERSION + 7
            hello["min_protocol"] = protocol.PROTOCOL_VERSION + 7
            sock.sendall(protocol.encode_frame(hello))
            scripted.read_frame(sock)  # wait for the client to give up

        scripted = _ScriptedServer(bad_hello)
        try:
            with pytest.raises(ProtocolError, match="no common protocol version"):
                RemoteLQP(scripted.url, timeout=1.0, retries=0)
        finally:
            scripted.close()

    def test_v1_server_negotiates_json_fallback(self):
        def v1_hello(scripted, sock):
            # A PR-5-era server: protocol 1, no min_protocol, no formats.
            hello = {
                "kind": "hello",
                "protocol": 1,
                "database": "XX",
                "relations": ["T"],
            }
            sock.sendall(protocol.encode_frame(hello))
            request = scripted.read_frame(sock)
            # The v2 client must not ask a v1 peer for binary frames.
            assert "format" not in request
            sock.sendall(
                protocol.encode_frame(
                    protocol.chunk_message(request["id"], 0, ["A"], [[1], [2]])
                )
            )
            sock.sendall(
                protocol.encode_frame(
                    protocol.end_message(request["id"], 1, 2, ["A"])
                )
            )
            scripted.read_frame(sock)  # block until the client closes

        scripted = _ScriptedServer(v1_hello)
        try:
            remote = RemoteLQP(scripted.url, timeout=TIMEOUT, retries=0)
            assert not remote.binary_negotiated
            relation = remote.retrieve("T")
            assert sorted(relation.rows) == [(1,), (2,)]
            assert remote.transport_stats().binary_chunks == 0
            with pytest.raises(ProtocolError, match="binary"):
                remote.retrieve_chunks("T", wire_format="binary")
            remote.close()
        finally:
            scripted.close()

    def test_connection_dropped_mid_stream_raises_typed_error(self):
        def drop_mid_stream(scripted, sock):
            sock.sendall(protocol.encode_frame(protocol.hello_message("XX", ["T"])))
            request = scripted.read_frame(sock)
            # One chunk, then hang up: no end frame ever arrives.
            sock.sendall(
                protocol.encode_frame(
                    protocol.chunk_message(request["id"], 0, ["A"], [[1]])
                )
            )

        scripted = _ScriptedServer(drop_mid_stream)
        try:
            remote = RemoteLQP(scripted.url, timeout=TIMEOUT, retries=0)
            with pytest.raises(ConnectionLostError, match="dropped"):
                remote.retrieve("T")
            remote.close()
        finally:
            scripted.close()

    def test_dropped_connection_is_retried_on_a_fresh_one(self):
        def drop_after_request(scripted, sock):
            sock.sendall(protocol.encode_frame(protocol.hello_message("XX", ["T"])))
            scripted.read_frame(sock)  # swallow the request, hang up

        def serve_properly(scripted, sock):
            sock.sendall(protocol.encode_frame(protocol.hello_message("XX", ["T"])))
            request = scripted.read_frame(sock)
            sock.sendall(
                protocol.encode_frame(
                    protocol.chunk_message(request["id"], 0, ["A"], [[1], [2]])
                )
            )
            sock.sendall(
                protocol.encode_frame(
                    protocol.end_message(request["id"], 1, 2, ["A"])
                )
            )

        scripted = _ScriptedServer(drop_after_request, serve_properly)
        try:
            remote = RemoteLQP(scripted.url, timeout=TIMEOUT, retries=1)
            relation = remote.retrieve("T")
            assert relation.rows == ((1,), (2,))
            stats = remote.transport_stats()
            assert stats.retries == 1
            assert stats.reconnects == 1
            remote.close()
        finally:
            scripted.close()

    def test_silent_server_raises_timeout_and_sends_cancel(self):
        def hello_then_silence(scripted, sock):
            sock.sendall(protocol.encode_frame(protocol.hello_message("XX", ["T"])))
            scripted.read_frame(sock)  # the request
            scripted.read_frame(sock)  # the cancel the timeout must send

        scripted = _ScriptedServer(hello_then_silence)
        try:
            remote = RemoteLQP(scripted.url, timeout=0.4, retries=0)
            with pytest.raises(RemoteTimeoutError):
                remote.retrieve("T")
            assert wait_for(
                lambda: any(
                    frame.get("op") == "cancel" for frame in scripted.frames_read
                )
            ), "timeout did not propagate a cancel to the server"
            assert remote.transport_stats().timeouts == 1
            remote.close()
        finally:
            scripted.close()

    def test_client_timeout_cancels_server_side_stream(self):
        # A real LQPServer with an injected 1s delay and a 0.2s client
        # timeout: the client gives up and sends cancel; once the LQP call
        # returns, the server sees the cancel *before* streaming and
        # counts the request as cancelled instead of shipping tuples.
        slow = LatencyLQP(ad_lqp(), per_query=1.0)
        with LQPServer(slow) as running:
            remote = RemoteLQP(running.url, timeout=0.2, retries=0)
            with pytest.raises(RemoteTimeoutError):
                remote.retrieve("ALUMNUS")
            assert wait_for(lambda: running.stats.cancelled >= 1), (
                "cancel never reached the serving thread"
            )
            assert running.stats.tuples_sent == 0
            remote.close()

    def test_closed_transport_refuses_new_requests(self, server):
        remote = RemoteLQP(server.url, timeout=TIMEOUT)
        remote.close()
        with pytest.raises(ServiceClosedError):
            remote.retrieve("ALUMNUS")

    def test_server_stop_is_idempotent_and_fast(self):
        running = LQPServer(ad_lqp()).start()
        with RemoteLQP(running.url, timeout=TIMEOUT) as remote:
            remote.retrieve("ALUMNUS")
        began = time.perf_counter()
        running.stop()
        running.stop()
        assert time.perf_counter() - began < TIMEOUT


class TestReviewRegressions:
    """Pinned behaviours for bugs found in review."""

    def test_long_healthy_chunk_stream_outlives_the_watchdog_window(
        self, monkeypatch
    ):
        # Per-frame timeouts only: a stream whose frames keep flowing may
        # run far longer than timeout + slack without tripping the outer
        # watchdog (which fires on *inactivity*, not duration).
        from repro.net import transport as transport_module

        monkeypatch.setattr(transport_module, "_OUTER_SLACK", 0.5)
        pause, chunks = 0.25, 6  # total 1.5s >> timeout 0.4 + slack 0.5

        def slow_stream(scripted, sock):
            sock.sendall(protocol.encode_frame(protocol.hello_message("XX", ["T"])))
            request = scripted.read_frame(sock)
            for seq in range(chunks):
                time.sleep(pause)
                sock.sendall(
                    protocol.encode_frame(
                        protocol.chunk_message(request["id"], seq, ["A"], [[seq]])
                    )
                )
            sock.sendall(
                protocol.encode_frame(
                    protocol.end_message(request["id"], chunks, chunks, ["A"])
                )
            )

        scripted = _ScriptedServer(slow_stream)
        try:
            remote = RemoteLQP(scripted.url, timeout=0.4, retries=0)
            relation = remote.retrieve("T")
            assert relation.cardinality == chunks
            assert remote.transport_stats().timeouts == 0
            remote.close()
        finally:
            scripted.close()

    def test_lqp_oserror_becomes_a_remote_error_frame_not_a_timeout(self):
        # A file-backed LQP failing with OSError must reach the client as
        # RemoteQueryError (an error frame), not be mistaken for a dead
        # peer and leave the client stalling to its timeout.
        class BrokenLQP(RelationalLQP):
            def retrieve(self, relation_name):
                raise FileNotFoundError(f"backing file for {relation_name} missing")

        with LQPServer(BrokenLQP(paper_databases()["AD"])) as running:
            with RemoteLQP(running.url, timeout=TIMEOUT, retries=0) as remote:
                began = time.perf_counter()
                with pytest.raises(RemoteQueryError) as caught:
                    remote.retrieve("ALUMNUS")
                assert time.perf_counter() - began < TIMEOUT / 2
            assert caught.value.error_type == "FileNotFoundError"
            assert running.stats.errors == 1

    def test_failed_url_registration_closes_the_dialed_connection(self, server):
        registry = LQPRegistry()
        registry.register(server.url, timeout=TIMEOUT)
        mux_threads = lambda: sum(
            1
            for thread in threading.enumerate()
            if thread.name.startswith("lqp-mux-") and thread.is_alive()
        )
        before = mux_threads()
        with pytest.raises(Exception, match="already registered"):
            registry.register(server.url, timeout=TIMEOUT)
        # The losing RemoteLQP's event-loop thread must be gone, not
        # leaked until GC.
        assert wait_for(lambda: mux_threads() == before)
        registry.get("AD").inner.close()

    def test_bad_hello_leaves_no_half_open_connection(self):
        from repro.net.transport import ConnectionMux

        def bad_hello(scripted, sock):
            hello = protocol.hello_message("XX", [])
            hello["protocol"] = protocol.PROTOCOL_VERSION + 1
            hello["min_protocol"] = protocol.PROTOCOL_VERSION + 1
            sock.sendall(protocol.encode_frame(hello))
            time.sleep(0.2)

        scripted = _ScriptedServer(bad_hello, bad_hello)
        host, port = protocol.parse_url(scripted.url)
        try:
            mux = ConnectionMux(host, port, timeout=TIMEOUT, retries=0)
            with pytest.raises(ProtocolError):
                mux.hello()
            # The failed handshake must have dropped the connection: the
            # next attempt re-handshakes and fails *fast* with the same
            # typed error, instead of writing into a half-open connection
            # nobody reads and stalling to the timeout.
            began = time.perf_counter()
            with pytest.raises(ProtocolError):
                mux.request("ping")
            assert time.perf_counter() - began < TIMEOUT / 2
            mux.close()
        finally:
            scripted.close()


def _mux_threads() -> int:
    return sum(
        1
        for thread in threading.enumerate()
        if thread.name.startswith("lqp-mux-") and thread.is_alive()
    )


class TestLifecycleLeaks:
    """Connections and event-loop threads must die with their owners."""

    def test_failed_remote_lqp_construction_leaks_no_loop_thread(self):
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        before = _mux_threads()
        with pytest.raises(ConnectionLostError):
            RemoteLQP(host="127.0.0.1", port=port, timeout=1.0, retries=0)
        assert wait_for(lambda: _mux_threads() == before), (
            "a failed handshake stranded the mux's event-loop thread"
        )

    def test_abandoned_mux_is_reaped_by_gc(self, server):
        import gc

        from repro.net.transport import ConnectionMux

        host, port = server.address
        before = _mux_threads()
        mux = ConnectionMux(host, port, timeout=TIMEOUT)
        mux.hello()
        assert _mux_threads() == before + 1
        del mux  # no close(): the GC finalizer must stop the loop
        gc.collect()
        assert wait_for(lambda: _mux_threads() == before), (
            "the loop thread kept the abandoned mux alive forever"
        )

    def test_federation_close_closes_url_dialed_transports(self, server):
        from repro.datasets.paper import paper_polygen_schema
        from repro.service.federation import PolygenFederation

        registry = LQPRegistry()
        wrapped = registry.register(server.url, timeout=TIMEOUT)
        remote = wrapped.inner
        with PolygenFederation(paper_polygen_schema(), registry) as federation:
            assert not remote.transport.closed
        assert remote.transport.closed, (
            "federation.close() left the registry-dialed connection open"
        )

    def test_registry_close_spares_caller_constructed_lqps(self, server):
        registry = LQPRegistry()
        mine = RemoteLQP(server.url, timeout=TIMEOUT)
        registry.register(mine)
        registry.close()
        assert not mine.transport.closed  # mine to close, not the registry's
        mine.close()


class TestGarbageInbound:
    def test_server_drops_garbage_speaking_peers(self, server):
        host, port = server.address
        sock = socket.create_connection((host, port), timeout=TIMEOUT)
        sock.settimeout(TIMEOUT)
        # Read the hello, then send an impossible length prefix.
        header = sock.recv(4)
        length = struct.unpack(">I", header)[0]
        while length:
            length -= len(sock.recv(length))
        sock.sendall(struct.pack(">I", protocol.MAX_FRAME_BYTES + 5))
        # The server must hang up rather than allocate.
        sock.settimeout(TIMEOUT)
        assert sock.recv(1) == b""
        sock.close()
        # ... and keep serving well-behaved clients.
        with RemoteLQP(server.url, timeout=TIMEOUT) as remote:
            assert remote.retrieve("ALUMNUS").cardinality == 8


class TestTransportFaultCounters:
    """TransportStats retry/timeout/reconnect accounting under injected
    faults — the counters the federation's metrics collector exports."""

    def test_repeated_timeouts_accumulate_and_are_not_retried(self):
        def hello_then_silence(scripted, sock):
            sock.sendall(protocol.encode_frame(protocol.hello_message("XX", ["T"])))
            while True:  # swallow requests and cancels, never reply
                scripted.read_frame(sock)

        scripted = _ScriptedServer(hello_then_silence)
        try:
            remote = RemoteLQP(scripted.url, timeout=0.4, retries=2)
            for expected in (1, 2):
                with pytest.raises(RemoteTimeoutError):
                    remote.retrieve("T")
                assert remote.transport_stats().timeouts == expected
            stats = remote.transport_stats()
            # A timeout is not a dropped connection: no retry, no redial.
            assert stats.retries == 0
            assert stats.reconnects == 0
            remote.close()
        finally:
            scripted.close()

    def test_exhausted_retries_count_every_extra_attempt(self):
        def drop_after_request(scripted, sock):
            sock.sendall(protocol.encode_frame(protocol.hello_message("XX", ["T"])))
            scripted.read_frame(sock)  # swallow the request, hang up

        scripted = _ScriptedServer(
            drop_after_request, drop_after_request, drop_after_request
        )
        try:
            remote = RemoteLQP(scripted.url, timeout=TIMEOUT, retries=2)
            with pytest.raises(ConnectionLostError):
                remote.retrieve("T")
            stats = remote.transport_stats()
            assert stats.retries == 2  # two extra attempts after the first
            assert stats.reconnects == 2  # each retry dialed a fresh socket
            remote.close()
        finally:
            scripted.close()

    def test_counters_settle_after_recovery(self):
        def drop_after_request(scripted, sock):
            sock.sendall(protocol.encode_frame(protocol.hello_message("XX", ["T"])))
            scripted.read_frame(sock)

        def serve_properly(scripted, sock):
            sock.sendall(protocol.encode_frame(protocol.hello_message("XX", ["T"])))
            while True:
                request = scripted.read_frame(sock)
                sock.sendall(
                    protocol.encode_frame(
                        protocol.chunk_message(request["id"], 0, ["A"], [[1]])
                    )
                )
                sock.sendall(
                    protocol.encode_frame(
                        protocol.end_message(request["id"], 1, 1, ["A"])
                    )
                )

        scripted = _ScriptedServer(drop_after_request, serve_properly)
        try:
            remote = RemoteLQP(scripted.url, timeout=TIMEOUT, retries=1)
            assert remote.retrieve("T").rows == ((1,),)
            after_fault = remote.transport_stats()
            assert (after_fault.retries, after_fault.reconnects) == (1, 1)
            # A healthy follow-up request moves requests, not the fault
            # counters.
            assert remote.retrieve("T").rows == ((1,),)
            settled = remote.transport_stats()
            assert (settled.retries, settled.reconnects) == (1, 1)
            assert settled.timeouts == 0
            assert settled.requests == after_fault.requests + 1
            remote.close()
        finally:
            scripted.close()


class TestWireTraceNegotiation:
    """Trace-context propagation is capability-gated: v2 peers that
    advertise ``trace`` receive the context and ship spans back; v1
    peers must never see the key."""

    def test_v1_peer_never_receives_trace_context(self):
        from repro.obs.trace import Tracer, use_span

        def v1_hello(scripted, sock):
            hello = {
                "kind": "hello",
                "protocol": 1,
                "database": "XX",
                "relations": ["T"],
            }
            sock.sendall(protocol.encode_frame(hello))
            request = scripted.read_frame(sock)
            sock.sendall(
                protocol.encode_frame(
                    protocol.end_message(request["id"], 0, 0, ["A"])
                )
            )
            scripted.read_frame(sock)  # block until the client closes

        scripted = _ScriptedServer(v1_hello)
        try:
            remote = RemoteLQP(scripted.url, timeout=TIMEOUT, retries=0)
            assert not remote.trace_negotiated
            root = Tracer().start("query")
            with use_span(root):
                remote.retrieve("T")
            requests = [
                frame for frame in scripted.frames_read
                if frame.get("op") == "retrieve"
            ]
            assert requests and all("trace" not in f for f in requests)
            remote.close()
        finally:
            scripted.close()

    def test_trace_context_sent_and_shipped_spans_adopted(self):
        from repro.obs.trace import Tracer, use_span

        shipped = {
            "name": "serve.retrieve",
            "span": "remote-1",
            "parent": None,  # patched to the propagated id by the script
            "start": 1.0,
            "finish": 2.0,
            "status": "ok",
            "attributes": {"database": "XX"},
        }

        def traced_server(scripted, sock):
            sock.sendall(protocol.encode_frame(protocol.hello_message("XX", ["T"])))
            request = scripted.read_frame(sock)
            context = request["trace"]
            payload = dict(shipped, trace=context["id"], parent=context["span"])
            sock.sendall(
                protocol.encode_frame(
                    protocol.end_message(
                        request["id"], 0, 0, ["A"], spans=[payload]
                    )
                )
            )
            scripted.read_frame(sock)  # block until the client closes

        scripted = _ScriptedServer(traced_server)
        try:
            remote = RemoteLQP(scripted.url, timeout=TIMEOUT, retries=0)
            assert remote.trace_negotiated
            root = Tracer().start("query")
            with use_span(root):
                remote.retrieve("T")
            request = next(
                frame for frame in scripted.frames_read
                if frame.get("op") == "retrieve"
            )
            assert request["trace"] == {
                "id": root.trace_id,
                "span": root.span_id,
            }
            adopted = [span for span in root.trace_spans() if span.remote]
            assert [span.name for span in adopted] == ["serve.retrieve"]
            assert adopted[0].parent_id == root.span_id
            assert adopted[0].trace_id == root.trace_id
            remote.close()
        finally:
            scripted.close()

    def test_no_ambient_span_sends_no_trace_context(self):
        def traced_server(scripted, sock):
            sock.sendall(protocol.encode_frame(protocol.hello_message("XX", ["T"])))
            request = scripted.read_frame(sock)
            sock.sendall(
                protocol.encode_frame(
                    protocol.end_message(request["id"], 0, 0, ["A"])
                )
            )
            scripted.read_frame(sock)

        scripted = _ScriptedServer(traced_server)
        try:
            remote = RemoteLQP(scripted.url, timeout=TIMEOUT, retries=0)
            remote.retrieve("T")
            request = next(
                frame for frame in scripted.frames_read
                if frame.get("op") == "retrieve"
            )
            assert "trace" not in request
            remote.close()
        finally:
            scripted.close()
