"""Unit tests of the wire protocol: framing, messages, payloads, URLs."""

import io
import json
import struct

import pytest

from repro.errors import ProtocolError
from repro.net import protocol
from repro.relational.relation import Relation


def read_from_bytes(data: bytes):
    stream = io.BytesIO(data)

    def read_exactly(count: int) -> bytes:
        piece = stream.read(count)
        assert len(piece) == count, "truncated frame"
        return piece

    return protocol.read_frame(read_exactly)


class TestFraming:
    def test_round_trip(self):
        message = {"id": 3, "op": "retrieve", "relation": "ALUMNUS"}
        assert read_from_bytes(protocol.encode_frame(message)) == message

    def test_length_prefix_is_big_endian_payload_size(self):
        frame = protocol.encode_frame({"a": 1})
        (length,) = struct.unpack(">I", frame[:4])
        assert length == len(frame) - 4
        assert json.loads(frame[4:]) == {"a": 1}

    def test_oversized_incoming_frame_refused_before_reading(self):
        bogus = struct.pack(">I", protocol.MAX_FRAME_BYTES + 1)

        def read_exactly(count: int) -> bytes:
            if count == 4:
                return bogus
            raise AssertionError("payload must not be read")

        with pytest.raises(ProtocolError, match="refusing"):
            protocol.read_frame(read_exactly)

    def test_garbage_payload_raises_protocol_error(self):
        with pytest.raises(ProtocolError, match="undecodable"):
            protocol.decode_payload(b"\xff\xfe not json")

    def test_non_object_payload_rejected(self):
        with pytest.raises(ProtocolError, match="JSON object"):
            protocol.decode_payload(b"[1, 2, 3]")

    def test_unserializable_message_rejected(self):
        with pytest.raises(ProtocolError, match="not JSON-serializable"):
            protocol.encode_frame({"value": object()})


class TestHello:
    def test_valid_hello_passes(self):
        hello = protocol.hello_message("AD", ["ALUMNUS", "CAREER"])
        assert protocol.check_hello(hello, "server") is hello

    def test_newer_peer_negotiates_down(self):
        # A future server speaking 1..N+1 still overlaps our range: the
        # connection runs at our version, not a refusal.
        hello = protocol.hello_message("AD", [])
        hello["protocol"] = protocol.PROTOCOL_VERSION + 1
        assert protocol.check_hello(hello, "server") is hello
        assert protocol.negotiate_version(hello) == protocol.PROTOCOL_VERSION

    def test_version_mismatch_refused(self):
        # No overlap: the peer's floor is above everything we speak.
        hello = protocol.hello_message("AD", [])
        hello["protocol"] = protocol.PROTOCOL_VERSION + 7
        hello["min_protocol"] = protocol.PROTOCOL_VERSION + 7
        with pytest.raises(ProtocolError, match="no common protocol version"):
            protocol.check_hello(hello, "server")

    def test_v1_peer_negotiates_json(self):
        # A v1 hello has no min_protocol/formats: it speaks exactly 1,
        # JSON only — and stays connectable.
        hello = protocol.hello_message("AD", [])
        hello["protocol"] = 1
        del hello["min_protocol"]
        del hello["formats"]
        assert protocol.check_hello(hello, "server") is hello
        assert protocol.negotiate_version(hello) == 1
        assert protocol.peer_formats(hello) == ("json",)
        assert not protocol.supports_binary(hello)

    def test_current_hello_supports_binary(self):
        hello = protocol.hello_message("AD", [])
        assert protocol.negotiate_version(hello) == protocol.PROTOCOL_VERSION
        assert protocol.supports_binary(hello)

    def test_non_hello_frame_refused(self):
        with pytest.raises(ProtocolError, match="hello"):
            protocol.check_hello({"kind": "chunk"}, "server")

    def test_missing_database_refused(self):
        hello = protocol.hello_message("AD", [])
        hello["database"] = ""
        with pytest.raises(ProtocolError, match="database"):
            protocol.check_hello(hello, "server")


class TestValues:
    @pytest.mark.parametrize("value", ["x", 3, 2.5, True, None])
    def test_wire_scalars_pass(self, value):
        assert protocol.wire_value(value) == value

    @pytest.mark.parametrize("value", [object(), (1,), [1], {"a": 1}, b"x"])
    def test_non_scalars_refused(self, value):
        with pytest.raises(ProtocolError, match="not wire-representable"):
            protocol.wire_value(value)


class TestRelationPayloads:
    def test_chunked_round_trip(self):
        relation = Relation(
            ["A", "B"], [(i, f"row-{i}") for i in range(10)]
        )
        chunks = list(protocol.relation_chunks(relation, chunk_size=3))
        assert [len(chunk) for chunk in chunks] == [3, 3, 3, 1]
        rebuilt = protocol.relation_from_wire(
            list(relation.attributes),
            [row for chunk in chunks for row in chunk],
        )
        assert rebuilt == relation

    def test_empty_relation_ships_no_chunks(self):
        relation = Relation(["A"], [])
        assert list(protocol.relation_chunks(relation)) == []
        # ... and reconstructs via the end-frame heading.
        rebuilt = protocol.relation_from_wire(["A"], [])
        assert rebuilt == relation

    def test_no_heading_anywhere_is_an_error(self):
        with pytest.raises(ProtocolError, match="heading"):
            protocol.relation_from_wire(None, [])

    def test_end_message_carries_heading(self):
        end = protocol.end_message(7, 0, 0, ["A", "B"])
        assert end["attributes"] == ["A", "B"]

    def test_nil_survives_the_wire(self):
        relation = Relation(["A", "B"], [(1, None), (None, "x")])
        chunks = list(protocol.relation_chunks(relation))
        rebuilt = protocol.relation_from_wire(
            list(relation.attributes), [row for c in chunks for row in c]
        )
        assert rebuilt == relation

    def test_bad_chunk_size_refused(self):
        with pytest.raises(ProtocolError, match="chunk_size"):
            list(protocol.relation_chunks(Relation(["A"], [(1,)]), chunk_size=0))


class TestStatsPayloads:
    def test_round_trip(self):
        from repro.lqp.base import ColumnStats, RelationStats

        stats = RelationStats(
            cardinality=42,
            columns={
                "K": ColumnStats(minimum=0, maximum=41, nils=3),
                "NAME": ColumnStats(minimum=None, maximum=None, nils=0),
            },
        )
        payload = protocol.stats_payload(stats)
        rebuilt = protocol.stats_from_payload(payload)
        assert rebuilt.cardinality == 42
        assert rebuilt.columns["K"] == stats.columns["K"]
        assert rebuilt.columns["K"].splittable
        assert rebuilt.columns["NAME"] == stats.columns["NAME"]
        assert not rebuilt.columns["NAME"].splittable

    def test_none_stats_survive(self):
        # A statless engine's None answer must stay None across the wire.
        assert protocol.stats_payload(None) is None
        assert protocol.stats_from_payload(None) is None

    def test_payload_is_wire_representable(self):
        from repro.lqp.base import ColumnStats, RelationStats

        stats = RelationStats(
            cardinality=1, columns={"K": ColumnStats(minimum=1.5, maximum=2.5, nils=0)}
        )
        protocol.encode_frame({"value": protocol.stats_payload(stats)})

    @pytest.mark.parametrize("bad", [[1], "stats", {"columns": {}}])
    def test_malformed_payload_refused(self, bad):
        with pytest.raises(ProtocolError):
            protocol.stats_from_payload(bad)


class TestUrls:
    def test_round_trip(self):
        assert protocol.parse_url("polygen://example.org:9470") == (
            "example.org",
            9470,
        )
        assert protocol.format_url("example.org", 9470) == "polygen://example.org:9470"

    def test_ipv6_round_trip(self):
        url = protocol.format_url("::1", 9470)
        assert url == "polygen://[::1]:9470"
        assert protocol.parse_url(url) == ("::1", 9470)

    @pytest.mark.parametrize(
        "bad",
        [
            "http://example.org:9470",
            "polygen://example.org",
            "polygen://:9470",
            "polygen://example.org:port",
            "polygen://example.org:0",
            "polygen://example.org:70000",
        ],
    )
    def test_bad_urls_refused(self, bad):
        with pytest.raises(ProtocolError):
            protocol.parse_url(bad)
