"""Unit tests for local query processors, the registry, and cost accounting."""

import pytest

from repro.core.predicate import Theta
from repro.errors import ExecutionError, LocalEngineError, UnknownDatabaseError, UnknownRelationError
from repro.lqp.cost import AccountingLQP, CostModel
from repro.lqp.csv_lqp import CsvLQP
from repro.lqp.registry import LQPRegistry
from repro.lqp.relational_lqp import RelationalLQP
from repro.relational.database import LocalDatabase
from repro.relational.schema import RelationSchema


@pytest.fixture
def alumni_lqp():
    db = LocalDatabase("AD")
    db.load(
        RelationSchema("ALUMNUS", ["AID#", "ANAME", "DEG", "MAJ"], key=["AID#"]),
        [
            ("012", "John McCauley", "MBA", "IS"),
            ("789", "Ken Olsen", "MS", "EE"),
        ],
    )
    return RelationalLQP(db)


class TestRelationalLQP:
    def test_name_and_relations(self, alumni_lqp):
        assert alumni_lqp.name == "AD"
        assert alumni_lqp.relation_names() == ("ALUMNUS",)

    def test_retrieve_ships_whole_relation(self, alumni_lqp):
        assert alumni_lqp.retrieve("ALUMNUS").cardinality == 2

    def test_select_executes_locally(self, alumni_lqp):
        out = alumni_lqp.select("ALUMNUS", "DEG", Theta.EQ, "MBA")
        assert out.rows == (("012", "John McCauley", "MBA", "IS"),)

    def test_unknown_relation(self, alumni_lqp):
        with pytest.raises(UnknownRelationError):
            alumni_lqp.retrieve("NOPE")


class TestCsvLQP:
    CSV = "FNAME,CEO,PROFIT\nIBM,John Ackers,5.5\nApple,John Sculley,0.4\n"

    def test_parses_with_type_inference(self):
        lqp = CsvLQP("CD", {"FIRM": self.CSV})
        assert lqp.retrieve("FIRM").rows[0] == ("IBM", "John Ackers", 5.5)

    def test_without_type_inference(self):
        lqp = CsvLQP("CD", {"FIRM": self.CSV}, infer_types=False)
        assert lqp.retrieve("FIRM").rows[0] == ("IBM", "John Ackers", "5.5")

    def test_empty_fields_become_none(self):
        lqp = CsvLQP("XD", {"T": "A,B\n1,\n"})
        assert lqp.retrieve("T").rows == ((1, None),)

    def test_select_scans(self):
        lqp = CsvLQP("CD", {"FIRM": self.CSV})
        out = lqp.select("FIRM", "PROFIT", Theta.GT, 1.0)
        assert out.rows == (("IBM", "John Ackers", 5.5),)

    def test_quoted_fields(self):
        lqp = CsvLQP("CD", {"T": 'HQ\n"NY, NY"\n'})
        assert lqp.retrieve("T").rows == (("NY, NY",),)

    def test_empty_document_rejected(self):
        with pytest.raises(LocalEngineError):
            CsvLQP("XD", {"T": ""})

    def test_ragged_rows_rejected(self):
        with pytest.raises(LocalEngineError):
            CsvLQP("XD", {"T": "A,B\n1\n"})

    def test_unknown_relation(self):
        lqp = CsvLQP("XD", {"T": "A\n1\n"})
        with pytest.raises(UnknownRelationError):
            lqp.retrieve("NOPE")

    def test_relation_names(self):
        lqp = CsvLQP("XD", {"T": "A\n1\n", "U": "B\n2\n"})
        assert set(lqp.relation_names()) == {"T", "U"}


class TestAccounting:
    def test_counters(self, alumni_lqp):
        wrapped = AccountingLQP(alumni_lqp)
        wrapped.retrieve("ALUMNUS")
        wrapped.select("ALUMNUS", "DEG", Theta.EQ, "MBA")
        assert wrapped.stats.queries == 2
        assert wrapped.stats.retrieves == 1
        assert wrapped.stats.selects == 1
        assert wrapped.stats.tuples_shipped == 3  # 2 + 1

    def test_cost_model(self, alumni_lqp):
        wrapped = AccountingLQP(alumni_lqp, CostModel(per_query=10.0, per_tuple=1.0))
        wrapped.retrieve("ALUMNUS")
        assert wrapped.simulated_cost() == pytest.approx(10.0 + 2.0)

    def test_stats_reset(self, alumni_lqp):
        wrapped = AccountingLQP(alumni_lqp)
        wrapped.retrieve("ALUMNUS")
        wrapped.stats.reset()
        assert wrapped.stats.queries == 0

    def test_merged_stats(self, alumni_lqp):
        a = AccountingLQP(alumni_lqp)
        a.retrieve("ALUMNUS")
        merged = a.stats.merged_with(a.stats)
        assert merged.queries == 2
        assert merged.tuples_shipped == 4


class TestRegistry:
    def test_register_and_get(self, alumni_lqp):
        registry = LQPRegistry()
        wrapped = registry.register(alumni_lqp)
        assert registry.get("AD") is wrapped
        assert "AD" in registry
        assert registry.names() == ("AD",)

    def test_duplicate_rejected(self, alumni_lqp):
        registry = LQPRegistry()
        registry.register(alumni_lqp)
        with pytest.raises(ExecutionError):
            registry.register(alumni_lqp)

    def test_unknown_database(self):
        with pytest.raises(UnknownDatabaseError):
            LQPRegistry().get("NOPE")

    def test_aggregate_stats(self, alumni_lqp):
        registry = LQPRegistry()
        registry.register(alumni_lqp)
        registry.get("AD").retrieve("ALUMNUS")
        total = registry.total_stats()
        assert total.queries == 1
        assert total.tuples_shipped == 2
        registry.reset_stats()
        assert registry.total_stats().queries == 0

    def test_total_cost(self, alumni_lqp):
        registry = LQPRegistry()
        registry.register(alumni_lqp, CostModel(per_query=5.0, per_tuple=0.0))
        registry.get("AD").retrieve("ALUMNUS")
        assert registry.total_cost() == pytest.approx(5.0)


class TestColumnProjection:
    """The source-side projection surface (``columns=`` on every verb)."""

    def test_relational_retrieve_narrows(self, alumni_lqp):
        assert alumni_lqp.supports_column_projection
        out = alumni_lqp.retrieve("ALUMNUS", columns=["ANAME", "DEG"])
        assert out.attributes == ("ANAME", "DEG")
        assert out.rows == (("John McCauley", "MBA"), ("Ken Olsen", "MS"))

    def test_relational_select_narrows(self, alumni_lqp):
        out = alumni_lqp.select("ALUMNUS", "DEG", Theta.EQ, "MBA", columns=["AID#"])
        assert out.attributes == ("AID#",)
        assert out.rows == (("012",),)

    def test_csv_retrieve_narrows(self):
        lqp = CsvLQP("CD", {"FIRM": TestCsvLQP.CSV})
        assert lqp.supports_column_projection
        out = lqp.retrieve("FIRM", columns=["PROFIT"])
        assert out.attributes == ("PROFIT",)
        assert out.rows == ((5.5,), (0.4,))

    def test_unknown_column_rejected(self, alumni_lqp):
        from repro.errors import UnknownAttributeError

        with pytest.raises(UnknownAttributeError):
            alumni_lqp.retrieve("ALUMNUS", columns=["NOPE"])

    def test_retrieve_range_projects_after_filtering(self, alumni_lqp):
        # The key attribute need not survive the projection.
        out = alumni_lqp.retrieve_range(
            "ALUMNUS", "AID#", lower="500", columns=["ANAME"]
        )
        assert out.attributes == ("ANAME",)
        assert out.rows == (("Ken Olsen",),)

    def test_wrappers_advertise_inner_capability(self, alumni_lqp):
        assert AccountingLQP(alumni_lqp).supports_column_projection

        class Legacy(RelationalLQP):
            supports_column_projection = False

        legacy = Legacy(alumni_lqp.database)
        assert not AccountingLQP(legacy).supports_column_projection

    def test_accounting_forwards_columns(self, alumni_lqp):
        wrapped = AccountingLQP(alumni_lqp)
        out = wrapped.select("ALUMNUS", "DEG", Theta.EQ, "MBA", columns=["MAJ"])
        assert out.attributes == ("MAJ",)
        assert wrapped.stats.selects == 1


class TestSelectRange:
    """The default ``select_range`` verb: predicate ∧ key interval."""

    def test_filters_both_ways(self, alumni_lqp):
        out = alumni_lqp.select_range(
            "ALUMNUS", "DEG", Theta.NE, "PhD", "AID#", lower="500"
        )
        assert out.rows == (("789", "Ken Olsen", "MS", "EE"),)

    def test_family_partitions_the_selection(self, alumni_lqp):
        whole = alumni_lqp.select("ALUMNUS", "DEG", Theta.NE, "PhD")
        low = alumni_lqp.select_range(
            "ALUMNUS", "DEG", Theta.NE, "PhD", "AID#",
            upper="500", include_nil=True,
        )
        high = alumni_lqp.select_range(
            "ALUMNUS", "DEG", Theta.NE, "PhD", "AID#", lower="500"
        )
        assert sorted(low.rows + high.rows) == sorted(whole.rows)

    def test_accounting_counts_range_selects(self, alumni_lqp):
        wrapped = AccountingLQP(alumni_lqp)
        wrapped.select_range("ALUMNUS", "DEG", Theta.EQ, "MBA", "AID#")
        assert wrapped.stats.queries == 1
        assert wrapped.stats.range_selects == 1
        assert wrapped.stats.selects == 0

    def test_columns_narrow_the_shipped_shard(self, alumni_lqp):
        out = alumni_lqp.select_range(
            "ALUMNUS", "DEG", Theta.EQ, "MBA", "AID#", columns=["ANAME"]
        )
        assert out.attributes == ("ANAME",)
        assert out.rows == (("John McCauley",),)


class TestRefreshNotifications:
    def test_subscribe_and_notify(self, alumni_lqp):
        registry = LQPRegistry()
        seen = []
        registry.subscribe(seen.append)
        registry.register(alumni_lqp)  # (re)appearing database counts
        registry.notify_refresh("AD")
        assert seen == ["AD", "AD"]

    def test_unsubscribe_stops_delivery(self):
        registry = LQPRegistry()
        seen = []
        other = lambda database: seen.append(("other", database))  # noqa: E731
        registry.subscribe(seen.append)
        registry.unsubscribe(other)  # never subscribed: no-op
        registry.notify_refresh("AD")
        assert seen == ["AD"]

    def test_unsubscribe_removes_exact_listener(self):
        registry = LQPRegistry()
        seen = []
        listener = seen.append
        registry.subscribe(listener)
        registry.unsubscribe(listener)
        registry.notify_refresh("AD")
        assert seen == []
        registry.unsubscribe(listener)  # absent: no-op
