"""Unit tests for tagging/materialization at the PQP boundary."""

import pytest

from repro.catalog.mapping import AttributeMapping
from repro.catalog.scheme import PolygenScheme
from repro.core.tags import sources
from repro.integration.identity import IdentityResolver
from repro.lqp.tagging import materialize, tag_local_relation
from repro.relational.relation import Relation


@pytest.fixture
def firm_relation():
    return Relation(
        ["FNAME", "CEO", "HQ"],
        [
            ("CitiCorp", "John Reed", "NY, NY"),
            ("Langley Castle", "Stu Madnick", "Cambridge, MA"),
        ],
    )


@pytest.fixture
def porganization():
    return PolygenScheme(
        "PORGANIZATION",
        {
            "ONAME": [
                AttributeMapping("AD", "BUSINESS", "BNAME"),
                AttributeMapping("CD", "FIRM", "FNAME"),
            ],
            "INDUSTRY": [AttributeMapping("AD", "BUSINESS", "IND")],
            "CEO": [AttributeMapping("CD", "FIRM", "CEO")],
            "HEADQUARTERS": [
                AttributeMapping("CD", "FIRM", "HQ", transform="city_state_to_state")
            ],
        },
        primary_key=["ONAME"],
    )


class TestTagLocalRelation:
    def test_tags_origins_and_empty_intermediates(self, firm_relation):
        tagged = tag_local_relation(firm_relation, "CD")
        for row in tagged:
            for cell in row:
                assert cell.origins == sources("CD")
                assert cell.intermediates == frozenset()

    def test_keeps_local_attribute_names(self, firm_relation):
        tagged = tag_local_relation(firm_relation, "CD")
        assert tagged.attributes == ("FNAME", "CEO", "HQ")

    def test_nil_data_get_no_origins(self):
        tagged = tag_local_relation(Relation(["A"], [(None,)]), "AD")
        assert tagged.tuples[0][0].origins == frozenset()


class TestMaterialize:
    def test_renames_to_polygen_attributes(self, firm_relation, porganization):
        out = materialize(firm_relation, "CD", porganization)
        assert out.attributes == ("ONAME", "CEO", "HEADQUARTERS")

    def test_applies_domain_transform(self, firm_relation, porganization):
        # Table A3: FIRM arrives with bare states in HQ.
        out = materialize(firm_relation, "CD", porganization)
        hq = {t.data[0]: t.data[2] for t in out}
        assert hq["Langley Castle"] == "MA"

    def test_applies_identity_resolution(self, firm_relation, porganization):
        resolver = IdentityResolver({"Citicorp": ["CitiCorp"]})
        out = materialize(firm_relation, "CD", porganization, resolver=resolver)
        names = {t.data[0] for t in out}
        assert "Citicorp" in names and "CitiCorp" not in names

    def test_tags_match_paper_base_relations(self, firm_relation, porganization):
        out = materialize(firm_relation, "CD", porganization)
        for row in out:
            for cell in row:
                assert cell.origins == sources("CD")
                assert cell.intermediates == frozenset()

    def test_infers_relation_name_when_unique(self, firm_relation, porganization):
        # PORGANIZATION maps exactly one CD relation (FIRM), so the name is
        # optional.
        out = materialize(firm_relation, "CD", porganization)
        assert out.cardinality == 2

    def test_requires_relation_name_when_ambiguous(self, firm_relation):
        scheme = PolygenScheme(
            "P",
            {
                "A": [
                    AttributeMapping("CD", "T1", "X"),
                    AttributeMapping("CD", "T2", "Y"),
                ]
            },
        )
        with pytest.raises(ValueError):
            materialize(firm_relation, "CD", scheme)

    def test_drops_unmapped_columns(self, porganization):
        relation = Relation(
            ["FNAME", "CEO", "HQ", "UNMAPPED"],
            [("IBM", "John Ackers", "Armonk, NY", "noise")],
        )
        out = materialize(relation, "CD", porganization, relation_name="FIRM")
        assert out.attributes == ("ONAME", "CEO", "HEADQUARTERS")

    def test_business_side_uses_its_own_mappings(self, porganization):
        business = Relation(["BNAME", "IND"], [("IBM", "High Tech")])
        out = materialize(business, "AD", porganization, relation_name="BUSINESS")
        assert out.attributes == ("ONAME", "INDUSTRY")
        assert out.tuples[0][0].origins == sources("AD")
