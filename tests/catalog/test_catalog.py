"""Unit tests for the polygen schema catalog."""

import pytest

from repro.catalog.mapping import AttributeMapping
from repro.catalog.reverse import cell_provenance, local_columns_for
from repro.catalog.schema import PolygenSchema
from repro.catalog.scheme import PolygenScheme
from repro.core.cell import Cell
from repro.errors import SchemaValidationError, UnknownMappingError, UnknownSchemeError


def porganization():
    """The paper's PORGANIZATION polygen scheme, verbatim (§II)."""
    return PolygenScheme(
        "PORGANIZATION",
        {
            "ONAME": [
                AttributeMapping("AD", "BUSINESS", "BNAME"),
                AttributeMapping("PD", "CORPORATION", "CNAME"),
                AttributeMapping("CD", "FIRM", "FNAME"),
            ],
            "INDUSTRY": [
                AttributeMapping("AD", "BUSINESS", "IND"),
                AttributeMapping("PD", "CORPORATION", "TRADE"),
            ],
            "CEO": [AttributeMapping("CD", "FIRM", "CEO")],
            "HEADQUARTERS": [
                AttributeMapping("PD", "CORPORATION", "STATE"),
                AttributeMapping("CD", "FIRM", "HQ", transform="city_state_to_state"),
            ],
        },
        primary_key=["ONAME"],
    )


class TestAttributeMapping:
    def test_location(self):
        m = AttributeMapping("AD", "BUSINESS", "BNAME")
        assert m.location == ("AD", "BUSINESS")

    def test_str_with_and_without_transform(self):
        assert str(AttributeMapping("AD", "BUSINESS", "BNAME")) == "(AD, BUSINESS, BNAME)"
        assert "via city_state_to_state" in str(
            AttributeMapping("CD", "FIRM", "HQ", transform="city_state_to_state")
        )


class TestPolygenScheme:
    def test_attributes_in_declaration_order(self):
        assert porganization().attributes == ("ONAME", "INDUSTRY", "CEO", "HEADQUARTERS")

    def test_primary_key(self):
        assert porganization().primary_key == ("ONAME",)

    def test_mappings_lookup(self):
        scheme = porganization()
        assert len(scheme.mappings("ONAME")) == 3
        assert scheme.mappings("CEO")[0].location == ("CD", "FIRM")

    def test_unknown_attribute(self):
        with pytest.raises(UnknownMappingError):
            porganization().mappings("NOPE")

    def test_single_source_detection(self):
        scheme = porganization()
        assert scheme.is_single_source("CEO")
        assert not scheme.is_single_source("ONAME")

    def test_single_mapping_accessor(self):
        scheme = porganization()
        assert scheme.single_mapping("CEO").attribute == "CEO"
        with pytest.raises(UnknownMappingError):
            scheme.single_mapping("ONAME")

    def test_local_relations_first_mention_order(self):
        assert porganization().local_relations() == (
            ("AD", "BUSINESS"),
            ("PD", "CORPORATION"),
            ("CD", "FIRM"),
        )

    def test_relations_for_attribute(self):
        assert porganization().relations_for("INDUSTRY") == (
            ("AD", "BUSINESS"),
            ("PD", "CORPORATION"),
        )

    def test_rename_map(self):
        rename = porganization().rename_map("PD", "CORPORATION")
        assert rename == {"CNAME": "ONAME", "TRADE": "INDUSTRY", "STATE": "HEADQUARTERS"}

    def test_rename_map_unknown_location(self):
        with pytest.raises(UnknownMappingError):
            porganization().rename_map("XX", "NOPE")

    def test_transform_map(self):
        assert porganization().transform_map("CD", "FIRM") == {"HQ": "city_state_to_state"}
        assert porganization().transform_map("AD", "BUSINESS") == {}

    def test_polygen_attribute_for(self):
        scheme = porganization()
        assert scheme.polygen_attribute_for("CD", "FIRM", "FNAME") == "ONAME"
        with pytest.raises(UnknownMappingError):
            scheme.polygen_attribute_for("CD", "FIRM", "NOPE")

    def test_mappings_at(self):
        at_firm = porganization().mappings_at("CD", "FIRM")
        assert [m.attribute for m in at_firm] == ["FNAME", "CEO", "HQ"]

    def test_validation_rejects_empty_mapping_set(self):
        with pytest.raises(SchemaValidationError):
            PolygenScheme("P", {"A": []})

    def test_validation_rejects_duplicate_mapping(self):
        m = AttributeMapping("AD", "T", "A")
        with pytest.raises(SchemaValidationError):
            PolygenScheme("P", {"A": [m, m]})

    def test_validation_rejects_bad_key(self):
        with pytest.raises(SchemaValidationError):
            PolygenScheme(
                "P", {"A": [AttributeMapping("AD", "T", "A")]}, primary_key=["Z"]
            )

    def test_describe_mentions_mappings(self):
        text = porganization().describe()
        assert "(AD, BUSINESS, BNAME)" in text
        assert "PORGANIZATION" in text


class TestPolygenSchema:
    def build(self):
        schema = PolygenSchema([porganization()])
        schema.add(
            PolygenScheme(
                "PALUMNUS",
                {
                    "AID#": [AttributeMapping("AD", "ALUMNUS", "AID#")],
                    "ANAME": [AttributeMapping("AD", "ALUMNUS", "ANAME")],
                },
                primary_key=["AID#"],
            )
        )
        return schema

    def test_lookup(self):
        schema = self.build()
        assert schema.scheme("PALUMNUS").name == "PALUMNUS"
        assert "PORGANIZATION" in schema
        assert len(schema) == 2

    def test_unknown_scheme(self):
        with pytest.raises(UnknownSchemeError):
            self.build().scheme("NOPE")

    def test_duplicate_scheme_rejected(self):
        schema = self.build()
        with pytest.raises(SchemaValidationError):
            schema.add(porganization())

    def test_databases_first_use_order(self):
        assert self.build().databases() == ("AD", "PD", "CD")

    def test_schemes_using(self):
        schema = self.build()
        names = [s.name for s in schema.schemes_using("AD")]
        assert names == ["PORGANIZATION", "PALUMNUS"]
        assert [s.name for s in schema.schemes_using("CD")] == ["PORGANIZATION"]

    def test_validate_against_good_catalog(self):
        catalog = {
            "AD": {
                "BUSINESS": ("BNAME", "IND"),
                "ALUMNUS": ("AID#", "ANAME", "DEG", "MAJ"),
            },
            "PD": {"CORPORATION": ("CNAME", "TRADE", "STATE")},
            "CD": {"FIRM": ("FNAME", "CEO", "HQ")},
        }
        self.build().validate_against(catalog)  # should not raise

    @pytest.mark.parametrize(
        "catalog,fragment",
        [
            ({}, "unknown database"),
            ({"AD": {}, "PD": {}, "CD": {}}, "unknown relation"),
            (
                {
                    "AD": {"BUSINESS": ("BNAME",), "ALUMNUS": ("AID#", "ANAME")},
                    "PD": {"CORPORATION": ("CNAME", "TRADE", "STATE")},
                    "CD": {"FIRM": ("FNAME", "CEO", "HQ")},
                },
                "unknown column",
            ),
        ],
    )
    def test_validate_against_bad_catalogs(self, catalog, fragment):
        with pytest.raises(SchemaValidationError) as err:
            self.build().validate_against(catalog)
        assert fragment in str(err.value)


class TestReverseMapping:
    def test_local_columns_filtered_by_origins(self):
        schema = PolygenSchema([porganization()])
        columns = local_columns_for(
            schema, "PORGANIZATION", "ONAME", frozenset({"AD", "CD"})
        )
        assert [(m.database, m.relation, m.attribute) for m in columns] == [
            ("AD", "BUSINESS", "BNAME"),
            ("CD", "FIRM", "FNAME"),
        ]

    def test_cell_provenance_sentence(self):
        # Paper §IV observation (3): Genentech with origins {AD, CD}.
        schema = PolygenSchema([porganization()])
        cell = Cell.of("Genentech", ["AD", "CD"], ["AD", "CD"])
        text = cell_provenance(schema, "PORGANIZATION", "ONAME", cell)
        assert "Genentech" in text
        assert "(AD, BUSINESS, BNAME)" in text
        assert "(CD, FIRM, FNAME)" in text
        assert "AD, CD" in text  # intermediates

    def test_cell_provenance_nil(self):
        schema = PolygenSchema([porganization()])
        cell = Cell.nil(["AD"])
        text = cell_provenance(schema, "PORGANIZATION", "CEO", cell)
        assert "nil" in text
        assert "AD" in text
