"""Unit tests for polygen schema (de)serialization."""

import pytest

from repro.catalog.serialize import (
    schema_from_dict,
    schema_from_json,
    schema_to_dict,
    schema_to_json,
)
from repro.datasets.paper import paper_polygen_schema
from repro.errors import SchemaValidationError


class TestRoundTrip:
    def test_paper_schema_survives_dict_round_trip(self):
        original = paper_polygen_schema()
        rebuilt = schema_from_dict(schema_to_dict(original))
        assert rebuilt.names() == original.names()
        for scheme in original:
            twin = rebuilt.scheme(scheme.name)
            assert twin.attributes == scheme.attributes
            assert twin.primary_key == scheme.primary_key
            for attribute in scheme.attributes:
                assert twin.mappings(attribute) == scheme.mappings(attribute)

    def test_paper_schema_survives_json_round_trip(self):
        original = paper_polygen_schema()
        rebuilt = schema_from_json(schema_to_json(original))
        assert schema_to_dict(rebuilt) == schema_to_dict(original)

    def test_transforms_serialize(self):
        document = schema_to_dict(paper_polygen_schema())
        porganization = [
            s for s in document["schemes"] if s["name"] == "PORGANIZATION"
        ][0]
        hq = [a for a in porganization["attributes"] if a["name"] == "HEADQUARTERS"][0]
        firm_mapping = [m for m in hq["mappings"] if m["database"] == "CD"][0]
        assert firm_mapping["transform"] == "city_state_to_state"

    def test_mappings_without_transform_omit_the_key(self):
        document = schema_to_dict(paper_polygen_schema())
        palumnus = [s for s in document["schemes"] if s["name"] == "PALUMNUS"][0]
        for attribute in palumnus["attributes"]:
            for mapping in attribute["mappings"]:
                assert "transform" not in mapping

    def test_rebuilt_schema_actually_answers_queries(self):
        # The data-driven claim, end to end: a schema loaded from JSON
        # drives the same translation as the hand-built one.
        from repro.datasets.paper import paper_databases, paper_identity_resolver
        from repro.lqp.registry import LQPRegistry
        from repro.lqp.relational_lqp import RelationalLQP
        from repro.pqp.processor import PolygenQueryProcessor

        schema = schema_from_json(schema_to_json(paper_polygen_schema()))
        registry = LQPRegistry()
        for database in paper_databases().values():
            registry.register(RelationalLQP(database))
        pqp = PolygenQueryProcessor(
            schema, registry, resolver=paper_identity_resolver()
        )
        result = pqp.run_sql('SELECT CEO FROM PORGANIZATION WHERE ONAME = "Genentech"')
        assert result.relation.tuples[0].data == ("Bob Swanson",)


class TestValidation:
    def test_top_level_shape(self):
        with pytest.raises(SchemaValidationError):
            schema_from_dict({"not_schemes": []})
        with pytest.raises(SchemaValidationError):
            schema_from_dict([])

    def test_scheme_needs_name(self):
        with pytest.raises(SchemaValidationError):
            schema_from_dict({"schemes": [{"attributes": [{"name": "A"}]}]})

    def test_scheme_needs_attributes(self):
        with pytest.raises(SchemaValidationError):
            schema_from_dict({"schemes": [{"name": "P"}]})

    def test_attribute_needs_name(self):
        with pytest.raises(SchemaValidationError):
            schema_from_dict(
                {"schemes": [{"name": "P", "attributes": [{"mappings": []}]}]}
            )

    def test_mapping_needs_location_keys(self):
        document = {
            "schemes": [
                {
                    "name": "P",
                    "attributes": [
                        {"name": "A", "mappings": [{"database": "AD"}]}
                    ],
                }
            ]
        }
        with pytest.raises(SchemaValidationError) as err:
            schema_from_dict(document)
        assert "P.A" in str(err.value)

    def test_empty_mapping_set_rejected(self):
        document = {
            "schemes": [
                {"name": "P", "attributes": [{"name": "A", "mappings": []}]}
            ]
        }
        with pytest.raises(SchemaValidationError):
            schema_from_dict(document)

    def test_invalid_json_wrapped(self):
        with pytest.raises(SchemaValidationError):
            schema_from_json("{not json")
