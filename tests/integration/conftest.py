"""Shared fixtures: the paper's federation, wired once per test module."""

import pytest

from repro.datasets.paper import build_paper_federation

PAPER_SQL = """
SELECT ONAME, CEO
FROM PORGANIZATION, PALUMNUS
WHERE CEO = ANAME AND ONAME IN
    (SELECT ONAME FROM PCAREER WHERE AID# IN
        (SELECT AID# FROM PALUMNUS WHERE DEGREE = "MBA"))
"""

PAPER_ALGEBRA = (
    '((((PALUMNUS [DEGREE = "MBA"]) [AID# = AID#] PCAREER)'
    " [ONAME = ONAME] PORGANIZATION) [CEO = ANAME]) [ONAME, CEO]"
)


@pytest.fixture(scope="module")
def pqp():
    return build_paper_federation()


@pytest.fixture(scope="module")
def paper_result(pqp):
    return pqp.run_sql(PAPER_SQL)
