"""Reproduction of the paper's translation artifacts: Table 1 (POM),
Table 2 (half-processed IOM after pass one) and Table 3 (IOM)."""

import pytest

from repro.algebra_lang import parse_expression
from repro.datasets.paper import paper_polygen_schema
from repro.pqp.interpreter import PolygenOperationInterpreter
from repro.pqp.syntax_analyzer import SyntaxAnalyzer

from tests.integration.conftest import PAPER_ALGEBRA


@pytest.fixture(scope="module")
def pom():
    return SyntaxAnalyzer().analyze(parse_expression(PAPER_ALGEBRA))


@pytest.fixture(scope="module")
def interpreter():
    return PolygenOperationInterpreter(paper_polygen_schema())


class TestTable1:
    """The Polygen Operation Matrix (paper, Table 1)."""

    EXPECTED = [
        ("R(1)", "Select", "PALUMNUS", "DEGREE", "=", '"MBA"', "nil"),
        ("R(2)", "Join", "R(1)", "AID#", "=", "AID#", "PCAREER"),
        ("R(3)", "Join", "R(2)", "ONAME", "=", "ONAME", "PORGANIZATION"),
        ("R(4)", "Restrict", "R(3)", "CEO", "=", "ANAME", "nil"),
        ("R(5)", "Project", "R(4)", "ONAME, CEO", "nil", "nil", "nil"),
    ]

    def test_row_count(self, pom):
        assert len(pom) == 5

    def test_rows_match_paper(self, pom):
        assert [row.cells(with_el=False) for row in pom] == [
            tuple(row) for row in self.EXPECTED
        ]


class TestTable2:
    """The half-processed IOM after pass one (paper, Table 2)."""

    EXPECTED = [
        ("R(1)", "Select", "ALUMNUS", "DEG", "=", '"MBA"', "nil", "AD"),
        ("R(2)", "Join", "R(1)", "AID#", "=", "AID#", "PCAREER", "PQP"),
        ("R(3)", "Join", "R(2)", "ONAME", "=", "ONAME", "PORGANIZATION", "PQP"),
        ("R(4)", "Restrict", "R(3)", "CEO", "=", "ANAME", "nil", "PQP"),
        ("R(5)", "Project", "R(4)", "ONAME, CEO", "nil", "nil", "nil", "PQP"),
    ]

    def test_rows_match_paper(self, pom, interpreter):
        half = interpreter.pass_one(pom)
        assert [row.cells(with_el=True) for row in half] == [
            tuple(row) for row in self.EXPECTED
        ]

    def test_pass_one_maps_select_to_local_attribute(self, pom, interpreter):
        half = interpreter.pass_one(pom)
        select = half.rows[0]
        assert select.lha == "DEG"  # local attribute, not DEGREE
        assert select.el == "AD"
        assert select.scheme == "PALUMNUS"


class TestTable3:
    """The full IOM after pass two (paper, Table 3)."""

    EXPECTED = [
        ("R(1)", "Select", "ALUMNUS", "DEG", "=", '"MBA"', "nil", "AD"),
        ("R(2)", "Retrieve", "CAREER", "nil", "nil", "nil", "nil", "AD"),
        ("R(3)", "Join", "R(1)", "AID#", "=", "AID#", "R(2)", "PQP"),
        ("R(4)", "Retrieve", "BUSINESS", "nil", "nil", "nil", "nil", "AD"),
        ("R(5)", "Retrieve", "CORPORATION", "nil", "nil", "nil", "nil", "PD"),
        ("R(6)", "Retrieve", "FIRM", "nil", "nil", "nil", "nil", "CD"),
        ("R(7)", "Merge", "R(4), R(5), R(6)", "nil", "nil", "nil", "nil", "PQP"),
        ("R(8)", "Join", "R(3)", "ONAME", "=", "ONAME", "R(7)", "PQP"),
        ("R(9)", "Restrict", "R(8)", "CEO", "=", "ANAME", "nil", "PQP"),
        ("R(10)", "Project", "R(9)", "ONAME, CEO", "nil", "nil", "nil", "PQP"),
    ]

    def test_rows_match_paper(self, pom, interpreter):
        iom = interpreter.interpret(pom)
        assert [row.cells(with_el=True) for row in iom] == [
            tuple(row) for row in self.EXPECTED
        ]

    def test_retrieve_rows_carry_scheme_context(self, pom, interpreter):
        iom = interpreter.interpret(pom)
        by_relation = {
            row.lhr.relation: row for row in iom if row.op.value == "Retrieve"
        }
        assert by_relation["CAREER"].scheme == "PCAREER"
        assert by_relation["BUSINESS"].scheme == "PORGANIZATION"
        assert by_relation["CORPORATION"].scheme == "PORGANIZATION"
        assert by_relation["FIRM"].scheme == "PORGANIZATION"

    def test_databases_touched(self, pom, interpreter):
        iom = interpreter.interpret(pom)
        assert set(iom.databases_touched()) == {"AD", "PD", "CD"}

    def test_merge_carries_scheme(self, pom, interpreter):
        iom = interpreter.interpret(pom)
        merge = [row for row in iom if row.op.value == "Merge"][0]
        assert merge.scheme == "PORGANIZATION"
        assert merge.el == "PQP"
