"""Cell-exact reproduction of Appendix A: the Merge walk-through (Tables
A1–A9), built through the public core API exactly as the appendix narrates.
"""

import pytest

from repro.core.algebra import coalesce, rename
from repro.core.derived import (
    merge,
    outer_join,
    outer_natural_primary_join,
    outer_natural_total_join,
)
from repro.datasets import expected
from repro.datasets.paper import paper_databases, paper_identity_resolver
from repro.integration.domains import default_registry
from repro.lqp.tagging import tag_local_relation


@pytest.fixture(scope="module")
def base_relations():
    """A1, A2, A3: retrieved, identity-resolved, domain-mapped, tagged —
    keeping local attribute names as the appendix prints them."""
    databases = paper_databases()
    resolver = paper_identity_resolver()
    registry = default_registry()
    hq_transform = registry.get("city_state_to_state")

    def canonicalize(relation, transforms=None):
        transforms = transforms or {}

        def convert(attribute, value):
            transform = transforms.get(attribute)
            if transform is not None:
                value = transform(value)
            return resolver.resolve(value)

        return relation.map_values(convert)

    business = canonicalize(databases["AD"].relation("BUSINESS"))
    corporation = canonicalize(databases["PD"].relation("CORPORATION"))
    firm = canonicalize(databases["CD"].relation("FIRM"), {"HQ": hq_transform})
    return {
        "A1": tag_local_relation(business, "AD"),
        "A2": tag_local_relation(corporation, "PD"),
        "A3": tag_local_relation(firm, "CD"),
    }


class TestBaseRelations:
    def test_a1_business(self, base_relations):
        assert base_relations["A1"] == expected.expected_table_a1()

    def test_a2_corporation(self, base_relations):
        assert base_relations["A2"] == expected.expected_table_a2()

    def test_a3_firm_arrives_with_bare_states(self, base_relations):
        assert base_relations["A3"] == expected.expected_table_a3()
        states = {row.data[2] for row in base_relations["A3"]}
        assert states == {"NY", "MA", "MI", "CA"}


class TestFirstOuterNaturalTotalJoin:
    """Steps (1)-(3) of the first ONTJ: Tables A4, A5, A6."""

    def test_a4_outer_join(self, base_relations):
        a4 = outer_join(base_relations["A1"], base_relations["A2"], [("BNAME", "CNAME")])
        assert a4 == expected.expected_table_a4()

    def test_a5_outer_natural_primary_join(self, base_relations):
        a5 = outer_natural_primary_join(
            base_relations["A1"],
            base_relations["A2"],
            [("BNAME", "CNAME")],
            output_names=["ONAME"],
        )
        assert a5 == expected.expected_table_a5()

    def test_a6_outer_natural_total_join(self, base_relations):
        a6 = outer_natural_total_join(
            base_relations["A1"],
            base_relations["A2"],
            key_pairs=[("BNAME", "CNAME")],
            output_names=["ONAME"],
            extra_pairs=[("IND", "TRADE", "INDUSTRY")],
        )
        a6 = rename(a6, {"STATE": "HEADQUARTERS"})
        assert a6 == expected.expected_table_a6()

    def test_a5_is_a4_plus_coalesce(self, base_relations):
        a4 = outer_join(base_relations["A1"], base_relations["A2"], [("BNAME", "CNAME")])
        assert coalesce(a4, "BNAME", "CNAME", w="ONAME") == expected.expected_table_a5()


class TestSecondOuterNaturalTotalJoin:
    """Tables A7, A8, A9 — joining the intermediate result with FIRM."""

    @pytest.fixture(scope="class")
    def a6(self, base_relations):
        a6 = outer_natural_total_join(
            base_relations["A1"],
            base_relations["A2"],
            key_pairs=[("BNAME", "CNAME")],
            output_names=["ONAME"],
            extra_pairs=[("IND", "TRADE", "INDUSTRY")],
        )
        return rename(a6, {"STATE": "HEADQUARTERS"})

    def test_a7_outer_join(self, a6, base_relations):
        a7 = outer_join(a6, base_relations["A3"], [("ONAME", "FNAME")])
        assert a7 == expected.expected_table_a7()

    def test_a8_coalesces_the_key(self, a6, base_relations):
        a7 = outer_join(a6, base_relations["A3"], [("ONAME", "FNAME")])
        a8 = coalesce(a7, "ONAME", "FNAME", w="ONAME")
        assert a8 == expected.expected_table_a8()

    def test_a9_coalesces_headquarters(self, a6, base_relations):
        a7 = outer_join(a6, base_relations["A3"], [("ONAME", "FNAME")])
        a8 = coalesce(a7, "ONAME", "FNAME", w="ONAME")
        a9 = coalesce(a8, "HEADQUARTERS", "HQ", w="HEADQUARTERS")
        assert a9 == expected.expected_table_a9()

    def test_a9_equals_table_6(self):
        assert expected.expected_table_a9() == expected.expected_table_6()


class TestMergeOperator:
    """The Merge operator reproduces the whole appendix in one call once the
    operands are renamed to polygen attributes (as the executor does)."""

    @pytest.fixture(scope="class")
    def renamed(self, base_relations):
        return [
            base_relations["A1"].rename({"BNAME": "ONAME", "IND": "INDUSTRY"}),
            base_relations["A2"].rename(
                {"CNAME": "ONAME", "TRADE": "INDUSTRY", "STATE": "HEADQUARTERS"}
            ),
            base_relations["A3"].rename({"FNAME": "ONAME", "HQ": "HEADQUARTERS"}),
        ]

    def test_merge_produces_table_6_modulo_column_order(self, renamed):
        merged = merge(renamed, key=["ONAME"])
        table6 = expected.expected_table_6()
        assert set(merged.attributes) == set(table6.attributes)
        from repro.core.algebra import project

        assert project(merged, table6.attributes) == table6

    def test_merge_order_immaterial_on_paper_data(self, renamed):
        import itertools

        from repro.core.algebra import project

        reference = None
        for permutation in itertools.permutations(renamed):
            merged = merge(list(permutation), key=["ONAME"])
            normalized = project(
                merged, ["ONAME", "INDUSTRY", "HEADQUARTERS", "CEO"]
            )
            if reference is None:
                reference = normalized
            else:
                assert normalized == reference
