"""Cell-exact reproduction of the paper's execution tables (4-9).

Each test compares a live intermediate result of the example query against
the transcribed table in :mod:`repro.datasets.expected`.  Relation equality
is set-based over (datum, origins, intermediates) triplets, so these tests
pin both the data *and* the source tags.
"""

import pytest

from repro.datasets import expected

from tests.integration.conftest import PAPER_SQL


@pytest.fixture(scope="module")
def trace(paper_result):
    return paper_result.trace


class TestTable4:
    def test_r1_matches(self, trace):
        assert trace.result(1) == expected.expected_table_4()

    def test_tags_are_origin_only(self, trace):
        for row in trace.result(1):
            for cell in row:
                assert cell.origins == frozenset({"AD"})
                assert cell.intermediates == frozenset()


class TestTable5:
    def test_r3_matches(self, trace):
        assert trace.result(3) == expected.expected_table_5()

    def test_join_made_ad_an_intermediate_source(self, trace):
        # "The Join requires that the intermediate source cells to be {AD}
        # although in this case it appears to be redundant."
        for row in trace.result(3):
            for cell in row:
                assert cell.intermediates == frozenset({"AD"})


class TestTable6:
    def test_r7_matches(self, trace):
        assert trace.result(7) == expected.expected_table_6()

    def test_merge_covers_all_twelve_organizations(self, trace):
        assert trace.result(7).cardinality == 12

    def test_three_source_rows(self, trace):
        by_name = {row.data[0]: row for row in trace.result(7)}
        assert by_name["IBM"][0].origins == frozenset({"AD", "PD", "CD"})
        assert by_name["MIT"][0].origins == frozenset({"AD"})
        assert by_name["Apple"][0].origins == frozenset({"PD", "CD"})


class TestTable7:
    def test_r8_matches(self, trace):
        assert trace.result(8) == expected.expected_table_7()

    def test_mit_row_keeps_nil_ceo(self, trace):
        mit = [row for row in trace.result(8) if row.data[4] == "MIT"][0]
        assert mit.data[8] is None
        ceo_cell = mit[8]
        assert ceo_cell.origins == frozenset()
        assert ceo_cell.intermediates == frozenset({"AD"})


class TestTable8:
    def test_r9_matches(self, trace):
        assert trace.result(9) == expected.expected_table_8()

    def test_only_self_ceos_survive(self, trace):
        for row in trace.result(9):
            assert row.data[1] == row.data[8]  # ANAME == CEO


class TestTable9:
    def test_final_result_matches(self, paper_result):
        assert paper_result.relation == expected.expected_table_9()

    def test_paper_observation_1_genentech(self, paper_result):
        # "The information of Genentech is from the Alumni Database and
        # Company Database, and only from these two databases … the Alumni
        # Database has served as an intermediate source."
        genentech = [t for t in paper_result.relation if t.data[0] == "Genentech"][0]
        assert genentech[0].origins == frozenset({"AD", "CD"})
        assert genentech[1].origins == frozenset({"CD"})
        assert "AD" in genentech[1].intermediates

    def test_paper_observation_2_citicorp(self, paper_result):
        # "The information about Citicorp is available from all three
        # databases, but the information about its CEO, John Reed, is
        # available only in the Company Database."
        citicorp = [t for t in paper_result.relation if t.data[0] == "Citicorp"][0]
        assert citicorp[0].origins == frozenset({"AD", "PD", "CD"})
        assert citicorp[1].origins == frozenset({"CD"})


class TestPipelineCoherence:
    def test_sql_runs_equal_algebra_runs(self, pqp, paper_result):
        from tests.integration.conftest import PAPER_ALGEBRA

        via_algebra = pqp.run_algebra(PAPER_ALGEBRA)
        assert via_algebra.relation == paper_result.relation

    def test_run_plan_executes_table3_verbatim(self, pqp, paper_result):
        # "Let us assume that Table 3 is used as a query execution plan
        # (i.e., without further optimization)."
        replay = pqp.run_plan(paper_result.iom)
        assert replay.relation == paper_result.relation

    def test_lineage_tracks_schemes(self, paper_result):
        assert paper_result.lineage["ONAME"] >= {"PCAREER", "PORGANIZATION"}
        assert paper_result.lineage["CEO"] == {"PORGANIZATION"}

    def test_local_traffic_matches_plan(self, pqp):
        pqp.registry.reset_stats()
        pqp.run_sql(PAPER_SQL)
        stats = pqp.registry.stats()
        # AD: 1 select + 2 retrieves; PD: 1 retrieve; CD: 1 retrieve.
        assert stats["AD"].queries == 3
        assert stats["AD"].selects == 1
        assert stats["PD"].retrieves == 1
        assert stats["CD"].retrieves == 1
