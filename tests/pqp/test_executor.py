"""Unit tests for the IOM executor: routing, materialization, lineage and
failure modes."""

import pytest

from repro.core.predicate import Literal, Theta
from repro.datasets.paper import (
    build_paper_federation,
    paper_databases,
    paper_identity_resolver,
    paper_polygen_schema,
)
from repro.errors import ExecutionError, UnknownDatabaseError
from repro.lqp.registry import LQPRegistry
from repro.lqp.relational_lqp import RelationalLQP
from repro.pqp.executor import Executor
from repro.pqp.matrix import (
    PQP_LOCATION,
    IntermediateOperationMatrix,
    LocalOperand,
    MatrixRow,
    Operation,
    ResultOperand,
)


@pytest.fixture(scope="module")
def executor():
    registry = LQPRegistry()
    for database in paper_databases().values():
        registry.register(RelationalLQP(database))
    return Executor(
        paper_polygen_schema(), registry, resolver=paper_identity_resolver()
    )


def iom(*rows):
    return IntermediateOperationMatrix(rows)


def retrieve(index, relation, database, scheme):
    return MatrixRow(
        result=ResultOperand(index),
        op=Operation.RETRIEVE,
        lhr=LocalOperand(relation),
        el=database,
        scheme=scheme,
    )


class TestLocalRows:
    def test_retrieve_materializes_and_tags(self, executor):
        trace = executor.execute(iom(retrieve(1, "CAREER", "AD", "PCAREER")))
        assert trace.relation.attributes == ("AID#", "ONAME", "POSITION")
        assert trace.relation.cardinality == 9
        cell = trace.relation.tuples[0][0]
        assert cell.origins == frozenset({"AD"})
        assert cell.intermediates == frozenset()

    def test_retrieve_applies_identity_resolution(self, executor):
        trace = executor.execute(iom(retrieve(1, "BUSINESS", "AD", "PORGANIZATION")))
        names = {row.data[0] for row in trace.relation}
        assert "Citicorp" in names and "CitiCorp" not in names

    def test_local_select(self, executor):
        trace = executor.execute(
            iom(
                MatrixRow(
                    result=ResultOperand(1),
                    op=Operation.SELECT,
                    lhr=LocalOperand("ALUMNUS"),
                    lha="DEG",
                    theta=Theta.EQ,
                    rha=Literal("MBA"),
                    el="AD",
                    scheme="PALUMNUS",
                )
            )
        )
        assert trace.relation.cardinality == 5

    def test_local_select_requires_literal(self, executor):
        with pytest.raises(ExecutionError):
            executor.execute(
                iom(
                    MatrixRow(
                        result=ResultOperand(1),
                        op=Operation.SELECT,
                        lhr=LocalOperand("ALUMNUS"),
                        lha="DEG",
                        theta=Theta.EQ,
                        rha="MAJ",  # attribute, not literal
                        el="AD",
                        scheme="PALUMNUS",
                    )
                )
            )

    def test_unsupported_local_operation(self, executor):
        with pytest.raises(ExecutionError):
            executor.execute(
                iom(
                    MatrixRow(
                        result=ResultOperand(1),
                        op=Operation.PROJECT,
                        lhr=LocalOperand("ALUMNUS"),
                        lha=("ANAME",),
                        el="AD",
                        scheme="PALUMNUS",
                    )
                )
            )

    def test_unknown_database(self, executor):
        with pytest.raises(UnknownDatabaseError):
            executor.execute(iom(retrieve(1, "ALUMNUS", "XX", "PALUMNUS")))

    def test_lineage_of_base_relation(self, executor):
        trace = executor.execute(iom(retrieve(1, "CAREER", "AD", "PCAREER")))
        assert trace.lineage == {
            "AID#": frozenset({"PCAREER"}),
            "ONAME": frozenset({"PCAREER"}),
            "POSITION": frozenset({"PCAREER"}),
        }


class TestPqpRows:
    def test_merge_requires_scheme_key(self, executor):
        rows = [
            retrieve(1, "ALUMNUS", "AD", "PALUMNUS"),
            retrieve(2, "CAREER", "AD", "PCAREER"),
            MatrixRow(
                result=ResultOperand(3),
                op=Operation.MERGE,
                lhr=(ResultOperand(1), ResultOperand(2)),
                el=PQP_LOCATION,
                scheme="PALUMNUS",
            ),
        ]
        # PALUMNUS's key is AID#, present in both → merge succeeds.
        trace = executor.execute(iom(*rows))
        assert "ONAME" in trace.relation.heading

    def test_merge_demands_tuple_input(self, executor):
        rows = [
            retrieve(1, "ALUMNUS", "AD", "PALUMNUS"),
            MatrixRow(
                result=ResultOperand(2),
                op=Operation.MERGE,
                lhr=ResultOperand(1),
                el=PQP_LOCATION,
                scheme="PALUMNUS",
            ),
        ]
        with pytest.raises(ExecutionError):
            executor.execute(iom(*rows))

    def test_union_aligns_attribute_order(self, executor):
        rows = [
            retrieve(1, "ALUMNUS", "AD", "PALUMNUS"),
            MatrixRow(
                result=ResultOperand(2),
                op=Operation.PROJECT,
                lhr=ResultOperand(1),
                lha=("ANAME", "MAJOR"),
                el=PQP_LOCATION,
            ),
            MatrixRow(
                result=ResultOperand(3),
                op=Operation.PROJECT,
                lhr=ResultOperand(1),
                lha=("MAJOR", "ANAME"),  # transposed order
                el=PQP_LOCATION,
            ),
            MatrixRow(
                result=ResultOperand(4),
                op=Operation.UNION,
                lhr=ResultOperand(2),
                rhr=ResultOperand(3),
                el=PQP_LOCATION,
            ),
        ]
        trace = executor.execute(iom(*rows))
        assert trace.relation.cardinality == 8  # no spurious duplicates

    def test_empty_plan_rejected(self, executor):
        with pytest.raises(ExecutionError):
            executor.execute(iom())

    def test_row_errors_carry_row_context(self, executor):
        rows = [
            retrieve(1, "ALUMNUS", "AD", "PALUMNUS"),
            MatrixRow(
                result=ResultOperand(2),
                op=Operation.PROJECT,
                lhr=ResultOperand(1),
                lha=("NOPE",),
                el=PQP_LOCATION,
            ),
        ]
        with pytest.raises(ExecutionError) as err:
            executor.execute(iom(*rows))
        assert "R(2)" in str(err.value)

    def test_trace_result_lookup(self, executor):
        trace = executor.execute(iom(retrieve(1, "CAREER", "AD", "PCAREER")))
        assert trace.result(1) is trace.relation
        with pytest.raises(ExecutionError):
            trace.result(99)


class TestCoalesceRow:
    def test_coalesce_at_pqp(self, executor):
        rows = [
            retrieve(1, "FIRM", "CD", "PORGANIZATION"),
            MatrixRow(
                result=ResultOperand(2),
                op=Operation.COALESCE,
                lhr=ResultOperand(1),
                lha="CEO",
                rha="HEADQUARTERS",
                output="MIXED",
                el=PQP_LOCATION,
            ),
        ]
        trace = executor.execute(iom(*rows))
        assert "MIXED" in trace.relation.heading
        # conflicting non-nil pairs drop under the paper's Coalesce
        assert trace.relation.cardinality == 0
        assert trace.lineage["MIXED"] == frozenset({"PORGANIZATION"})
