"""Unit tests for the two-pass Polygen Operation Interpreter beyond the
paper's Table 2/3 case (which lives in tests/integration)."""

import pytest

from repro.algebra_lang import parse_expression
from repro.datasets.paper import paper_polygen_schema
from repro.errors import UnknownSchemeError
from repro.pqp.interpreter import PolygenOperationInterpreter
from repro.pqp.matrix import LocalOperand, Operation, ResultOperand
from repro.pqp.syntax_analyzer import SyntaxAnalyzer


@pytest.fixture(scope="module")
def interpreter():
    return PolygenOperationInterpreter(paper_polygen_schema())


def plan(interpreter, text):
    pom = SyntaxAnalyzer().analyze(parse_expression(text))
    return interpreter.interpret(pom)


class TestPassOneRouting:
    def test_single_source_select_goes_local(self, interpreter):
        iom = plan(interpreter, 'PALUMNUS [DEGREE = "MBA"]')
        assert len(iom) == 1
        row = iom.rows[0]
        assert row.el == "AD"
        assert row.lha == "DEG"  # rewritten to the local attribute
        assert isinstance(row.lhr, LocalOperand)

    def test_multi_source_select_merges_contributing_relations_only(self, interpreter):
        # INDUSTRY maps to BUSINESS@AD and CORPORATION@PD — FIRM@CD does not
        # contribute and is not retrieved (Figure 3 iterates over MAi).
        iom = plan(interpreter, 'PORGANIZATION [INDUSTRY = "Banking"]')
        ops = [(row.op, row.el) for row in iom]
        assert ops == [
            (Operation.RETRIEVE, "AD"),
            (Operation.RETRIEVE, "PD"),
            (Operation.MERGE, "PQP"),
            (Operation.SELECT, "PQP"),
        ]
        select = iom.rows[-1]
        assert select.lha == "INDUSTRY"  # polygen attribute at the PQP

    def test_project_on_scheme_materializes_whole_scheme(self, interpreter):
        iom = plan(interpreter, "PORGANIZATION [ONAME, CEO]")
        ops = [row.op for row in iom]
        assert ops == [
            Operation.RETRIEVE,
            Operation.RETRIEVE,
            Operation.RETRIEVE,
            Operation.MERGE,
            Operation.PROJECT,
        ]

    def test_project_on_single_relation_scheme_retrieves_once(self, interpreter):
        iom = plan(interpreter, "PALUMNUS [ANAME]")
        assert [row.op for row in iom] == [Operation.RETRIEVE, Operation.PROJECT]
        assert iom.rows[0].el == "AD"

    def test_restrict_on_scheme_never_goes_local(self, interpreter):
        # The minimal LQP surface cannot compare two attributes; even a
        # single-source scheme is materialized first.
        iom = plan(interpreter, "PFINANCE [PROFIT = YEAR]")
        assert [row.op for row in iom] == [Operation.RETRIEVE, Operation.RESTRICT]
        assert iom.rows[1].el == "PQP"

    def test_unknown_scheme_raises(self, interpreter):
        with pytest.raises(UnknownSchemeError):
            plan(interpreter, 'NOPE [A = "x"]')


class TestFullSchemeMode:
    """The ``materialize_full_scheme`` extension (documented deviation from
    Figure 3, which iterates over the probed attribute's MAi only)."""

    @pytest.fixture(scope="class")
    def full(self):
        return PolygenOperationInterpreter(
            paper_polygen_schema(), materialize_full_scheme=True
        )

    def test_select_on_multi_source_scheme_keeps_all_attributes(self, full):
        iom = plan(full, 'PORGANIZATION [INDUSTRY = "Banking"]')
        retrieves = [row for row in iom if row.op is Operation.RETRIEVE]
        assert len(retrieves) == 3  # BUSINESS, CORPORATION *and* FIRM

    def test_single_source_attr_of_multi_source_scheme_not_routed_locally(self, full):
        # Figure 3 would run Select FIRM CEO = … at CD, losing INDUSTRY;
        # full-scheme mode merges everything first.
        iom = plan(full, 'PORGANIZATION [CEO = "John Reed"]')
        assert [row.op for row in iom] == [
            Operation.RETRIEVE,
            Operation.RETRIEVE,
            Operation.RETRIEVE,
            Operation.MERGE,
            Operation.SELECT,
        ]

    def test_single_relation_scheme_still_routes_locally(self, full):
        iom = plan(full, 'PALUMNUS [DEGREE = "MBA"]')
        assert len(iom) == 1
        assert iom.rows[0].el == "AD"

    def test_paper_example_plan_is_unchanged(self, full, interpreter):
        # ONAME maps to all three local relations, so both modes agree on
        # the Table 3 plan.
        from tests.integration.conftest import PAPER_ALGEBRA

        default_plan = plan(interpreter, PAPER_ALGEBRA)
        full_plan = plan(full, PAPER_ALGEBRA)
        assert [r.cells(True) for r in full_plan] == [r.cells(True) for r in default_plan]


class TestPassTwoRouting:
    def test_rhr_single_source_retrieve_then_join(self, interpreter):
        iom = plan(interpreter, '(PALUMNUS [DEGREE = "MBA"]) [AID# = AID#] PCAREER')
        assert [row.op for row in iom] == [
            Operation.SELECT,
            Operation.RETRIEVE,
            Operation.JOIN,
        ]
        join = iom.rows[2]
        assert join.lhr == ResultOperand(1)
        assert join.rhr == ResultOperand(2)
        assert join.el == "PQP"

    def test_rhr_multi_source_retrieves_then_merge(self, interpreter):
        iom = plan(
            interpreter,
            '((PALUMNUS [DEGREE = "MBA"]) [AID# = AID#] PCAREER)'
            " [ONAME = ONAME] PORGANIZATION",
        )
        assert [row.op for row in iom] == [
            Operation.SELECT,
            Operation.RETRIEVE,
            Operation.JOIN,
            Operation.RETRIEVE,
            Operation.RETRIEVE,
            Operation.RETRIEVE,
            Operation.MERGE,
            Operation.JOIN,
        ]

    def test_both_sides_local_section_one_case(self, interpreter):
        # The §I query's join: PORGANIZATION's CEO is single-source (CD) so
        # pass one leaves a pending local row; PALUMNUS's ANAME is
        # single-source (AD).  Figure 4 materializes both and joins at PQP.
        iom = plan(interpreter, "PORGANIZATION [CEO = ANAME] PALUMNUS")
        cells = [row.cells(with_el=True) for row in iom]
        assert cells == [
            ("R(1)", "Retrieve", "FIRM", "nil", "nil", "nil", "nil", "CD"),
            ("R(2)", "Retrieve", "ALUMNUS", "nil", "nil", "nil", "nil", "AD"),
            ("R(3)", "Join", "R(1)", "CEO", "=", "ANAME", "R(2)", "PQP"),
        ]

    def test_pass_one_rewriting_is_undone_for_pqp_join(self, interpreter):
        # PCAREER.ONAME maps to local BNAME; when the pending local join is
        # lifted to the PQP the LHA must be the polygen attribute again
        # (Figure 4's PA() helper).
        iom = plan(interpreter, "PCAREER [ONAME = ANAME] PALUMNUS")
        join = iom.rows[-1]
        assert join.lha == "ONAME"

    def test_pending_local_join_with_result_rhr(self, interpreter):
        # LHR pending at CD, RHR already a polygen relation: the join lifts
        # to the PQP with a Retrieve for the left side.
        iom = plan(
            interpreter, 'PORGANIZATION [CEO = ANAME] (PALUMNUS [DEGREE = "MBA"])'
        )
        assert [row.op for row in iom] == [
            Operation.SELECT,
            Operation.RETRIEVE,
            Operation.JOIN,
        ]
        join = iom.rows[2]
        assert join.el == "PQP"
        assert join.lha == "CEO"
        assert join.lhr == ResultOperand(2)
        assert join.rhr == ResultOperand(1)

    def test_set_operation_materializes_scheme_operands(self, interpreter):
        iom = plan(interpreter, "(PALUMNUS [MAJOR]) UNION (PSTUDENT [MAJOR])")
        assert [row.op for row in iom] == [
            Operation.RETRIEVE,
            Operation.PROJECT,
            Operation.RETRIEVE,
            Operation.PROJECT,
            Operation.UNION,
        ]

    def test_multi_source_rhr_with_pending_lhr(self, interpreter):
        # LHR pending local (PALUMNUS.ANAME @ AD), RHR multi-source
        # (PORGANIZATION.INDUSTRY @ AD+PD): Figure 4's last branch —
        # retrieves + merge first, then the LHR retrieve, then the join.
        iom = plan(interpreter, "PALUMNUS [ANAME = INDUSTRY] PORGANIZATION")
        assert [row.op for row in iom] == [
            Operation.RETRIEVE,  # BUSINESS @ AD
            Operation.RETRIEVE,  # CORPORATION @ PD
            Operation.MERGE,
            Operation.RETRIEVE,  # ALUMNUS @ AD (the pending LHR)
            Operation.JOIN,
        ]
        join = iom.rows[-1]
        assert join.lhr == ResultOperand(4)
        assert join.rhr == ResultOperand(3)
        assert join.lha == "ANAME"
