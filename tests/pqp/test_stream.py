"""Unit tests for pipelined chunk streaming (:mod:`repro.pqp.stream`).

Spine detection, chunk-pipeline equivalence against whole-relation
execution (rows, order, tags, intermediate results, lineage), and the
fallback behaviour for plans that cannot stream.
"""

import threading

import pytest

from repro.core.predicate import AttributeRef, Literal, Theta
from repro.datasets.paper import (
    paper_databases,
    paper_identity_resolver,
    paper_polygen_schema,
)
from repro.errors import QueryCancelledError
from repro.lqp.registry import LQPRegistry
from repro.lqp.relational_lqp import RelationalLQP
from repro.pqp.executor import Executor
from repro.pqp.matrix import (
    IntermediateOperationMatrix,
    LocalOperand,
    MatrixRow,
    Operation,
    ResultOperand,
)
from repro.pqp.runtime import ConcurrentExecutor
from repro.pqp.stream import streamable_spine
from repro.storage.tag_pool import TagPool


def iom(*rows):
    return IntermediateOperationMatrix(rows)


def retrieve(index, relation, database, scheme):
    return MatrixRow(
        result=ResultOperand(index),
        op=Operation.RETRIEVE,
        lhr=LocalOperand(relation),
        el=database,
        scheme=scheme,
    )


def pqp_select(index, source, attribute, value):
    return MatrixRow(
        result=ResultOperand(index),
        op=Operation.SELECT,
        lhr=ResultOperand(source),
        lha=attribute,
        theta=Theta.EQ,
        rha=Literal(value),
    )


def pqp_project(index, source, attributes):
    return MatrixRow(
        result=ResultOperand(index),
        op=Operation.PROJECT,
        lhr=ResultOperand(source),
        lha=tuple(attributes),
    )


def spine_plan():
    return iom(
        retrieve(1, "ALUMNUS", "AD", "PALUMNUS"),
        pqp_select(2, 1, "DEGREE", "MBA"),
        pqp_project(3, 2, ("ANAME", "MAJOR")),
    )


def join_plan():
    from repro.pqp.matrix import PQP_LOCATION

    return iom(
        retrieve(1, "ALUMNUS", "AD", "PALUMNUS"),
        retrieve(2, "ALUMNUS", "AD", "PALUMNUS"),
        MatrixRow(
            result=ResultOperand(3),
            op=Operation.MERGE,
            lhr=(ResultOperand(1), ResultOperand(2)),
            el=PQP_LOCATION,
            scheme="PALUMNUS",
        ),
    )


def make_executor(concurrent=False, pool=None):
    registry = LQPRegistry()
    for database in paper_databases().values():
        registry.register(RelationalLQP(database))
    cls = ConcurrentExecutor if concurrent else Executor
    return cls(
        paper_polygen_schema(),
        registry,
        resolver=paper_identity_resolver(),
        tag_pool=pool or TagPool(),
    )


class TestSpineDetection:
    def test_retrieve_select_project_chain_streams(self):
        assert streamable_spine(spine_plan()) is not None

    def test_local_literal_select_head_streams(self):
        plan = iom(
            MatrixRow(
                result=ResultOperand(1),
                op=Operation.SELECT,
                lhr=LocalOperand("ALUMNUS"),
                lha="DEG",
                theta=Theta.EQ,
                rha=Literal("MBA"),
                el="AD",
                scheme="PALUMNUS",
            ),
            pqp_project(2, 1, ("ANAME",)),
        )
        assert streamable_spine(plan) is not None

    def test_join_plan_does_not_stream(self):
        assert streamable_spine(join_plan()) is None

    def test_restrict_against_attribute_streams(self):
        plan = iom(
            retrieve(1, "ALUMNUS", "AD", "PALUMNUS"),
            MatrixRow(
                result=ResultOperand(2),
                op=Operation.RESTRICT,
                lhr=ResultOperand(1),
                lha="ANAME",
                theta=Theta.NE,
                rha="MAJOR",
            ),
        )
        assert streamable_spine(plan) is not None

    def test_sharded_head_does_not_stream(self):
        head = retrieve(1, "ALUMNUS", "AD", "PALUMNUS")
        import dataclasses

        plan = iom(
            dataclasses.replace(head, shard=(0, 2)),
            pqp_project(2, 1, ("ANAME",)),
        )
        assert streamable_spine(plan) is None

    def test_single_retrieve_streams(self):
        assert streamable_spine(iom(retrieve(1, "ALUMNUS", "AD", "PALUMNUS"))) is not None


@pytest.mark.parametrize("concurrent", [False, True], ids=["serial", "concurrent"])
@pytest.mark.parametrize("chunk_size", [1, 2, 1000])
class TestStreamedEquivalence:
    def test_trace_matches_whole_relation_execution(self, concurrent, chunk_size):
        plan = spine_plan()
        baseline = make_executor().execute(plan)
        chunks = []
        trace = make_executor(concurrent=concurrent).execute(
            plan, on_chunk=chunks.append, stream_chunk_size=chunk_size
        )
        assert trace.relation.attributes == baseline.relation.attributes
        assert [
            (tuple(c.datum for c in row), tuple((c.origins, c.intermediates) for c in row))
            for row in trace.relation.tuples
        ] == [
            (tuple(c.datum for c in row), tuple((c.origins, c.intermediates) for c in row))
            for row in baseline.relation.tuples
        ]
        # Streamed chunks concatenate to exactly the final relation.
        streamed = [row for chunk in chunks for row in chunk.tuples]
        assert [tuple(c.datum for c in row) for row in streamed] == [
            tuple(c.datum for c in row) for row in trace.relation.tuples
        ]
        # Intermediate results and lineages cover every plan row.
        assert set(trace.results) == {1, 2, 3}
        assert set(trace.lineages) == {1, 2, 3}
        assert trace.results[1].cardinality == baseline.results[1].cardinality
        assert trace.lineage == baseline.lineage

    def test_multiple_chunks_arrive_for_small_chunk_size(self, concurrent, chunk_size):
        if chunk_size >= 1000:
            pytest.skip("single-chunk configuration")
        chunks = []
        make_executor(concurrent=concurrent).execute(
            spine_plan(), on_chunk=chunks.append, stream_chunk_size=chunk_size
        )
        assert len(chunks) > 1


class TestFallback:
    def test_join_plan_ignores_on_chunk(self):
        chunks = []
        trace = make_executor().execute(join_plan(), on_chunk=chunks.append)
        assert chunks == []
        assert trace.relation.cardinality > 0

    def test_no_hook_takes_the_ordinary_path(self):
        trace = make_executor().execute(spine_plan())
        assert trace.relation.cardinality == 5

    def test_empty_stream_still_yields_heading(self):
        plan = iom(
            MatrixRow(
                result=ResultOperand(1),
                op=Operation.SELECT,
                lhr=LocalOperand("ALUMNUS"),
                lha="DEG",
                theta=Theta.EQ,
                rha=Literal("NO-SUCH-DEGREE"),
                el="AD",
                scheme="PALUMNUS",
            ),
            pqp_project(2, 1, ("ANAME",)),
        )
        chunks = []
        trace = make_executor().execute(plan, on_chunk=chunks.append)
        assert trace.relation.cardinality == 0
        assert trace.relation.attributes == ("ANAME",)
        assert chunks == []  # empty batches are not delivered

    def test_cancelled_stream_raises(self):
        cancel = threading.Event()
        cancel.set()
        with pytest.raises(QueryCancelledError):
            make_executor().execute(
                spine_plan(), on_chunk=lambda _: None, cancel=cancel
            )
