"""Unit tests for operation matrices and their rows."""

import pytest

from repro.core.predicate import Literal, Theta
from repro.pqp.matrix import (
    PQP_LOCATION,
    IntermediateOperationMatrix,
    LocalOperand,
    MatrixRow,
    Operation,
    PolygenOperationMatrix,
    ResultOperand,
    SchemeOperand,
)


def row(index, op=Operation.SELECT, **kwargs):
    defaults = dict(lhr=SchemeOperand("P"), lha="A", theta=Theta.EQ, rha=Literal("x"))
    defaults.update(kwargs)
    return MatrixRow(result=ResultOperand(index), op=op, **defaults)


class TestOperands:
    def test_rendering(self):
        assert str(SchemeOperand("PALUMNUS")) == "PALUMNUS"
        assert str(LocalOperand("ALUMNUS")) == "ALUMNUS"
        assert str(ResultOperand(3)) == "R(3)"


class TestMatrixRow:
    def test_is_local(self):
        assert row(1, el="AD").is_local
        assert not row(1, el=PQP_LOCATION).is_local
        assert not row(1).is_local

    def test_referenced_results_single(self):
        r = row(1, lhr=ResultOperand(5), rhr=ResultOperand(2))
        assert [ref.index for ref in r.referenced_results()] == [5, 2]

    def test_referenced_results_merge_tuple(self):
        r = row(
            4,
            op=Operation.MERGE,
            lhr=(ResultOperand(1), ResultOperand(2), ResultOperand(3)),
            lha=None,
            theta=None,
            rha=None,
        )
        assert [ref.index for ref in r.referenced_results()] == [1, 2, 3]

    def test_remap_results(self):
        r = row(4, lhr=ResultOperand(2), rhr=ResultOperand(3))
        remapped = r.with_remapped_results({2: 1, 3: 2, 4: 3})
        assert remapped.result.index == 3
        assert remapped.lhr.index == 1
        assert remapped.rhr.index == 2

    def test_remap_leaves_non_results(self):
        r = row(1, lhr=LocalOperand("ALUMNUS"))
        assert r.with_remapped_results({1: 7}).lhr == LocalOperand("ALUMNUS")

    def test_cells_rendering(self):
        r = row(1, el="AD")
        assert r.cells(with_el=True) == (
            "R(1)", "Select", "P", "A", "=", '"x"', "nil", "AD",
        )

    def test_project_lha_renders_as_list(self):
        r = row(
            1, op=Operation.PROJECT, lha=("ONAME", "CEO"), theta=None, rha=None
        )
        assert r.cells(with_el=False)[3] == "ONAME, CEO"


class TestMatrices:
    def test_append_and_lookup(self):
        pom = PolygenOperationMatrix()
        first = pom.append(row(1))
        assert pom.row_for(ResultOperand(1)) is first
        assert len(pom) == 1
        assert pom[0] is first

    def test_render_contains_headers_and_rows(self):
        pom = PolygenOperationMatrix([row(1)])
        text = pom.render()
        assert "PR" in text and "LHR" in text
        assert "R(1)" in text

    def test_iom_partitions_rows(self):
        iom = IntermediateOperationMatrix(
            [
                row(1, op=Operation.RETRIEVE, lhr=LocalOperand("T"),
                    lha=None, theta=None, rha=None, el="AD"),
                row(2, lhr=ResultOperand(1), el=PQP_LOCATION),
            ]
        )
        assert len(iom.local_rows()) == 1
        assert len(iom.pqp_rows()) == 1
        assert iom.databases_touched() == ("AD",)
