"""Unit tests for the Query Optimizer's plan rewrites."""

import pytest

from repro.algebra_lang import parse_expression
from repro.datasets.paper import build_paper_federation, paper_polygen_schema
from repro.pqp.interpreter import PolygenOperationInterpreter
from repro.pqp.matrix import Operation
from repro.pqp.optimizer import QueryOptimizer
from repro.pqp.syntax_analyzer import SyntaxAnalyzer

#: A query referencing PORGANIZATION twice: the naive plan retrieves
#: BUSINESS/CORPORATION/FIRM twice and merges twice.
SELF_UNION = (
    '((PORGANIZATION [INDUSTRY = "Banking"]) [ONAME, INDUSTRY]) UNION '
    '((PORGANIZATION [INDUSTRY = "Hotel"]) [ONAME, INDUSTRY])'
)


def plan(text):
    pom = SyntaxAnalyzer().analyze(parse_expression(text))
    return PolygenOperationInterpreter(paper_polygen_schema()).interpret(pom)


class TestDeduplication:
    def test_duplicate_retrieves_collapse(self):
        iom = plan(SELF_UNION)
        optimized, report = QueryOptimizer().optimize(iom)
        retrieves = [row for row in optimized if row.op is Operation.RETRIEVE]
        naive_retrieves = [row for row in iom if row.op is Operation.RETRIEVE]
        assert len(naive_retrieves) == 4  # BUSINESS, CORPORATION twice each
        assert len(retrieves) == 2
        assert report.retrieves_deduplicated == 2

    def test_duplicate_merges_collapse(self):
        iom = plan(SELF_UNION)
        optimized, report = QueryOptimizer().optimize(iom)
        merges = [row for row in optimized if row.op is Operation.MERGE]
        assert len(merges) == 1
        assert report.merges_deduplicated == 1

    def test_rows_pruned_and_renumbered(self):
        iom = plan(SELF_UNION)
        optimized, report = QueryOptimizer().optimize(iom)
        assert report.rows_saved == report.retrieves_deduplicated + report.merges_deduplicated
        # Renumbering leaves a dense 1..n sequence.
        assert [row.result.index for row in optimized] == list(
            range(1, len(optimized) + 1)
        )

    def test_paper_plan_is_already_optimal(self):
        from tests.integration.conftest import PAPER_ALGEBRA

        iom = plan(PAPER_ALGEBRA)
        optimized, report = QueryOptimizer().optimize(iom)
        assert report.rows_saved == 0
        assert [row.cells(True) for row in optimized] == [row.cells(True) for row in iom]

    def test_optimizer_is_idempotent(self):
        iom = plan(SELF_UNION)
        once, _ = QueryOptimizer().optimize(iom)
        twice, report = QueryOptimizer().optimize(once)
        assert [row.cells(True) for row in twice] == [row.cells(True) for row in once]
        assert report.rows_saved == 0


class TestSemanticsPreserved:
    def test_optimized_plan_gives_same_relation_and_tags(self):
        pqp_naive = build_paper_federation()
        pqp_naive._optimizer = None  # disable optimization
        pqp_opt = build_paper_federation()
        naive = pqp_naive.run_algebra(SELF_UNION)
        optimized = pqp_opt.run_algebra(SELF_UNION)
        assert naive.relation == optimized.relation

    def test_optimized_plan_ships_fewer_tuples(self):
        pqp_naive = build_paper_federation()
        pqp_naive._optimizer = None
        pqp_opt = build_paper_federation()
        pqp_naive.run_algebra(SELF_UNION)
        pqp_opt.run_algebra(SELF_UNION)
        naive_stats = pqp_naive.registry.total_stats()
        optimized_stats = pqp_opt.registry.total_stats()
        assert optimized_stats.queries < naive_stats.queries
        assert optimized_stats.tuples_shipped < naive_stats.tuples_shipped
