"""Unit tests for the Query Optimizer's plan rewrites."""

import pytest

from repro.algebra_lang import parse_expression
from repro.core.predicate import Literal, Theta
from repro.datasets.paper import (
    build_paper_federation,
    paper_identity_resolver,
    paper_polygen_schema,
)
from repro.pqp.interpreter import PolygenOperationInterpreter
from repro.pqp.matrix import (
    IntermediateOperationMatrix,
    LocalOperand,
    MatrixRow,
    Operation,
    ResultOperand,
)
from repro.pqp.optimizer import QueryOptimizer
from repro.pqp.syntax_analyzer import SyntaxAnalyzer

#: A query referencing PORGANIZATION twice: the naive plan retrieves
#: BUSINESS/CORPORATION/FIRM twice and merges twice.
SELF_UNION = (
    '((PORGANIZATION [INDUSTRY = "Banking"]) [ONAME, INDUSTRY]) UNION '
    '((PORGANIZATION [INDUSTRY = "Hotel"]) [ONAME, INDUSTRY])'
)


def plan(text):
    pom = SyntaxAnalyzer().analyze(parse_expression(text))
    return PolygenOperationInterpreter(paper_polygen_schema()).interpret(pom)


class TestDeduplication:
    def test_duplicate_retrieves_collapse(self):
        iom = plan(SELF_UNION)
        optimized, report = QueryOptimizer().optimize(iom)
        retrieves = [row for row in optimized if row.op is Operation.RETRIEVE]
        naive_retrieves = [row for row in iom if row.op is Operation.RETRIEVE]
        assert len(naive_retrieves) == 4  # BUSINESS, CORPORATION twice each
        assert len(retrieves) == 2
        assert report.retrieves_deduplicated == 2

    def test_duplicate_merges_collapse(self):
        iom = plan(SELF_UNION)
        optimized, report = QueryOptimizer().optimize(iom)
        merges = [row for row in optimized if row.op is Operation.MERGE]
        assert len(merges) == 1
        assert report.merges_deduplicated == 1

    def test_rows_pruned_and_renumbered(self):
        iom = plan(SELF_UNION)
        optimized, report = QueryOptimizer().optimize(iom)
        assert report.rows_saved == report.retrieves_deduplicated + report.merges_deduplicated
        # Renumbering leaves a dense 1..n sequence.
        assert [row.result.index for row in optimized] == list(
            range(1, len(optimized) + 1)
        )

    def test_paper_plan_is_already_optimal(self):
        from tests.integration.conftest import PAPER_ALGEBRA

        iom = plan(PAPER_ALGEBRA)
        optimized, report = QueryOptimizer().optimize(iom)
        assert report.rows_saved == 0
        assert [row.cells(True) for row in optimized] == [row.cells(True) for row in iom]

    def test_optimizer_is_idempotent(self):
        iom = plan(SELF_UNION)
        once, _ = QueryOptimizer().optimize(iom)
        twice, report = QueryOptimizer().optimize(once)
        assert [row.cells(True) for row in twice] == [row.cells(True) for row in once]
        assert report.rows_saved == 0


class TestSemanticsPreserved:
    def test_optimized_plan_gives_same_relation_and_tags(self):
        pqp_naive = build_paper_federation()
        pqp_naive._optimizer = None  # disable optimization
        pqp_opt = build_paper_federation()
        naive = pqp_naive.run_algebra(SELF_UNION)
        optimized = pqp_opt.run_algebra(SELF_UNION)
        assert naive.relation == optimized.relation

    def test_optimized_plan_ships_fewer_tuples(self):
        pqp_naive = build_paper_federation()
        pqp_naive._optimizer = None
        pqp_opt = build_paper_federation()
        pqp_naive.run_algebra(SELF_UNION)
        pqp_opt.run_algebra(SELF_UNION)
        naive_stats = pqp_naive.registry.total_stats()
        optimized_stats = pqp_opt.registry.total_stats()
        assert optimized_stats.queries < naive_stats.queries
        assert optimized_stats.tuples_shipped < naive_stats.tuples_shipped


def _naive_select_plan(relation, database, scheme, attribute, theta, value, tail=()):
    """Retrieve-then-PQP-Select — the shape a planner without local routing
    emits, and the input shape of selection pushdown."""
    rows = [
        MatrixRow(
            result=ResultOperand(1),
            op=Operation.RETRIEVE,
            lhr=LocalOperand(relation),
            el=database,
            scheme=scheme,
        ),
        MatrixRow(
            result=ResultOperand(2),
            op=Operation.SELECT,
            lhr=ResultOperand(1),
            lha=attribute,
            theta=theta,
            rha=Literal(value),
            el="PQP",
        ),
    ]
    rows.extend(tail)
    return IntermediateOperationMatrix(rows)


def _schema_optimizer(**kwargs) -> QueryOptimizer:
    return QueryOptimizer(
        schema=paper_polygen_schema(),
        resolver=paper_identity_resolver(),
        **kwargs,
    )


class TestSelectionPushdown:
    def test_select_over_retrieve_becomes_local_select(self):
        iom = _naive_select_plan("ALUMNUS", "AD", "PALUMNUS", "DEGREE", Theta.EQ, "MBA")
        optimized, report = _schema_optimizer().optimize(iom)
        assert report.selects_pushed_down == 1
        assert report.rows_pruned == 1  # the orphaned Retrieve
        assert len(optimized) == 1
        pushed = optimized[0]
        assert pushed.op is Operation.SELECT
        assert pushed.el == "AD"
        assert pushed.lhr == LocalOperand("ALUMNUS")
        assert pushed.lha == "DEG"  # rewritten to the local attribute
        assert pushed.rha == Literal("MBA")

    def test_shared_retrieve_blocks_pushdown(self):
        tail = (
            MatrixRow(
                result=ResultOperand(3),
                op=Operation.PROJECT,
                lhr=ResultOperand(1),
                lha=("ANAME",),
                el="PQP",
            ),
            MatrixRow(
                result=ResultOperand(4),
                op=Operation.UNION,
                lhr=ResultOperand(2),
                rhr=ResultOperand(3),
                el="PQP",
            ),
        )
        # Nonsense query, but structurally: R(1) has a second consumer, so
        # the Retrieve must still run — pushing the selection would ADD a
        # local round-trip and ship strictly more tuples.
        iom = _naive_select_plan("ALUMNUS", "AD", "PALUMNUS", "DEGREE", Theta.EQ, "MBA", tail)
        optimized, report = _schema_optimizer().optimize(iom)
        assert report.selects_pushed_down == 0
        assert any(row.op is Operation.RETRIEVE for row in optimized)

    def test_executes_identically_and_ships_fewer_tuples(self):
        iom = _naive_select_plan("ALUMNUS", "AD", "PALUMNUS", "DEGREE", Theta.EQ, "MBA")
        naive_pqp = build_paper_federation()
        naive = naive_pqp.run_plan(iom)
        pushed_pqp = build_paper_federation()
        optimized, _ = pushed_pqp.optimize(iom)
        pushed = pushed_pqp.run_plan(optimized)
        assert pushed.relation == naive.relation
        assert (
            pushed_pqp.registry.total_stats().tuples_shipped
            < naive_pqp.registry.total_stats().tuples_shipped
        )

    def test_ordering_comparison_pushes_with_identity_resolver(self):
        iom = _naive_select_plan("STUDENT", "PD", "PSTUDENT", "GPA", Theta.GT, 3.4)
        optimized, report = QueryOptimizer(schema=paper_polygen_schema()).optimize(iom)
        assert report.selects_pushed_down == 1
        assert optimized[0].el == "PD"

    def test_blocked_by_aliased_literal(self):
        # "CitiCorp" resolves to "Citicorp": raw-value equality differs
        # from resolved equality, so the selection must stay at the PQP.
        iom = _naive_select_plan("CAREER", "AD", "PCAREER", "ONAME", Theta.EQ, "CitiCorp")
        _, report = _schema_optimizer().optimize(iom)
        assert report.selects_pushed_down == 0
        canonical = _naive_select_plan("CAREER", "AD", "PCAREER", "ONAME", Theta.EQ, "Citicorp")
        _, report = _schema_optimizer().optimize(canonical)
        assert report.selects_pushed_down == 0  # variants map onto it

    def test_blocked_by_ordering_under_nonidentity_resolver(self):
        iom = _naive_select_plan("STUDENT", "PD", "PSTUDENT", "GPA", Theta.GT, 3.4)
        _, report = _schema_optimizer().optimize(iom)
        assert report.selects_pushed_down == 0

    def test_blocked_by_domain_transform(self):
        # FIRM.HQ carries the city_state_to_state transform: raw values are
        # "NY, NY", polygen values are "NY" — not comparable locally.
        iom = _naive_select_plan("FIRM", "CD", "PORGANIZATION", "HEADQUARTERS", Theta.EQ, "NY")
        _, report = _schema_optimizer().optimize(iom)
        assert report.selects_pushed_down == 0

    def test_unaliased_equality_pushes_under_paper_resolver(self):
        iom = _naive_select_plan("CAREER", "AD", "PCAREER", "ONAME", Theta.EQ, "MIT")
        _, report = _schema_optimizer().optimize(iom)
        assert report.selects_pushed_down == 1

    def test_no_schema_no_pushdown(self):
        iom = _naive_select_plan("ALUMNUS", "AD", "PALUMNUS", "DEGREE", Theta.EQ, "MBA")
        _, report = QueryOptimizer().optimize(iom)
        assert report.selects_pushed_down == 0

    def test_pushdown_is_idempotent(self):
        iom = _naive_select_plan("ALUMNUS", "AD", "PALUMNUS", "DEGREE", Theta.EQ, "MBA")
        once, _ = _schema_optimizer().optimize(iom)
        twice, report = _schema_optimizer().optimize(once)
        assert report.selects_pushed_down == 0
        assert [row.cells(True) for row in twice] == [row.cells(True) for row in once]


class TestThroughMergeReplication:
    #: A primary-key selection directly over PORGANIZATION's 3-branch Merge.
    KEY_SELECT = 'PORGANIZATION [ONAME = "IBM"]'

    def test_key_select_replicates_and_composes_with_pushdown(self):
        iom = plan(self.KEY_SELECT)
        optimized, report = _schema_optimizer().optimize(iom)
        assert report.selects_pushed_through_merge == 1
        # The replicated branch selections then push into each autonomous
        # database: the plan ends as 3 local Selects feeding the Merge.
        assert report.selects_pushed_down == 3
        selects = [row for row in optimized if row.op is Operation.SELECT]
        assert len(selects) == 3 and all(row.is_local for row in selects)
        assert not any(row.op is Operation.RETRIEVE for row in optimized)
        merge = next(row for row in optimized if row.op is Operation.MERGE)
        assert merge.lhr == tuple(row.result for row in selects)

    def test_non_key_attribute_blocked(self):
        iom = plan('PORGANIZATION [INDUSTRY = "Banking"]')
        _, report = _schema_optimizer().optimize(iom)
        assert report.selects_pushed_through_merge == 0

    def test_shared_merge_blocked(self):
        # After merge dedup the single Merge has two consumers; replicating
        # for one of them would recompute the Merge for the other.
        shared = (
            f"({self.KEY_SELECT}) UNION "
            '(PORGANIZATION [ONAME = "DEC"])'
        )
        iom = plan(shared)
        _, report = _schema_optimizer().optimize(iom)
        assert report.merges_deduplicated == 1
        assert report.selects_pushed_through_merge == 0

    def test_no_schema_or_no_pushdown_blocked(self):
        iom = plan(self.KEY_SELECT)
        _, report = QueryOptimizer().optimize(iom)
        assert report.selects_pushed_through_merge == 0
        _, report = _schema_optimizer(pushdown=False).optimize(iom)
        assert report.selects_pushed_through_merge == 0

    def test_result_and_tags_identical_and_ships_fewer_tuples(self):
        naive_pqp = build_paper_federation()
        naive_pqp._optimizer = None
        opt_pqp = build_paper_federation()
        naive = naive_pqp.run_algebra(self.KEY_SELECT)
        optimized = opt_pqp.run_algebra(self.KEY_SELECT)
        assert optimized.relation == naive.relation
        assert optimized.lineage == naive.lineage
        assert (
            opt_pqp.registry.total_stats().tuples_shipped
            < naive_pqp.registry.total_stats().tuples_shipped
        )

    def test_replication_is_idempotent(self):
        iom = plan(self.KEY_SELECT)
        once, _ = _schema_optimizer().optimize(iom)
        twice, report = _schema_optimizer().optimize(once)
        assert report.selects_pushed_through_merge == 0
        assert [row.cells(True) for row in twice] == [row.cells(True) for row in once]


class TestProjectionPruning:
    def _optimizer(self):
        return _schema_optimizer(prune_projections=True)

    def test_dead_attributes_pruned_on_paper_plan(self):
        from tests.integration.conftest import PAPER_ALGEBRA

        iom = plan(PAPER_ALGEBRA)
        optimized, report = self._optimizer().optimize(iom)
        # R(1) Select ALUMNUS: DEGREE (already applied locally) and MAJOR
        # are never consumed; R(2) Retrieve CAREER: POSITION is dead.
        assert report.attributes_pruned == 3
        assert optimized[0].project == ("AID#", "ANAME")
        assert optimized[1].project == ("AID#", "ONAME")

    def test_merge_inputs_never_pruned(self):
        from tests.integration.conftest import PAPER_ALGEBRA

        iom = plan(PAPER_ALGEBRA)
        optimized, _ = self._optimizer().optimize(iom)
        for row in optimized:
            if row.op is Operation.RETRIEVE and row.lhr.relation in (
                "BUSINESS",
                "CORPORATION",
                "FIRM",
            ):
                assert row.project is None

    def test_final_result_identical_with_narrower_intermediates(self):
        from tests.integration.conftest import PAPER_ALGEBRA

        baseline = build_paper_federation()
        pruned = build_paper_federation()
        pruned._optimizer = self._optimizer()
        base_run = baseline.run_algebra(PAPER_ALGEBRA)
        pruned_run = pruned.run_algebra(PAPER_ALGEBRA)
        assert pruned_run.relation == base_run.relation
        assert pruned_run.lineage == base_run.lineage
        r1 = pruned_run.trace.result(1)
        assert r1.attributes == ("AID#", "ANAME")
        assert base_run.trace.result(1).attributes == (
            "AID#",
            "ANAME",
            "DEGREE",
            "MAJOR",
        )

    def test_pruning_is_idempotent(self):
        from tests.integration.conftest import PAPER_ALGEBRA

        iom = plan(PAPER_ALGEBRA)
        once, _ = self._optimizer().optimize(iom)
        twice, report = self._optimizer().optimize(once)
        assert report.attributes_pruned == 0
        assert [
            (row.cells(True), row.project) for row in twice
        ] == [(row.cells(True), row.project) for row in once]

    def test_disabled_by_default(self):
        from tests.integration.conftest import PAPER_ALGEBRA

        iom = plan(PAPER_ALGEBRA)
        _, report = _schema_optimizer().optimize(iom)
        assert report.attributes_pruned == 0
