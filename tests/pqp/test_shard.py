"""Unit tests for the scan-sharding pass (``repro.pqp.shard``)."""

import pytest

from repro.catalog.mapping import AttributeMapping
from repro.catalog.schema import PolygenSchema
from repro.catalog.scheme import PolygenScheme
from repro.core.predicate import Literal, Theta
from repro.lqp.registry import LQPRegistry
from repro.lqp.relational_lqp import RelationalLQP
from repro.pqp.matrix import (
    PQP_LOCATION,
    IntermediateOperationMatrix,
    LocalOperand,
    MatrixRow,
    Operation,
    ResultOperand,
)
from repro.pqp.shard import ShardReport, shard_retrieves
from repro.relational.database import LocalDatabase
from repro.relational.schema import RelationSchema


def make_registry(rows=200, attributes=("ID", "NAME"), key=("ID",), data=None):
    db = LocalDatabase("AD")
    if data is None:
        data = [(i, f"name-{i}") for i in range(rows)]
    db.load(RelationSchema("EMP", list(attributes), key=list(key)), data)
    registry = LQPRegistry()
    registry.register(RelationalLQP(db))
    return registry


def retrieve_plan(tail=()):
    rows = [
        MatrixRow(
            result=ResultOperand(1),
            op=Operation.RETRIEVE,
            lhr=LocalOperand("EMP"),
            el="AD",
            scheme="PEMP",
        )
    ]
    rows.extend(tail)
    return IntermediateOperationMatrix(rows)


class TestQualification:
    def test_invalid_width_rejected(self):
        registry = make_registry()
        for width in (1, 0, -3, "four"):
            with pytest.raises(ValueError):
                shard_retrieves(retrieve_plan(), registry, width=width)

    def test_auto_respects_native_concurrency(self):
        # An in-process engine advertises native_concurrency == 1: the
        # paper's one-connection-per-database assumption.  No split.
        registry = make_registry()
        out, report = shard_retrieves(
            retrieve_plan(), registry, width="auto", min_tuples=1
        )
        assert report.retrieves_sharded == 0
        assert out is retrieve_plan() or list(out) == list(retrieve_plan())

    def test_auto_widens_with_concurrent_lqp(self):
        registry = make_registry()
        registry.get("AD").inner.native_concurrency = 3
        _, report = shard_retrieves(
            retrieve_plan(), registry, width="auto", min_tuples=1
        )
        assert report.retrieves_sharded == 1
        assert report.families[0][3] == 3

    def test_small_relation_not_worth_it(self):
        registry = make_registry(rows=10)
        out, report = shard_retrieves(retrieve_plan(), registry, width=4)
        assert report.retrieves_sharded == 0
        assert out is not None and len(out) == 1

    def test_statless_source_passes_through(self):
        registry = make_registry()
        lqp = registry.get("AD").inner
        lqp.relation_stats = lambda relation_name: None
        _, report = shard_retrieves(retrieve_plan(), registry, width=4)
        assert report.retrieves_sharded == 0

    def test_no_splittable_column(self):
        registry = make_registry(
            attributes=("CODE", "NAME"),
            key=("CODE",),
            data=[(f"c{i}", f"n{i}") for i in range(100)],
        )
        _, report = shard_retrieves(retrieve_plan(), registry, width=4, min_tuples=1)
        assert report.retrieves_sharded == 0

    def test_domain_too_narrow_to_cut(self):
        registry = make_registry(
            key=("NAME",), data=[(i % 2, f"n{i}") for i in range(100)]
        )
        _, report = shard_retrieves(retrieve_plan(), registry, width=4, min_tuples=1)
        assert report.retrieves_sharded == 0

    def test_unregistered_database_untouched(self):
        registry = make_registry()
        plan = IntermediateOperationMatrix(
            [
                MatrixRow(
                    result=ResultOperand(1),
                    op=Operation.RETRIEVE,
                    lhr=LocalOperand("EMP"),
                    el="XD",
                )
            ]
        )
        _, report = shard_retrieves(plan, registry, width=4, min_tuples=1)
        assert report.retrieves_sharded == 0


class TestFamilyStructure:
    def _shard(self, width=4, tail=()):
        registry = make_registry()
        return shard_retrieves(
            retrieve_plan(tail), registry, width=width, min_tuples=1
        )

    def test_emits_k_ranges_plus_union(self):
        out, report = self._shard(width=4)
        ranges = [row for row in out if row.op is Operation.RETRIEVE_RANGE]
        unions = [row for row in out if row.op is Operation.UNION]
        assert len(ranges) == 4 and len(unions) == 1
        assert report == ShardReport(
            retrieves_sharded=1,
            shards_emitted=4,
            families=(("AD", "EMP", "ID", 4),),
        )

    def test_intervals_partition_the_key_line(self):
        out, _ = self._shard(width=4)
        ranges = [row.key_range for row in out if row.op is Operation.RETRIEVE_RANGE]
        # Unbounded at both ends, half-open and contiguous in between.
        assert ranges[0].lower is None and ranges[-1].upper is None
        for left, right in zip(ranges, ranges[1:]):
            assert left.upper == right.lower
        # Exactly the first shard owns nil / non-comparable keys.
        assert [r.include_nil for r in ranges] == [True, False, False, False]

    def test_shard_rows_keep_provenance(self):
        out, _ = self._shard(width=4)
        for i, row in enumerate(r for r in out if r.op is Operation.RETRIEVE_RANGE):
            assert row.el == "AD"
            assert row.lhr == LocalOperand("EMP")
            assert row.scheme == "PEMP"
            assert row.shard == (i, 4)

    def test_union_reassembles_at_pqp(self):
        out, _ = self._shard(width=4)
        union = next(row for row in out if row.op is Operation.UNION)
        assert union.el == PQP_LOCATION
        assert union.scheme == "PEMP"
        assert union.lhr == tuple(ResultOperand(i) for i in range(1, 5))

    def test_downstream_consumers_remapped(self):
        tail = (
            MatrixRow(
                result=ResultOperand(2),
                op=Operation.PROJECT,
                lhr=ResultOperand(1),
                lha=("ID",),
                el=PQP_LOCATION,
            ),
        )
        out, _ = self._shard(width=4, tail=tail)
        project = next(row for row in out if row.op is Operation.PROJECT)
        union = next(row for row in out if row.op is Operation.UNION)
        assert project.lhr == union.result
        assert [row.result.index for row in out] == list(range(1, len(out) + 1))

    def test_narrow_integer_domain_shrinks_k(self):
        # Keys 0..2 cannot support 4 distinct integer cuts: the family
        # shrinks rather than emitting duplicate intervals.
        registry = make_registry(
            key=("NAME",), data=[(i % 3, f"n{i}") for i in range(100)]
        )
        out, report = shard_retrieves(
            retrieve_plan(), registry, width=4, min_tuples=1
        )
        k = report.families[0][3]
        assert 2 <= k < 4
        assert sum(row.op is Operation.RETRIEVE_RANGE for row in out) == k

    def test_report_render(self):
        _, report = self._shard(width=4)
        text = report.render()
        assert "AD.EMP on ID, 4 shards" in text
        assert ShardReport().render() == "sharding: no local operation qualified"


def select_plan():
    """A pushed-down local Select, as the optimizer's push-down emits it."""
    return IntermediateOperationMatrix(
        [
            MatrixRow(
                result=ResultOperand(1),
                op=Operation.SELECT,
                lhr=LocalOperand("EMP"),
                lha="NAME",
                theta=Theta.NE,
                rha=Literal("name-0"),
                el="AD",
                scheme="PEMP",
                consulted=("AD",),
            )
        ]
    )


class TestSelectSharding:
    def test_pushed_down_select_qualifies(self):
        registry = make_registry()
        out, report = shard_retrieves(
            select_plan(), registry, width=4, min_tuples=1
        )
        assert report.retrieves_sharded == 1
        selects = [row for row in out if row.op is Operation.SELECT]
        assert len(selects) == 4
        # Each family member keeps the predicate and gains a key interval.
        for i, row in enumerate(selects):
            assert row.theta is Theta.NE and row.rha == Literal("name-0")
            assert row.key_range is not None and row.key_range.attribute == "ID"
            assert row.shard == (i, 4)
            assert row.consulted == ("AD",)
        union = next(row for row in out if row.op is Operation.UNION)
        assert union.el == PQP_LOCATION
        assert union.lhr == tuple(row.result for row in selects)

    def test_select_family_partitions_the_selection(self):
        registry = make_registry()
        out, _ = shard_retrieves(select_plan(), registry, width=4, min_tuples=1)
        lqp = registry.get("AD")
        whole = lqp.select("EMP", "NAME", Theta.NE, "name-0")
        pieces = []
        for row in out:
            if row.op is Operation.SELECT:
                kr = row.key_range
                pieces.extend(
                    lqp.select_range(
                        "EMP", "NAME", Theta.NE, "name-0",
                        kr.attribute,
                        lower=kr.lower,
                        upper=kr.upper,
                        include_nil=kr.include_nil,
                    ).rows
                )
        assert sorted(pieces, key=repr) == sorted(whole.rows, key=repr)

    def test_already_sharded_select_not_resharded(self):
        registry = make_registry()
        once, _ = shard_retrieves(select_plan(), registry, width=4, min_tuples=1)
        twice, report = shard_retrieves(once, registry, width=4, min_tuples=1)
        assert report.retrieves_sharded == 0
        assert len(twice) == len(once)


class TestShardKeyChoice:
    def test_prefers_primary_key_column(self):
        # Two splittable columns; SCORE comes first in the heading, but ID
        # maps to the polygen primary key — the Merge hash key wins.
        registry = make_registry(
            attributes=("SCORE", "ID", "NAME"),
            key=("ID",),
            data=[(i * 2, i, f"n{i}") for i in range(100)],
        )
        schema = PolygenSchema(
            [
                PolygenScheme(
                    "PEMP",
                    {
                        "ID": [AttributeMapping("AD", "EMP", "ID")],
                        "SCORE": [AttributeMapping("AD", "EMP", "SCORE")],
                        "NAME": [AttributeMapping("AD", "EMP", "NAME")],
                    },
                    primary_key=["ID"],
                )
            ]
        )
        _, with_schema = shard_retrieves(
            retrieve_plan(), registry, width=4, schema=schema, min_tuples=1
        )
        assert with_schema.families[0][2] == "ID"
        _, without = shard_retrieves(
            retrieve_plan(), registry, width=4, min_tuples=1
        )
        assert without.families[0][2] == "SCORE"


class TestExecutionEquivalence:
    def test_sharded_plan_reproduces_unsharded_rows(self):
        # Cell-for-cell equivalence is property-tested across executors in
        # tests/property/test_sharding.py; this is the cheap smoke check
        # that the family's ranges really partition the relation.
        registry = make_registry(
            key=("NAME",),
            data=[(i if i % 7 else None, f"n{i}") for i in range(150)],
        )
        out, report = shard_retrieves(
            retrieve_plan(), registry, width=4, min_tuples=1
        )
        assert report.retrieves_sharded == 1
        lqp = registry.get("AD")
        whole = lqp.retrieve("EMP")
        pieces = []
        for row in out:
            if row.op is Operation.RETRIEVE_RANGE:
                kr = row.key_range
                pieces.extend(
                    lqp.retrieve_range(
                        "EMP",
                        kr.attribute,
                        lower=kr.lower,
                        upper=kr.upper,
                        include_nil=kr.include_nil,
                    ).rows
                )
        assert sorted(pieces, key=repr) == sorted(whole.rows, key=repr)
