"""Unit tests for the in-house plan DAG."""

import pytest

from repro.core.predicate import Literal, Theta
from repro.errors import ExecutionError
from repro.pqp.matrix import (
    IntermediateOperationMatrix,
    LocalOperand,
    MatrixRow,
    Operation,
    ResultOperand,
)
from repro.pqp.plandag import PlanDAG

from tests.integration.conftest import PAPER_SQL


def _retrieve(index, relation="T", el="AD"):
    return MatrixRow(
        result=ResultOperand(index),
        op=Operation.RETRIEVE,
        lhr=LocalOperand(relation),
        el=el,
        scheme="S",
    )


def _join(index, left, right):
    return MatrixRow(
        result=ResultOperand(index),
        op=Operation.JOIN,
        lhr=ResultOperand(left),
        lha="A",
        theta=Theta.EQ,
        rha="A",
        rhr=ResultOperand(right),
        el="PQP",
    )


@pytest.fixture(scope="module")
def paper_iom():
    from repro.datasets.paper import build_paper_federation

    return build_paper_federation().run_sql(PAPER_SQL).iom


class TestStructure:
    def test_nodes_and_edges(self, paper_iom):
        dag = PlanDAG.from_iom(paper_iom)
        assert len(dag) == len(paper_iom)
        # R(7) (the Merge) consumes R(4), R(5), R(6).
        assert set(dag.predecessors(7)) == {4, 5, 6}
        assert 7 in dag.successors(4)

    def test_roots_and_sinks(self, paper_iom):
        dag = PlanDAG.from_iom(paper_iom)
        assert set(dag.roots()) == {1, 2, 4, 5, 6}
        assert dag.sinks() == (10,)

    def test_unknown_reference_rejected(self):
        iom = IntermediateOperationMatrix([_retrieve(1), _join(2, 1, 9)])
        with pytest.raises(ExecutionError, match="R\\(9\\)"):
            PlanDAG.from_iom(iom)

    def test_duplicate_result_rejected(self):
        iom = IntermediateOperationMatrix([_retrieve(1), _retrieve(1)])
        with pytest.raises(ExecutionError, match="twice"):
            PlanDAG.from_iom(iom)


class TestTopologicalOrder:
    def test_respects_dependencies(self, paper_iom):
        dag = PlanDAG.from_iom(paper_iom)
        order = dag.topological_order()
        position = {index: rank for rank, index in enumerate(order)}
        for index in dag.indices:
            for predecessor in dag.predecessors(index):
                assert position[predecessor] < position[index]

    def test_in_order_plan_keeps_its_numbering(self, paper_iom):
        dag = PlanDAG.from_iom(paper_iom)
        assert dag.topological_order() == tuple(range(1, len(paper_iom) + 1))

    def test_out_of_order_listing_is_handled(self):
        rows = [_join(3, 1, 2), _retrieve(1, "T"), _retrieve(2, "U", el="PD")]
        dag = PlanDAG.from_iom(IntermediateOperationMatrix(rows))
        assert dag.topological_order() == (1, 2, 3)

    def test_cycle_detected(self):
        select_on_self = MatrixRow(
            result=ResultOperand(1),
            op=Operation.SELECT,
            lhr=ResultOperand(2),
            lha="A",
            theta=Theta.EQ,
            rha=Literal("x"),
            el="PQP",
        )
        other = MatrixRow(
            result=ResultOperand(2),
            op=Operation.SELECT,
            lhr=ResultOperand(1),
            lha="A",
            theta=Theta.EQ,
            rha=Literal("x"),
            el="PQP",
        )
        iom = IntermediateOperationMatrix([select_on_self, other])
        with pytest.raises(ExecutionError, match="cycle"):
            PlanDAG.from_iom(iom)


class TestCriticalPath:
    def test_longest_chain_wins(self):
        rows = [
            _retrieve(1, "T", el="AD"),
            _retrieve(2, "U", el="PD"),
            _join(3, 1, 2),
        ]
        dag = PlanDAG.from_iom(IntermediateOperationMatrix(rows))
        length, path = dag.critical_path({1: 5.0, 2: 1.0, 3: 2.0})
        assert length == pytest.approx(7.0)
        assert path == (1, 3)

    def test_matches_schedule_makespan_lower_bound(self, paper_iom):
        from repro.datasets.paper import build_paper_federation
        from repro.pqp.schedule import schedule_plan

        run = build_paper_federation().run_sql(PAPER_SQL)
        schedule = schedule_plan(run.iom, run.trace)
        dag = PlanDAG.from_iom(run.iom)
        costs = {item.row.result.index: item.cost for item in schedule.rows}
        length, _ = dag.critical_path(costs)
        # The critical path ignores resource contention, so it lower-bounds
        # the resource-constrained makespan.
        assert length <= schedule.makespan + 1e-9

    def test_empty(self):
        dag = PlanDAG.from_iom(IntermediateOperationMatrix())
        assert dag.critical_path({}) == (0.0, ())
