"""Unit tests for the plan scheduling simulator and plan-shape ranking."""

import pytest

from repro.datasets.paper import build_paper_federation
from repro.lqp.cost import CostModel
from repro.pqp.matrix import Operation
from repro.pqp.schedule import (
    decompose_merges,
    rank_plan_shapes,
    schedule_plan,
    validate_against_trace,
)

from tests.integration.conftest import PAPER_SQL


@pytest.fixture(scope="module")
def paper_run():
    pqp = build_paper_federation()
    return pqp.run_sql(PAPER_SQL)


class TestScheduling:
    def test_dependencies_respected(self, paper_run):
        schedule = schedule_plan(paper_run.iom, paper_run.trace)
        finish = {item.row.result.index: item.finish for item in schedule.rows}
        for item in schedule.rows:
            for ref in item.row.referenced_results():
                assert item.start >= finish[ref.index]

    def test_same_lqp_rows_serialize(self, paper_run):
        schedule = schedule_plan(paper_run.iom, paper_run.trace)
        ad_rows = sorted(
            (item for item in schedule.rows if item.location == "AD"),
            key=lambda item: item.start,
        )
        for earlier, later in zip(ad_rows, ad_rows[1:]):
            assert later.start >= earlier.finish

    def test_parallelism_beats_serial(self, paper_run):
        # The three merge retrieves hit different databases, so the
        # makespan is strictly below the serial cost.
        schedule = schedule_plan(paper_run.iom, paper_run.trace)
        assert schedule.makespan < schedule.serial_cost
        assert schedule.speedup > 1.0

    def test_critical_path_is_connected_and_ends_last(self, paper_run):
        schedule = schedule_plan(paper_run.iom, paper_run.trace)
        path = schedule.critical_path
        assert path[-1].finish == schedule.makespan
        for earlier, later in zip(path, path[1:]):
            refs = {ref.index for ref in later.row.referenced_results()}
            assert earlier.row.result.index in refs

    def test_trace_tuple_counts_drive_costs(self, paper_run):
        cheap = schedule_plan(
            paper_run.iom,
            paper_run.trace,
            default_cost=CostModel(per_query=1.0, per_tuple=0.0),
        )
        shipping_heavy = schedule_plan(
            paper_run.iom,
            paper_run.trace,
            default_cost=CostModel(per_query=1.0, per_tuple=10.0),
        )
        assert shipping_heavy.serial_cost > cheap.serial_cost

    def test_per_database_cost_models(self, paper_run):
        slow_cd = schedule_plan(
            paper_run.iom,
            paper_run.trace,
            local_costs={"CD": CostModel(per_query=100.0, per_tuple=0.0)},
        )
        uniform = schedule_plan(paper_run.iom, paper_run.trace)
        assert slow_cd.makespan > uniform.makespan
        # A slow commercial source ends up on the critical path.
        assert any(item.location == "CD" for item in slow_cd.critical_path)

    def test_schedule_without_trace_uses_defaults(self, paper_run):
        schedule = schedule_plan(paper_run.iom)
        assert schedule.serial_cost > 0
        assert len(schedule.rows) == len(paper_run.iom)

    def test_registry_cardinalities_replace_the_guess(self, paper_run):
        """Without a trace, catalog cardinalities (not a hardcoded 10)
        drive local row costs."""
        pqp = build_paper_federation()
        by_index = lambda schedule: {
            item.row.result.index: item.cost for item in schedule.rows
        }
        guessed = by_index(schedule_plan(paper_run.iom))
        informed = by_index(
            schedule_plan(paper_run.iom, registry=pqp.registry)
        )
        model = CostModel(per_query=1.0, per_tuple=0.01)
        # R(2) retrieves CAREER (9 tuples): informed cost is exact.
        assert informed[2] == pytest.approx(model.cost(queries=1, tuples=9))
        assert guessed[2] == pytest.approx(model.cost(queries=1, tuples=10))
        # R(4/5/6) retrieve BUSINESS (9), CORPORATION (7), FIRM (10).
        assert informed[4] == pytest.approx(model.cost(queries=1, tuples=9))
        assert informed[5] == pytest.approx(model.cost(queries=1, tuples=7))
        assert informed[6] == pytest.approx(model.cost(queries=1, tuples=10))

    def test_registry_estimates_propagate_to_pqp_rows(self, paper_run):
        pqp = build_paper_federation()
        schedule = schedule_plan(paper_run.iom, registry=pqp.registry)
        merge = next(item for item in schedule.rows if item.row.op.value == "Merge")
        # The Merge hash-partitions the three retrieves (9, 7, 10 tuples)
        # in one pass over their sum.
        assert merge.cost == pytest.approx(0.002 * 26)

    def test_width_aware_simulation_of_sharded_plans(self):
        from tests.pqp.test_shard import make_registry, retrieve_plan
        from repro.pqp.shard import shard_retrieves

        registry = make_registry(rows=200)
        plan = retrieve_plan()
        sharded, report = shard_retrieves(plan, registry, width=4, min_tuples=1)
        assert report.retrieves_sharded == 1
        base = schedule_plan(plan, registry=registry)
        wide = schedule_plan(sharded, registry=registry)
        # Four quarter-scans overlap on AD's widened worker group: the
        # sharded makespan beats one whole scan despite the extra queries.
        assert wide.makespan < base.makespan
        model = CostModel(per_query=1.0, per_tuple=0.01)
        assert base.makespan >= model.cost(queries=1, tuples=200)
        shard_items = sorted(
            (item for item in wide.rows if item.row.shard),
            key=lambda item: item.start,
        )
        assert len(shard_items) == 4
        # All four shards launch together — no per-connection serialization.
        assert all(item.start == shard_items[0].start for item in shard_items)

    def test_native_concurrency_widens_a_database(self):
        from tests.pqp.test_shard import make_registry, retrieve_plan
        from repro.pqp.matrix import IntermediateOperationMatrix, MatrixRow, ResultOperand
        from dataclasses import replace as dc_replace

        registry = make_registry(rows=100)
        single = retrieve_plan()
        four = IntermediateOperationMatrix(
            [
                dc_replace(single.rows[0], result=ResultOperand(i))
                for i in range(1, 5)
            ]
        )
        serial = schedule_plan(four, registry=registry)
        registry.get("AD").inner.native_concurrency = 4
        parallel = schedule_plan(four, registry=registry)
        # Width 1 serializes the paper way; a multiplexed source overlaps.
        assert serial.makespan == pytest.approx(4 * parallel.makespan)

    def test_validation_against_measured_trace(self, paper_run):
        schedule = schedule_plan(paper_run.iom, paper_run.trace)
        validation = validate_against_trace(schedule, paper_run.trace)
        assert validation.simulated_speedup == pytest.approx(schedule.speedup)
        assert validation.measured_makespan == pytest.approx(
            paper_run.trace.wall_clock
        )
        assert validation.measured_busy <= validation.measured_makespan + 1e-9
        assert "simulated:" in validation.render()
        assert "measured:" in validation.render()

    def test_render(self, paper_run):
        schedule = schedule_plan(paper_run.iom, paper_run.trace)
        text = schedule.render()
        assert "critical path:" in text
        assert "speedup" in text
        assert "R(10)" in text


class TestPlanShapes:
    def test_decompose_merges_builds_binary_chain(self, paper_run):
        schedule = schedule_plan(paper_run.iom, paper_run.trace)
        finishes = {item.row.result.index: item.finish for item in schedule.rows}
        chained = decompose_merges(paper_run.iom, finishes)
        assert chained is not None
        merges = [row for row in chained if row.op is Operation.MERGE]
        # The paper's 3-way Merge unrolls into two binary Merges.
        assert len(merges) == 2
        assert all(len(row.lhr) == 2 for row in merges)
        # One extra row overall; every reference still resolves (PlanDAG
        # validates on construction inside schedule_plan).
        assert len(chained) == len(paper_run.iom) + 1
        schedule_plan(chained)

    def test_decomposed_chain_is_result_identical(self, paper_run):
        pqp = build_paper_federation()
        schedule = schedule_plan(paper_run.iom, paper_run.trace)
        finishes = {item.row.result.index: item.finish for item in schedule.rows}
        chained = decompose_merges(paper_run.iom, finishes)
        rerun = pqp.run_plan(chained)
        assert rerun.relation == paper_run.relation
        assert rerun.lineage == paper_run.lineage

    def test_chain_orders_latest_source_last(self, paper_run):
        # Make CD by far the slowest source: it must merge last.
        slow = {"CD": CostModel(per_query=100.0, per_tuple=0.0)}
        schedule = schedule_plan(paper_run.iom, paper_run.trace, local_costs=slow)
        finishes = {item.row.result.index: item.finish for item in schedule.rows}
        chained = decompose_merges(paper_run.iom, finishes)
        final_merge = [row for row in chained if row.op is Operation.MERGE][-1]
        by_index = {row.result.index: row for row in chained}
        last_input = by_index[final_merge.lhr[-1].index]
        assert last_input.el == "CD"

    def test_no_wide_merge_means_no_decomposition(self, paper_run):
        narrow = build_paper_federation().run_algebra('PALUMNUS [DEGREE = "MBA"]')
        assert decompose_merges(narrow.iom, {}) is None

    def test_rank_plan_shapes_orders_by_makespan(self, paper_run):
        shapes = rank_plan_shapes(
            [("original", paper_run.iom)],
            local_costs={"CD": CostModel(per_query=100.0, per_tuple=0.0)},
        )
        names = [shape.name for shape in shapes]
        assert "original" in names and "original+merge-chain" in names
        makespans = [shape.makespan for shape in shapes]
        assert makespans == sorted(makespans)
        # With CD the straggler, the chain merges the fast sources while
        # CD is still shipping; under the containment output estimate its
        # final link touches max(fast)+CD tuples — less than the flat
        # Merge's one pass over all 26 — so the chain strictly wins.
        assert shapes[0].name == "original+merge-chain"
        by_name = {shape.name: shape.makespan for shape in shapes}
        assert by_name["original+merge-chain"] < by_name["original"]

    def test_rank_without_decomposition(self, paper_run):
        shapes = rank_plan_shapes([("original", paper_run.iom)], decompose=False)
        assert [shape.name for shape in shapes] == ["original"]
