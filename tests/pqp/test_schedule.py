"""Unit tests for the plan scheduling simulator."""

import pytest

from repro.datasets.paper import build_paper_federation
from repro.lqp.cost import CostModel
from repro.pqp.schedule import schedule_plan, validate_against_trace

from tests.integration.conftest import PAPER_SQL


@pytest.fixture(scope="module")
def paper_run():
    pqp = build_paper_federation()
    return pqp.run_sql(PAPER_SQL)


class TestScheduling:
    def test_dependencies_respected(self, paper_run):
        schedule = schedule_plan(paper_run.iom, paper_run.trace)
        finish = {item.row.result.index: item.finish for item in schedule.rows}
        for item in schedule.rows:
            for ref in item.row.referenced_results():
                assert item.start >= finish[ref.index]

    def test_same_lqp_rows_serialize(self, paper_run):
        schedule = schedule_plan(paper_run.iom, paper_run.trace)
        ad_rows = sorted(
            (item for item in schedule.rows if item.location == "AD"),
            key=lambda item: item.start,
        )
        for earlier, later in zip(ad_rows, ad_rows[1:]):
            assert later.start >= earlier.finish

    def test_parallelism_beats_serial(self, paper_run):
        # The three merge retrieves hit different databases, so the
        # makespan is strictly below the serial cost.
        schedule = schedule_plan(paper_run.iom, paper_run.trace)
        assert schedule.makespan < schedule.serial_cost
        assert schedule.speedup > 1.0

    def test_critical_path_is_connected_and_ends_last(self, paper_run):
        schedule = schedule_plan(paper_run.iom, paper_run.trace)
        path = schedule.critical_path
        assert path[-1].finish == schedule.makespan
        for earlier, later in zip(path, path[1:]):
            refs = {ref.index for ref in later.row.referenced_results()}
            assert earlier.row.result.index in refs

    def test_trace_tuple_counts_drive_costs(self, paper_run):
        cheap = schedule_plan(
            paper_run.iom,
            paper_run.trace,
            default_cost=CostModel(per_query=1.0, per_tuple=0.0),
        )
        shipping_heavy = schedule_plan(
            paper_run.iom,
            paper_run.trace,
            default_cost=CostModel(per_query=1.0, per_tuple=10.0),
        )
        assert shipping_heavy.serial_cost > cheap.serial_cost

    def test_per_database_cost_models(self, paper_run):
        slow_cd = schedule_plan(
            paper_run.iom,
            paper_run.trace,
            local_costs={"CD": CostModel(per_query=100.0, per_tuple=0.0)},
        )
        uniform = schedule_plan(paper_run.iom, paper_run.trace)
        assert slow_cd.makespan > uniform.makespan
        # A slow commercial source ends up on the critical path.
        assert any(item.location == "CD" for item in slow_cd.critical_path)

    def test_schedule_without_trace_uses_defaults(self, paper_run):
        schedule = schedule_plan(paper_run.iom)
        assert schedule.serial_cost > 0
        assert len(schedule.rows) == len(paper_run.iom)

    def test_registry_cardinalities_replace_the_guess(self, paper_run):
        """Without a trace, catalog cardinalities (not a hardcoded 10)
        drive local row costs."""
        pqp = build_paper_federation()
        by_index = lambda schedule: {
            item.row.result.index: item.cost for item in schedule.rows
        }
        guessed = by_index(schedule_plan(paper_run.iom))
        informed = by_index(
            schedule_plan(paper_run.iom, registry=pqp.registry)
        )
        model = CostModel(per_query=1.0, per_tuple=0.01)
        # R(2) retrieves CAREER (9 tuples): informed cost is exact.
        assert informed[2] == pytest.approx(model.cost(queries=1, tuples=9))
        assert guessed[2] == pytest.approx(model.cost(queries=1, tuples=10))
        # R(4/5/6) retrieve BUSINESS (9), CORPORATION (7), FIRM (10).
        assert informed[4] == pytest.approx(model.cost(queries=1, tuples=9))
        assert informed[5] == pytest.approx(model.cost(queries=1, tuples=7))
        assert informed[6] == pytest.approx(model.cost(queries=1, tuples=10))

    def test_registry_estimates_propagate_to_pqp_rows(self, paper_run):
        pqp = build_paper_federation()
        schedule = schedule_plan(paper_run.iom, registry=pqp.registry)
        merge = next(item for item in schedule.rows if item.row.op.value == "Merge")
        # The Merge consumes the three retrieves' 9 + 7 + 10 tuples.
        assert merge.cost == pytest.approx(0.002 * 26)

    def test_validation_against_measured_trace(self, paper_run):
        schedule = schedule_plan(paper_run.iom, paper_run.trace)
        validation = validate_against_trace(schedule, paper_run.trace)
        assert validation.simulated_speedup == pytest.approx(schedule.speedup)
        assert validation.measured_makespan == pytest.approx(
            paper_run.trace.wall_clock
        )
        assert validation.measured_busy <= validation.measured_makespan + 1e-9
        assert "simulated:" in validation.render()
        assert "measured:" in validation.render()

    def test_render(self, paper_run):
        schedule = schedule_plan(paper_run.iom, paper_run.trace)
        text = schedule.render()
        assert "critical path:" in text
        assert "speedup" in text
        assert "R(10)" in text
