"""Unit tests for trace-driven cost calibration and the cost-based mode."""

import pytest

from repro.datasets.paper import (
    build_paper_federation,
    paper_databases,
    paper_identity_resolver,
    paper_polygen_schema,
)
from repro.lqp.cost import CalibratedCostModel, CostModel, LatencyLQP
from repro.lqp.registry import LQPRegistry
from repro.lqp.relational_lqp import RelationalLQP
from repro.pqp.calibrate import CostCalibrator
from repro.pqp.executor import ExecutionTrace, RowTiming
from repro.pqp.matrix import (
    IntermediateOperationMatrix,
    LocalOperand,
    MatrixRow,
    Operation,
    ResultOperand,
)
from repro.pqp.optimizer import ShapeChoice
from repro.pqp.processor import PolygenQueryProcessor
from repro.service.options import QueryOptions

from tests.integration.conftest import PAPER_SQL


class _Sized:
    """The calibrator only reads ``cardinality`` off a trace's results."""

    def __init__(self, cardinality):
        self.cardinality = cardinality


def _merge_plan(cards_by_db):
    """N retrieves (one per database) + a Merge + a no-op Project."""
    rows = []
    for position, database in enumerate(cards_by_db, start=1):
        rows.append(
            MatrixRow(
                ResultOperand(position),
                Operation.RETRIEVE,
                LocalOperand("ORG"),
                el=database,
                scheme="GORGANIZATION",
            )
        )
    inputs = tuple(ResultOperand(i) for i in range(1, len(cards_by_db) + 1))
    rows.append(
        MatrixRow(
            ResultOperand(len(rows) + 1),
            Operation.MERGE,
            inputs,
            el="PQP",
            scheme="GORGANIZATION",
        )
    )
    return IntermediateOperationMatrix(rows)


def _trace_for(iom, cards_by_db, model_for, pqp_rate):
    """A synthetic trace whose timings obey the given cost models exactly
    (Merges pay the sum of their inputs, one hash-partitioned pass)."""
    results, timings = {}, {}
    clock = 0.0
    for row in iom:
        index = row.result.index
        if row.is_local:
            tuples = cards_by_db[row.el]
            duration = model_for(row.el).cost(1, tuples)
        else:
            work = sum(
                results[ref.index].cardinality for ref in row.referenced_results()
            )
            tuples = sum(cards_by_db.values())
            duration = pqp_rate * work
        results[index] = _Sized(tuples)
        timings[index] = RowTiming(start=clock, finish=clock + duration, location=row.el or "PQP")
        clock += duration
    final = iom.rows[-1].result.index
    return ExecutionTrace(results[final], results, {}, timings)


class TestCalibratedCostModelFit:
    def test_exact_linear_recovery(self):
        model = CalibratedCostModel.fit(
            [(t, 0.02 + 0.003 * t) for t in (1, 5, 20, 100)]
        )
        assert model.per_query == pytest.approx(0.02)
        assert model.per_tuple == pytest.approx(0.003)
        assert model.observations == 4
        assert model.residual == pytest.approx(0.0, abs=1e-12)

    def test_is_a_cost_model(self):
        model = CalibratedCostModel.fit([(10, 0.1), (20, 0.2)])
        assert isinstance(model, CostModel)
        assert model.cost(2, 10) == pytest.approx(2 * model.per_query + 10 * model.per_tuple)

    def test_single_tuple_count_collapses_to_per_query(self):
        model = CalibratedCostModel.fit([(7, 0.05), (7, 0.07)])
        assert model.per_tuple == 0.0
        assert model.per_query == pytest.approx(0.06)

    def test_negative_slope_is_clamped(self):
        # Slower for fewer tuples: noise, not physics.
        model = CalibratedCostModel.fit([(10, 0.2), (100, 0.1)])
        assert model.per_tuple == 0.0
        assert model.per_query == pytest.approx(0.15)

    def test_negative_intercept_refits_through_origin(self):
        # Purely per-tuple latency with a noisy dip below zero at t=0.
        model = CalibratedCostModel.fit([(10, 0.0005), (1000, 0.9)])
        assert model.per_query == 0.0
        assert model.per_tuple > 0.0

    def test_zero_observations_rejected(self):
        with pytest.raises(ValueError):
            CalibratedCostModel.fit([])


class TestCostCalibrator:
    CARDS = {"A": 50, "B": 500, "C": 20}
    MODELS = {
        "A": CostModel(per_query=0.1, per_tuple=0.001),
        "B": CostModel(per_query=0.005, per_tuple=0.0001),
        "C": CostModel(per_query=0.25, per_tuple=0.0),
    }
    PQP_RATE = 0.0004

    def _observe(self, calibrator, runs=3, jitter=0):
        for run in range(runs):
            cards = {db: c + jitter * run for db, c in self.CARDS.items()}
            iom = _merge_plan(cards)
            calibrator.observe(
                iom, _trace_for(iom, cards, self.MODELS.__getitem__, self.PQP_RATE)
            )

    def test_models_recover_known_costs(self):
        calibrator = CostCalibrator()
        # Vary cardinalities across runs so per-query/per-tuple separate.
        self._observe(calibrator, runs=3, jitter=40)
        models = calibrator.local_costs()
        assert set(models) == {"A", "B", "C"}
        for name, expected in self.MODELS.items():
            assert models[name].per_query == pytest.approx(
                expected.per_query, rel=1e-6, abs=1e-9
            )
            assert models[name].per_tuple == pytest.approx(
                expected.per_tuple, rel=1e-6, abs=1e-9
            )
        assert calibrator.pqp_cost_per_tuple() == pytest.approx(self.PQP_RATE)
        assert calibrator.model_for("A") == models["A"]
        assert calibrator.model_for("unknown") is None

    def test_prediction_error_is_tracked(self):
        calibrator = CostCalibrator()
        self._observe(calibrator, runs=2, jitter=40)
        error = calibrator.prediction_error()
        assert error is not None
        # Timings obey the models exactly, so the serialized prediction of
        # this serial synthetic trace is close (fold-model approximation
        # aside).
        assert error < 0.5
        assert calibrator.observed_plans == 2
        assert "plans observed" in calibrator.render()

    def test_window_bounds_samples(self):
        calibrator = CostCalibrator(window=4)
        self._observe(calibrator, runs=9)
        assert all(count <= 4 for count in calibrator.sample_counts().values())

    def test_window_validation(self):
        with pytest.raises(ValueError):
            CostCalibrator(window=1)


class TestPersistence:
    CARDS = TestCostCalibrator.CARDS
    MODELS = TestCostCalibrator.MODELS
    PQP_RATE = TestCostCalibrator.PQP_RATE

    def _seeded(self, runs=3):
        calibrator = CostCalibrator()
        for run in range(runs):
            cards = {db: c + 40 * run for db, c in self.CARDS.items()}
            iom = _merge_plan(cards)
            calibrator.observe(
                iom, _trace_for(iom, cards, self.MODELS.__getitem__, self.PQP_RATE)
            )
        return calibrator

    def test_save_load_roundtrip_refits_models(self, tmp_path):
        saved = self._seeded()
        path = str(tmp_path / "calibration.json")
        saved.save(path)
        restored = CostCalibrator()
        assert restored.load(path) is True
        assert restored.sample_counts() == saved.sample_counts()
        assert restored.observed_plans == saved.observed_plans
        for name, model in saved.local_costs().items():
            fresh = restored.model_for(name)
            assert fresh.per_query == pytest.approx(model.per_query)
            assert fresh.per_tuple == pytest.approx(model.per_tuple)
        assert restored.pqp_cost_per_tuple() == pytest.approx(self.PQP_RATE)

    def test_load_missing_path_is_a_noop(self, tmp_path):
        calibrator = CostCalibrator()
        assert calibrator.load(str(tmp_path / "absent.json")) is False
        assert calibrator.sample_counts() == {}
        assert calibrator.observed_plans == 0

    def test_from_dict_merges_and_window_bounds(self, tmp_path):
        # Restoring into a narrower window keeps only the newest evidence;
        # restoring on top of live evidence appends, it does not replace.
        snapshot = self._seeded(runs=5).to_dict()
        narrow = CostCalibrator(window=4)
        narrow.from_dict(snapshot)
        assert all(n <= 4 for n in narrow.sample_counts().values())
        merged = self._seeded(runs=1)
        before = merged.sample_counts()
        merged.from_dict(snapshot)
        assert all(
            merged.sample_counts()[name] >= count for name, count in before.items()
        )

    def test_federation_persists_across_restart(self, tmp_path):
        from repro.service.federation import PolygenFederation

        path = str(tmp_path / "calibration.json")

        def run_once():
            registry = LQPRegistry()
            for database in paper_databases().values():
                registry.register(RelationalLQP(database))
            federation = PolygenFederation(
                paper_polygen_schema(),
                registry,
                resolver=paper_identity_resolver(),
                calibration_path=path,
            )
            with federation, federation.session() as session:
                session.execute(PAPER_SQL)
                return federation.calibrator.observed_plans

        first = run_once()
        assert first >= 1
        # The next "process" starts with the saved evidence preloaded.
        second = run_once()
        assert second >= first + 1


class TestCostBasedFacade:
    def _processor(self, **kwargs):
        registry = LQPRegistry()
        for database in paper_databases().values():
            registry.register(RelationalLQP(database))
        return PolygenQueryProcessor(
            schema=paper_polygen_schema(),
            registry=registry,
            resolver=paper_identity_resolver(),
            **kwargs,
        )

    def test_cost_mode_matches_baseline_and_reports_choice(self):
        baseline = build_paper_federation().run_sql(PAPER_SQL)
        pqp = self._processor(optimize="cost")
        first = pqp.run_sql(PAPER_SQL)
        assert first.relation == baseline.relation
        assert isinstance(first.optimization, ShapeChoice)
        assert first.optimization.chosen in dict(first.optimization.considered)
        assert first.optimization.report.original_rows >= len(first.iom) - 2
        # Second run plans under calibrated models; result is unchanged.
        second = pqp.run_sql(PAPER_SQL)
        assert second.relation == baseline.relation
        stats = pqp.federation.stats()
        assert stats.plans_calibrated == 2
        assert set(stats.calibrated_models) == {"AD", "PD", "CD"}
        assert stats.cost_model_error is not None

    def test_choice_renders(self):
        pqp = self._processor(optimize="cost")
        run = pqp.run_sql(PAPER_SQL)
        text = run.optimization.render()
        assert "cost-based choice" in text
        assert run.optimization.chosen in text

    def test_options_validate_cost_mode(self):
        assert QueryOptions(optimize="cost").optimize == "cost"
        with pytest.raises(ValueError):
            QueryOptions(optimize="fastest")

    def test_truthy_optimize_still_enables_rewrites(self):
        # The historical facade accepted any truthy optimize; 1 == True
        # passes QueryOptions validation and must keep optimizing.
        pqp = self._processor(optimize=1)
        run = pqp.run_sql(PAPER_SQL)
        assert run.optimization is not None
        assert not isinstance(run.optimization, ShapeChoice)

    def test_latency_lqp_parameters_recovered_from_real_traces(self):
        """The integration version of the recovery property: real sleeps,
        injected by LatencyLQP, measured by the executor, fitted by the
        federation's calibrator."""
        registry = LQPRegistry()
        injected = {"AD": 0.04, "PD": 0.012, "CD": 0.002}
        for name, database in paper_databases().items():
            registry.register(
                LatencyLQP(RelationalLQP(database), per_query=injected[name])
            )
        pqp = PolygenQueryProcessor(
            schema=paper_polygen_schema(),
            registry=registry,
            resolver=paper_identity_resolver(),
            concurrent=True,
        )
        for _ in range(2):
            pqp.run_sql(PAPER_SQL)
        models = pqp.calibrator.local_costs()
        # Measured durations add materialization on top of the sleep, so
        # recovery is approximate — but the per-database ordering and the
        # slow source's magnitude must hold.
        assert models["AD"].per_query == pytest.approx(injected["AD"], rel=0.6)
        assert models["AD"].per_query > models["PD"].per_query > models["CD"].per_query
