"""Unit tests for the PQP facade and the provenance explainer."""

import pytest

from repro.datasets.paper import build_paper_federation, paper_polygen_schema
from repro.pqp.explain import explain_cell, explain_result, explain_tuple, source_summary

from tests.integration.conftest import PAPER_SQL


@pytest.fixture(scope="module")
def pqp():
    return build_paper_federation()


@pytest.fixture(scope="module")
def result(pqp):
    return pqp.run_sql(PAPER_SQL)


class TestFacade:
    def test_run_sql_populates_artifacts(self, result):
        assert result.sql is not None
        assert result.expression is not None
        assert result.pom is not None and len(result.pom) == 5
        assert result.iom is not None and len(result.iom) == 10
        assert result.translation.dropped_tables == ("PALUMNUS",)
        assert result.optimization is not None

    def test_render_uses_paper_notation(self, result):
        text = result.render()
        assert "Genentech, {AD, CD}, {AD, CD}" in text

    def test_analyze_accepts_text_and_trees(self, pqp):
        tree, pom = pqp.analyze('PALUMNUS [DEGREE = "MBA"]')
        tree2, pom2 = pqp.analyze(tree)
        assert [r.cells(False) for r in pom] == [r.cells(False) for r in pom2]

    def test_optimize_disabled(self):
        from repro.datasets.paper import paper_databases, paper_identity_resolver
        from repro.lqp.registry import LQPRegistry
        from repro.lqp.relational_lqp import RelationalLQP
        from repro.pqp.processor import PolygenQueryProcessor

        registry = LQPRegistry()
        for database in paper_databases().values():
            registry.register(RelationalLQP(database))
        pqp = PolygenQueryProcessor(
            paper_polygen_schema(),
            registry,
            resolver=paper_identity_resolver(),
            optimize=False,
        )
        result = pqp.run_sql(PAPER_SQL)
        assert result.optimization is None
        assert result.relation.cardinality == 3

    def test_simple_single_scheme_query(self, pqp):
        result = pqp.run_sql('SELECT ANAME FROM PALUMNUS WHERE MAJOR = "IS"')
        names = {row.data[0] for row in result.relation}
        assert names == {"John McCauley", "Stu Madnick", "Dave Horton"}

    def test_profit_domain_mapping_applies(self, pqp):
        result = pqp.run_sql("SELECT ONAME, PROFIT FROM PFINANCE WHERE YEAR = 1989")
        by_name = {row.data[0]: row.data[1] for row in result.relation}
        assert by_name["Citicorp"] == pytest.approx(1.7e9)
        assert by_name["AT&T"] == pytest.approx(-1.7e9)


class TestExplain:
    def test_explain_cell_reverse_maps_to_local_columns(self, result):
        schema = paper_polygen_schema()
        genentech = [t for t in result.relation if t.data[0] == "Genentech"][0]
        text = explain_cell(schema, ["PORGANIZATION"], "ONAME", genentech[0])
        assert "(AD, BUSINESS, BNAME)" in text
        assert "(CD, FIRM, FNAME)" in text
        assert "(PD, CORPORATION, CNAME)" not in text  # PD is not an origin

    def test_explain_tuple_covers_every_attribute(self, result):
        schema = paper_polygen_schema()
        sentences = explain_tuple(result, schema, 0)
        assert len(sentences) == 2
        assert sentences[0].startswith("ONAME")
        assert sentences[1].startswith("CEO")

    def test_explain_result_narrative(self, result):
        schema = paper_polygen_schema()
        text = explain_result(result, schema)
        assert "Genentech" in text
        assert "Originating databases: AD, CD, PD" in text
        assert "Intermediate databases: AD, CD, PD" in text

    def test_source_summary_mediators_only(self, pqp):
        # PD mediates the ONAME join for Genentech-like rows but contributes
        # no datum when we project CEO of a CD-only attribute... use a query
        # where AD mediates only.
        result = pqp.run_sql(
            'SELECT CEO FROM PORGANIZATION WHERE ONAME IN '
            '(SELECT ONAME FROM PCAREER WHERE POSITION = "Professor")'
        )
        summary = source_summary(result.relation)
        assert "Originating databases:" in summary
        # MIT has no CEO in FIRM → empty or nil-only result acceptable; the
        # summary must still render.
        assert "Intermediate databases:" in summary

    def test_nil_cell_explanation(self, pqp):
        schema = paper_polygen_schema()
        result = pqp.run_sql("SELECT ONAME, CEO FROM PORGANIZATION")
        mit = [t for t in result.relation if t.data[0] == "MIT"][0]
        text = explain_cell(schema, ["PORGANIZATION"], "CEO", mit[1])
        assert "nil" in text
