"""Unit tests for the Syntax Analyzer (expression → POM)."""

import pytest

from repro.algebra_lang import parse_expression
from repro.core.predicate import Literal
from repro.errors import TranslationError
from repro.pqp.matrix import Operation, ResultOperand, SchemeOperand
from repro.pqp.syntax_analyzer import SyntaxAnalyzer


@pytest.fixture
def analyzer():
    return SyntaxAnalyzer()


def analyze(analyzer, text):
    return analyzer.analyze(parse_expression(text))


class TestBasicOperations:
    def test_select_row(self, analyzer):
        pom = analyze(analyzer, 'PALUMNUS [DEGREE = "MBA"]')
        row = pom.rows[0]
        assert row.op is Operation.SELECT
        assert row.lhr == SchemeOperand("PALUMNUS")
        assert row.rha == Literal("MBA")
        assert row.rhr is None

    def test_numeric_literal(self, analyzer):
        pom = analyze(analyzer, "PFINANCE [YEAR = 1989]")
        assert pom.rows[0].rha == Literal(1989)

    def test_restrict_row(self, analyzer):
        pom = analyze(analyzer, "(PORGANIZATION [ONAME]) [CEO = CEO]")
        assert pom.rows[-1].op is Operation.RESTRICT
        assert pom.rows[-1].rha == "CEO"

    def test_join_row_emits_operands_first(self, analyzer):
        pom = analyze(analyzer, '(PALUMNUS [DEGREE = "MBA"]) [AID# = AID#] PCAREER')
        assert [row.op for row in pom] == [Operation.SELECT, Operation.JOIN]
        join = pom.rows[1]
        assert join.lhr == ResultOperand(1)
        assert join.rhr == SchemeOperand("PCAREER")

    def test_project_row(self, analyzer):
        pom = analyze(analyzer, "(PALUMNUS [ANAME]) ")
        assert pom.rows[0].op is Operation.PROJECT
        assert pom.rows[0].lha == ("ANAME",)

    def test_set_operations(self, analyzer):
        pom = analyze(analyzer, "(PALUMNUS [ANAME]) UNION (PSTUDENT [SNAME])")
        assert [row.op for row in pom] == [
            Operation.PROJECT,
            Operation.PROJECT,
            Operation.UNION,
        ]
        union = pom.rows[2]
        assert union.lhr == ResultOperand(1)
        assert union.rhr == ResultOperand(2)

    def test_coalesce_row(self, analyzer):
        pom = analyze(analyzer, "(PALUMNUS [ANAME, MAJOR]) [ANAME COALESCE MAJOR AS X]")
        coalesce = pom.rows[-1]
        assert coalesce.op is Operation.COALESCE
        assert coalesce.lha == "ANAME"
        assert coalesce.rha == "MAJOR"
        assert coalesce.output == "X"

    def test_bare_scheme_reference_rejected(self, analyzer):
        with pytest.raises(TranslationError):
            analyze(analyzer, "PALUMNUS")


class TestNumbering:
    def test_post_order_numbering_matches_paper(self, analyzer):
        pom = analyze(
            analyzer,
            '((((PALUMNUS [DEGREE = "MBA"]) [AID# = AID#] PCAREER)'
            " [ONAME = ONAME] PORGANIZATION) [CEO = ANAME]) [ONAME, CEO]",
        )
        assert [str(row.result) for row in pom] == [
            "R(1)", "R(2)", "R(3)", "R(4)", "R(5)",
        ]
        assert pom.rows[3].lhr == ResultOperand(3)
        assert pom.rows[4].lhr == ResultOperand(4)

    def test_deep_right_subtrees_number_operands_first(self, analyzer):
        pom = analyze(
            analyzer,
            '(PALUMNUS [DEGREE = "MBA"]) [AID# = AID#] (PCAREER [POSITION = "CEO"])',
        )
        assert [row.op for row in pom] == [
            Operation.SELECT,
            Operation.SELECT,
            Operation.JOIN,
        ]
        join = pom.rows[2]
        assert join.lhr == ResultOperand(1)
        assert join.rhr == ResultOperand(2)
