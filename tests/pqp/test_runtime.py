"""Unit tests for the concurrent federated execution runtime."""

import pytest

from repro.datasets.paper import (
    build_paper_federation,
    paper_databases,
    paper_identity_resolver,
    paper_polygen_schema,
)
from repro.errors import ExecutionError
from repro.lqp.cost import LatencyLQP
from repro.lqp.registry import LQPRegistry
from repro.lqp.relational_lqp import RelationalLQP
from repro.pqp.matrix import IntermediateOperationMatrix
from repro.pqp.processor import PolygenQueryProcessor
from repro.pqp.runtime import ConcurrentExecutor

from tests.integration.conftest import PAPER_SQL


def _processor(latency=0.0, **kwargs) -> PolygenQueryProcessor:
    registry = LQPRegistry()
    for database in paper_databases().values():
        lqp = RelationalLQP(database)
        registry.register(LatencyLQP(lqp, per_query=latency) if latency else lqp)
    return PolygenQueryProcessor(
        schema=paper_polygen_schema(),
        registry=registry,
        resolver=paper_identity_resolver(),
        **kwargs,
    )


@pytest.fixture(scope="module")
def serial_run():
    return build_paper_federation().run_sql(PAPER_SQL)


class TestEquivalence:
    def test_same_relation_and_tags_as_serial(self, serial_run):
        concurrent = _processor(concurrent=True).run_sql(PAPER_SQL)
        assert concurrent.relation == serial_run.relation
        assert concurrent.lineage == serial_run.lineage

    def test_same_intermediates_as_serial(self, serial_run):
        concurrent = _processor(concurrent=True).run_sql(PAPER_SQL)
        assert set(concurrent.trace.results) == set(serial_run.trace.results)
        for index, relation in serial_run.trace.results.items():
            assert concurrent.trace.results[index] == relation

    def test_accounting_matches_serial(self):
        serial = _processor()
        serial.run_sql(PAPER_SQL)
        concurrent = _processor(concurrent=True)
        concurrent.run_sql(PAPER_SQL)
        assert (
            concurrent.registry.total_stats().tuples_shipped
            == serial.registry.total_stats().tuples_shipped
        )

    def test_executor_property_reports_engine(self):
        assert isinstance(_processor(concurrent=True).executor, ConcurrentExecutor)
        assert not isinstance(_processor().executor, ConcurrentExecutor)


class TestTimings:
    def test_every_row_is_timed(self):
        run = _processor(concurrent=True).run_sql(PAPER_SQL)
        assert set(run.trace.timings) == set(run.trace.results)
        for timing in run.trace.timings.values():
            assert timing.finish >= timing.start >= 0.0

    def test_serial_executor_also_times(self, serial_run):
        assert set(serial_run.trace.timings) == set(serial_run.trace.results)
        assert serial_run.trace.wall_clock > 0.0
        assert all(t.worker == "serial" for t in serial_run.trace.timings.values())

    def test_dependencies_respected_in_time(self):
        run = _processor(concurrent=True).run_sql(PAPER_SQL)
        timings = run.trace.timings
        for row in run.iom:
            for ref in row.referenced_results():
                assert (
                    timings[row.result.index].start
                    >= timings[ref.index].finish - 1e-9
                )

    def test_local_rows_overlap_across_databases(self):
        # With a real per-query delay, the three merge retrieves (AD, PD,
        # CD) run concurrently: wall clock stays well under busy time.
        run = _processor(latency=0.03, concurrent=True).run_sql(PAPER_SQL)
        trace = run.trace
        assert trace.wall_clock < trace.busy_time
        locations = {t.location for t in trace.timings.values()}
        assert {"AD", "PD", "CD", "PQP"} <= locations

    def test_same_database_rows_serialize(self):
        run = _processor(latency=0.01, concurrent=True).run_sql(PAPER_SQL)
        ad = sorted(
            (t for t in run.trace.timings.values() if t.location == "AD"),
            key=lambda t: t.start,
        )
        for earlier, later in zip(ad, ad[1:]):
            assert later.start >= earlier.finish - 1e-9


class TestErrors:
    def test_empty_plan_rejected(self):
        executor = _processor(concurrent=True).executor
        with pytest.raises(ExecutionError, match="empty"):
            executor.execute(IntermediateOperationMatrix())

    def test_local_failure_propagates_with_row_context(self):
        pqp = _processor(concurrent=True)
        run = pqp.run_sql(PAPER_SQL)
        # Re-execute a plan referencing a relation the LQP does not serve.
        from dataclasses import replace

        from repro.pqp.matrix import LocalOperand

        broken_rows = list(run.iom.rows)
        broken_rows[1] = replace(broken_rows[1], lhr=LocalOperand("NO_SUCH"))
        broken = IntermediateOperationMatrix(broken_rows)
        with pytest.raises(ExecutionError):
            pqp.executor.execute(broken)

    def test_pqp_failure_propagates(self):
        pqp = _processor(concurrent=True)
        run = pqp.run_sql(PAPER_SQL)
        from dataclasses import replace

        broken_rows = list(run.iom.rows)
        # Join on an attribute the operand lacks.
        broken_rows[2] = replace(broken_rows[2], lha="NOPE")
        broken = IntermediateOperationMatrix(broken_rows)
        with pytest.raises(ExecutionError, match="R\\(3\\)"):
            pqp.executor.execute(broken)
