"""Unit tests for the synthetic federation generators."""

import pytest

from repro.datasets.generators import FederationSpec, GeneratedFederation, generate_federation


class TestSpecValidation:
    def test_rejects_zero_databases(self):
        with pytest.raises(ValueError):
            FederationSpec(databases=0)

    def test_rejects_bad_coverage(self):
        with pytest.raises(ValueError):
            FederationSpec(coverage=0.0)
        with pytest.raises(ValueError):
            FederationSpec(coverage=1.5)

    def test_rejects_empty_universe(self):
        with pytest.raises(ValueError):
            FederationSpec(organizations=0)


class TestGeneration:
    SPEC = FederationSpec(databases=4, organizations=50, coverage=0.5, people_per_database=10, seed=7)

    def test_deterministic(self):
        a = generate_federation(self.SPEC)
        b = generate_federation(self.SPEC)
        assert a.universe == b.universe
        for name in a.databases:
            assert a.databases[name].relation("ORG") == b.databases[name].relation("ORG")
            assert a.databases[name].relation("PERSON") == b.databases[name].relation("PERSON")

    def test_seed_changes_output(self):
        a = generate_federation(self.SPEC)
        b = generate_federation(FederationSpec(databases=4, organizations=50, coverage=0.5, people_per_database=10, seed=8))
        assert any(
            a.databases[n].relation("ORG") != b.databases[n].relation("ORG")
            for n in a.databases
        )

    def test_shapes(self):
        federation = generate_federation(self.SPEC)
        assert len(federation.databases) == 4
        assert len(federation.universe) == 50
        for database in federation.databases.values():
            assert database.relation("ORG").cardinality == 25
            assert database.relation("PERSON").cardinality == 10

    def test_databases_agree_on_shared_organizations(self):
        federation = generate_federation(self.SPEC)
        facts = {}
        for database in federation.databases.values():
            for name, industry, state in database.relation("ORG"):
                if name in facts:
                    assert facts[name] == (industry, state)
                facts[name] = (industry, state)

    def test_schema_covers_all_databases(self):
        federation = generate_federation(self.SPEC)
        org = federation.schema.scheme("GORGANIZATION")
        assert len(org.mappings("NAME")) == 4
        assert org.primary_key == ("NAME",)
        assert len(federation.schema) == 5  # GORGANIZATION + 4 person schemes

    def test_registry_and_processor_work(self):
        federation = generate_federation(self.SPEC)
        pqp = federation.processor()
        result = pqp.run_algebra("GORGANIZATION [NAME, INDUSTRY]")
        # The merge covers the union of all databases' samples.
        covered = set()
        for database in federation.databases.values():
            covered |= {row[0] for row in database.relation("ORG")}
        assert {row.data[0] for row in result.relation} == covered

    def test_merged_rows_carry_multi_db_tags(self):
        federation = generate_federation(self.SPEC)
        pqp = federation.processor()
        result = pqp.run_algebra("GORGANIZATION [NAME, INDUSTRY]")
        multi = [
            row for row in result.relation if len(row[0].origins) > 1
        ]
        assert multi, "with 50% coverage over 4 DBs some organizations overlap"
