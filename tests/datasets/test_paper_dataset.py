"""Unit tests for the paper's federation dataset."""

import pytest

from repro.datasets.paper import (
    build_paper_federation,
    paper_databases,
    paper_identity_resolver,
    paper_polygen_schema,
)


class TestDatabases:
    def test_three_databases(self):
        databases = paper_databases()
        assert set(databases) == {"AD", "PD", "CD"}

    @pytest.mark.parametrize(
        "database,relation,cardinality",
        [
            ("AD", "ALUMNUS", 8),
            ("AD", "CAREER", 9),
            ("AD", "BUSINESS", 9),
            ("PD", "STUDENT", 5),
            ("PD", "INTERVIEW", 4),
            ("PD", "CORPORATION", 7),
            ("CD", "FIRM", 10),
            ("CD", "FINANCE", 10),
        ],
    )
    def test_cardinalities_match_paper(self, database, relation, cardinality):
        assert paper_databases()[database].relation(relation).cardinality == cardinality

    def test_instance_mismatch_is_preserved_in_raw_data(self):
        # The paper prints CitiCorp in BUSINESS/FIRM and Citicorp in
        # CAREER/CORPORATION; the dataset keeps the raw spellings so the
        # identity-resolution path is actually exercised.
        databases = paper_databases()
        assert "CitiCorp" in databases["AD"].relation("BUSINESS").column("BNAME")
        assert "Citicorp" in databases["AD"].relation("CAREER").column("BNAME")
        assert "CitiCorp" in databases["CD"].relation("FIRM").column("FNAME")

    def test_firm_hq_keeps_city_state_strings(self):
        hq = paper_databases()["CD"].relation("FIRM").column("HQ")
        assert "Cambridge, MA" in hq


class TestSchema:
    def test_six_schemes(self):
        schema = paper_polygen_schema()
        assert set(schema.names()) == {
            "PALUMNUS",
            "PCAREER",
            "PORGANIZATION",
            "PSTUDENT",
            "PINTERVIEW",
            "PFINANCE",
        }

    def test_schema_validates_against_databases(self):
        databases = paper_databases()
        catalog = {
            name: {
                relation: databases[name].schema(relation).attributes
                for relation in databases[name].relation_names()
            }
            for name in databases
        }
        paper_polygen_schema().validate_against(catalog)  # must not raise

    def test_porganization_mapping_counts(self):
        scheme = paper_polygen_schema().scheme("PORGANIZATION")
        assert len(scheme.mappings("ONAME")) == 3
        assert len(scheme.mappings("INDUSTRY")) == 2
        assert len(scheme.mappings("CEO")) == 1
        assert len(scheme.mappings("HEADQUARTERS")) == 2

    def test_hq_mapping_declares_transform(self):
        scheme = paper_polygen_schema().scheme("PORGANIZATION")
        firm_hq = [
            m for m in scheme.mappings("HEADQUARTERS") if m.location == ("CD", "FIRM")
        ][0]
        assert firm_hq.transform == "city_state_to_state"

    def test_resolver_canonicalizes_citicorp(self):
        resolver = paper_identity_resolver()
        assert resolver.resolve("CitiCorp") == "Citicorp"

    def test_build_paper_federation_is_ready_to_query(self):
        pqp = build_paper_federation()
        result = pqp.run_sql('SELECT CEO FROM PORGANIZATION WHERE ONAME = "Genentech"')
        assert result.relation.tuples[0].data == ("Bob Swanson",)
