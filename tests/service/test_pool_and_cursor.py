"""Unit tests for the service layer's plumbing: WorkerPool and Cursor."""

import threading
import time

import pytest

from repro.core.relation import PolygenRelation
from repro.errors import ServiceClosedError
from repro.service.cursor import Cursor
from repro.service.pool import WorkerPool


class TestWorkerPool:
    def test_workers_are_created_lazily_per_database(self):
        with WorkerPool() as pool:
            assert pool.worker_count() == 0
            done = threading.Event()
            pool.submit("AD", done.set)
            assert done.wait(2.0)
            assert pool.worker_count() == 1
            pool.submit("AD", lambda: None)
            pool.submit("PD", lambda: None)
        assert pool.worker_count() == 2

    def test_same_database_jobs_serialize_in_order(self):
        order = []
        done = threading.Event()
        with WorkerPool() as pool:
            for i in range(20):
                pool.submit("AD", lambda i=i: order.append(i))
            pool.submit("AD", done.set)
            assert done.wait(2.0)
        assert order == list(range(20))

    def test_different_databases_overlap(self):
        barrier = threading.Barrier(2, timeout=2.0)
        with WorkerPool() as pool:
            results = []
            for name in ("AD", "PD"):
                # Each job blocks until the *other* database's worker
                # arrives — only possible if the two run concurrently.
                pool.submit(name, lambda: results.append(barrier.wait()))
            deadline = time.time() + 2.0
            while len(results) < 2 and time.time() < deadline:
                time.sleep(0.005)
        assert sorted(results) == [0, 1]

    def test_close_drains_queued_jobs(self):
        ran = []
        pool = WorkerPool()
        pool.submit("AD", lambda: time.sleep(0.05))
        pool.submit("AD", lambda: ran.append(True))
        pool.close(wait=True)
        assert ran == [True]

    def test_submit_after_close_raises(self):
        pool = WorkerPool()
        pool.close()
        with pytest.raises(ServiceClosedError):
            pool.submit("AD", lambda: None)
        pool.close()  # idempotent

    def test_thread_names_are_stable_and_prefixed(self):
        with WorkerPool(thread_name_prefix="fed") as pool:
            done = threading.Event()
            pool.submit("CD", done.set)
            assert done.wait(2.0)
            names = pool.thread_names()
            assert len(names) == 1 and "fed" in names[0] and "CD" in names[0]
            pool.submit("CD", lambda: None)
            assert pool.thread_names() == names

    def test_width_grows_a_database_worker_group(self):
        barrier = threading.Barrier(3, timeout=2.0)
        with WorkerPool() as pool:
            results = []
            # Three same-database jobs that can only finish together:
            # impossible on the historical single worker, trivial once the
            # group is width 3 (a remote LQP's native concurrency).
            for _ in range(3):
                pool.submit("AD", lambda: results.append(barrier.wait()), width=3)
            deadline = time.time() + 2.0
            while len(results) < 3 and time.time() < deadline:
                time.sleep(0.005)
            assert sorted(results) == [0, 1, 2]
            assert pool.width("AD") == 3
            assert pool.width("PD") == 0

    def test_width_only_grows_and_names_stay_stable(self):
        with WorkerPool(thread_name_prefix="net") as pool:
            done = threading.Event()
            pool.submit("AD", lambda: None, width=2)
            pool.submit("AD", done.set, width=1)  # narrower: no shrink
            assert done.wait(2.0)
            names = pool.thread_names()
            assert len(names) == 2
            assert any(name.endswith("#2") for name in names)
            pool.submit("AD", lambda: None, width=2)
            assert pool.thread_names() == names

    def test_bad_width_rejected(self):
        with WorkerPool() as pool:
            with pytest.raises(ValueError, match="width"):
                pool.submit("AD", lambda: None, width=0)

    def test_occupancy_counts_queued_and_running(self):
        gate = threading.Event()
        with WorkerPool() as pool:
            pool.submit("AD", lambda: gate.wait(2.0))
            pool.submit("AD", lambda: None)
            deadline = time.time() + 2.0
            while pool.occupancy().get("AD", 0) < 2 and time.time() < deadline:
                time.sleep(0.005)
            assert pool.occupancy()["AD"] == 2  # one running, one queued
            gate.set()

    def test_job_errors_do_not_kill_the_worker(self):
        with WorkerPool() as pool:
            def boom():
                raise RuntimeError("job error")

            # Fire-and-forget jobs are expected to swallow their own
            # errors; a raising job must still leave the worker serving.
            pool.submit("AD", boom)
            done = threading.Event()
            pool.submit("AD", done.set)
            assert done.wait(2.0)


def _relation(n=10):
    return PolygenRelation.from_data(
        ["A", "B"], [(f"a{i}", i) for i in range(n)], origins=["AD"]
    )


class TestCursor:
    def test_fetchone_and_end_of_stream(self):
        cursor = Cursor(fetch_size=3)
        cursor._feed(_relation(2))
        assert cursor.fetchone().data == ("a0", 0)
        assert cursor.fetchone().data == ("a1", 1)
        assert cursor.fetchone() is None
        assert cursor.fetchone() is None  # stays at end

    def test_fetchmany_batches_and_attributes(self):
        cursor = Cursor(fetch_size=4)
        cursor._feed(_relation(10))
        assert cursor.attributes == ("A", "B")
        first = cursor.fetchmany()
        assert [row.data[1] for row in first] == [0, 1, 2, 3]
        assert len(cursor.fetchmany(5)) == 5
        assert len(cursor.fetchmany(5)) == 1
        assert cursor.fetchmany() == []

    def test_fetchall_and_iteration(self):
        cursor = Cursor(fetch_size=3)
        cursor._feed(_relation(7))
        assert len(cursor.fetchall()) == 7
        other = Cursor(fetch_size=2)
        other._feed(_relation(5))
        assert [row.data[1] for row in other] == [0, 1, 2, 3, 4]

    def test_rows_stream_before_the_producer_finishes(self):
        cursor = Cursor(fetch_size=2)

        def produce():
            time.sleep(0.05)
            cursor._feed(_relation(6))

        threading.Thread(target=produce, daemon=True).start()
        rows = cursor.fetchmany(timeout=2.0)
        assert len(rows) == 2

    def test_failure_surfaces_on_fetch(self):
        cursor = Cursor()
        cursor._fail(RuntimeError("query exploded"))
        with pytest.raises(RuntimeError, match="exploded"):
            cursor.fetchone()

    def test_buffered_rows_drain_before_failure(self):
        # A late failure must not eat rows already produced.
        cursor = Cursor(fetch_size=2)
        cursor._feed(_relation(2))
        cursor._fail(RuntimeError("late"))
        assert len(cursor.fetchmany(2)) == 2
        with pytest.raises(RuntimeError, match="late"):
            cursor.fetchone()

    def test_close_refuses_further_fetches(self):
        cursor = Cursor()
        cursor._feed(_relation(3))
        cursor.close()
        with pytest.raises(ServiceClosedError):
            cursor.fetchone()

    def test_fetch_timeout(self):
        cursor = Cursor()
        with pytest.raises(TimeoutError):
            cursor.fetchone(timeout=0.05)
