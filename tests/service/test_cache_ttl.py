"""TTL / staleness bounds on the semantic result cache.

Precise tag invalidation assumes every write is announced.  Backends
whose capabilities report ``signals_writes=False`` (an on-disk SQLite
file, a log directory) break that assumption, so entries touching them
carry a deadline: ``max_age`` on ``put``, a per-database
``set_max_age`` policy, or the cache-wide ``default_max_age`` — the
tightest wins, and an expired entry is dropped and counted a miss.

The clock is injected, so every test here is deterministic.
"""

import pytest

from repro.backends import KVStoreLQP, LogStoreLQP
from repro.datasets.paper import (
    paper_databases,
    paper_identity_resolver,
    paper_polygen_schema,
)
from repro.lqp.registry import LQPRegistry
from repro.lqp.relational_lqp import RelationalLQP
from repro.relational.database import LocalDatabase
from repro.relational.relation import Relation
from repro.relational.schema import RelationSchema
from repro.service.cache import ResultCache
from repro.service.federation import PolygenFederation
from repro.service.options import QueryOptions


class FakeClock:
    def __init__(self):
        self.now = 100.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


@pytest.fixture()
def clock():
    return FakeClock()


def _fill(cache, fingerprint="fp", sources=("AD",), **kwargs):
    relation = Relation(["A"], [(1,)])
    assert cache.put(fingerprint, relation, {}, set(sources), **kwargs)


class TestEntryExpiry:
    def test_unbounded_entries_never_expire(self, clock):
        cache = ResultCache(clock=clock)
        _fill(cache)
        clock.advance(1e9)
        assert cache.lookup("fp") is not None
        assert cache.stats().expired == 0

    def test_max_age_expires_the_entry(self, clock):
        cache = ResultCache(clock=clock)
        _fill(cache, max_age=10.0)
        clock.advance(9.999)
        assert cache.lookup("fp") is not None
        clock.advance(0.002)
        assert cache.lookup("fp") is None
        stats = cache.stats()
        assert stats.expired == 1
        assert stats.misses == 1
        assert stats.entries == 0

    def test_expiry_releases_the_bytes(self, clock):
        cache = ResultCache(clock=clock)
        _fill(cache, max_age=1.0)
        assert cache.stats().bytes > 0
        clock.advance(2.0)
        cache.lookup("fp")
        assert cache.stats().bytes == 0

    def test_contains_respects_expiry_without_counting(self, clock):
        cache = ResultCache(clock=clock)
        _fill(cache, max_age=1.0)
        assert "fp" in cache
        clock.advance(2.0)
        assert "fp" not in cache
        assert cache.stats().misses == 0

    def test_splice_probe_drops_expired_without_a_miss(self, clock):
        cache = ResultCache(clock=clock)
        _fill(cache, max_age=1.0)
        clock.advance(2.0)
        assert cache.splice_probe("fp") is None
        stats = cache.stats()
        assert stats.expired == 1
        assert stats.misses == 0

    def test_refill_resets_the_deadline(self, clock):
        cache = ResultCache(clock=clock)
        _fill(cache, max_age=10.0)
        clock.advance(8.0)
        _fill(cache, max_age=10.0)  # refreshed fill, new deadline
        clock.advance(8.0)
        assert cache.lookup("fp") is not None


class TestPolicyBounds:
    def test_per_database_policy_applies_to_tagged_entries(self, clock):
        cache = ResultCache(clock=clock)
        cache.set_max_age("PD", 5.0)
        _fill(cache, "touched", sources=("AD", "PD"))
        _fill(cache, "untouched", sources=("AD",))
        clock.advance(6.0)
        assert cache.lookup("touched") is None
        assert cache.lookup("untouched") is not None

    def test_tightest_bound_wins(self, clock):
        cache = ResultCache(clock=clock)
        cache.set_max_age("PD", 5.0)
        _fill(cache, sources=("PD",), max_age=60.0)
        clock.advance(6.0)
        assert cache.lookup("fp") is None

    def test_default_max_age_bounds_every_fill(self, clock):
        cache = ResultCache(default_max_age=3.0, clock=clock)
        _fill(cache)
        clock.advance(4.0)
        assert cache.lookup("fp") is None

    def test_policy_can_be_removed(self, clock):
        cache = ResultCache(clock=clock)
        cache.set_max_age("AD", 5.0)
        assert cache.max_age_for("AD") == 5.0
        cache.set_max_age("AD", None)
        assert cache.max_age_for("AD") is None
        _fill(cache)
        clock.advance(1e6)
        assert cache.lookup("fp") is not None

    @pytest.mark.parametrize("bad", [0, -1.5])
    def test_non_positive_bounds_are_rejected(self, bad):
        cache = ResultCache()
        with pytest.raises(ValueError):
            cache.set_max_age("AD", bad)
        with pytest.raises(ValueError):
            ResultCache(default_max_age=bad)


class TestFederationStalenessPolicy:
    """The federation derives TTLs from backend capabilities."""

    def _federation(self, cache=None, **kwargs):
        registry = LQPRegistry()
        for database in paper_databases().values():
            registry.register(RelationalLQP(database))
        return PolygenFederation(
            paper_polygen_schema(),
            registry,
            resolver=paper_identity_resolver(),
            result_cache=cache,
            **kwargs,
        )

    def test_write_signalling_sources_get_no_ttl(self):
        with self._federation() as federation:
            assert federation._staleness_bound({"AD", "PD"}) is None

    def test_silent_sources_get_the_default_ttl(self, tmp_path):
        db = LocalDatabase("LG")
        db.load(RelationSchema("R", ["K"], key=["K"]), [(1,)])
        with self._federation() as federation:
            federation.registry.register(
                LogStoreLQP.from_database(db, str(tmp_path / "log"))
            )
            assert federation._staleness_bound({"AD", "LG"}) == 60.0
            assert federation._staleness_bound({"AD"}) is None

    def test_explicit_cache_policy_overrides_the_default(self, tmp_path):
        db = LocalDatabase("LG")
        db.load(RelationSchema("R", ["K"], key=["K"]), [(1,)])
        with self._federation() as federation:
            federation.registry.register(
                LogStoreLQP.from_database(db, str(tmp_path / "log"))
            )
            federation.cache.set_max_age("LG", 5.0)
            # The cache applies its own per-database bound; the federation
            # must not stack the blunter default on top.
            assert federation._staleness_bound({"LG"}) is None

    def test_unregistered_sources_are_not_bounded(self):
        with self._federation() as federation:
            assert federation._staleness_bound({"GHOST"}) is None

    def test_source_max_age_none_disables_the_safety_net(self, tmp_path):
        db = LocalDatabase("LG")
        db.load(RelationSchema("R", ["K"], key=["K"]), [(1,)])
        with self._federation(source_max_age=None) as federation:
            federation.registry.register(
                LogStoreLQP.from_database(db, str(tmp_path / "log"))
            )
            assert federation._staleness_bound({"LG"}) is None

    def test_invalid_source_max_age_is_rejected(self):
        with pytest.raises(ValueError, match="source_max_age"):
            self._federation(source_max_age=0)

    def test_kv_sources_signal_writes_and_stay_unbounded(self):
        db = LocalDatabase("KV")
        db.load(RelationSchema("R", ["K"], key=["K"]), [(1,)])
        with self._federation() as federation:
            federation.registry.register(KVStoreLQP.from_database(db))
            assert federation._staleness_bound({"KV"}) is None


class TestEndToEndExpiry:
    def test_log_backed_results_expire_instead_of_serving_stale(self, tmp_path):
        """A federation over a log store caches with a TTL: a repeat query
        hits until the clock passes ``source_max_age``, then recomputes —
        and observes rows appended out of band in the meantime."""
        clock = FakeClock()
        databases = paper_databases()
        registry = LQPRegistry()
        registry.register(RelationalLQP(databases["AD"]))
        registry.register(RelationalLQP(databases["CD"]))
        log = LogStoreLQP.from_database(databases["PD"], str(tmp_path / "pd"))
        registry.register(log)
        with PolygenFederation(
            paper_polygen_schema(),
            registry,
            resolver=paper_identity_resolver(),
            defaults=QueryOptions(cache="on"),
            result_cache=ResultCache(clock=clock),
            source_max_age=30.0,
        ) as federation:
            query = '(PSTUDENT [MAJOR = "IS"])'
            first = federation.run(query)
            assert not first.cache_hit
            assert federation.run(query).cache_hit

            clock.advance(31.0)
            stale = federation.run(query)
            assert not stale.cache_hit, "expired entry served anyway"
            assert federation.cache.stats().expired >= 1
            assert stale.relation == first.relation

            # The recomputation re-reads the source, so an out-of-band
            # append shows up after the next expiry.
            log.append("STUDENT", [("999", "Eve Late", 3.9, "IS")])
            assert federation.run(query).cache_hit  # still within bound
            clock.advance(31.0)
            refreshed = federation.run(query)
            assert not refreshed.cache_hit
            assert refreshed.relation.cardinality == first.relation.cardinality + 1
