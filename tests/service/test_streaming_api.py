"""The redesigned streaming API: ``chunks()``, ``stream()``, wire/stream
options, and the closed/cancelled cursor semantics.

Complements ``test_pool_and_cursor.py`` (cursor internals) and
``test_federation.py`` (service lifecycle): these tests drive the new
chunk-wise surface end to end through sessions and handles.
"""

import threading

import pytest

from repro.core.relation import PolygenRelation
from repro.datasets.paper import (
    paper_databases,
    paper_identity_resolver,
    paper_polygen_schema,
)
from repro.errors import QueryCancelledError, ServiceClosedError
from repro.lqp.cost import LatencyLQP
from repro.lqp.registry import LQPRegistry
from repro.lqp.relational_lqp import RelationalLQP
from repro.service.cursor import Cursor
from repro.service.federation import PolygenFederation
from repro.service.options import QueryOptions

#: A streamable-spine query: one retrieve, a PQP select, a projection.
SPINE_SQL = 'SELECT ANAME, MAJOR FROM PALUMNUS WHERE DEGREE = "MBA"'
#: A Merge-bearing query: falls back to whole-relation delivery.
JOIN_ALGEBRA = "(PALUMNUS [DEGREE = \"MBA\"]) [AID# = AID#] PCAREER"


def _federation(latency=0.0, **kwargs) -> PolygenFederation:
    registry = LQPRegistry()
    for database in paper_databases().values():
        lqp = RelationalLQP(database)
        registry.register(LatencyLQP(lqp, per_query=latency) if latency else lqp)
    return PolygenFederation(
        paper_polygen_schema(),
        registry,
        resolver=paper_identity_resolver(),
        **kwargs,
    )


class TestChunksIterator:
    def test_chunks_are_columnar_batches_with_tags(self):
        with _federation() as federation:
            with federation.session(stream_chunk_size=2) as session:
                handle = session.submit(SPINE_SQL)
                batches = list(handle.stream().chunks(timeout=30))
                result = handle.result(timeout=30)
        assert len(batches) > 1  # pipelined: several batches, not one
        assert all(isinstance(batch, PolygenRelation) for batch in batches)
        rows = [row for batch in batches for row in batch.tuples]
        assert rows == list(result.relation.tuples)
        cell = rows[0][0]
        assert cell.origins  # tags crossed the streaming path intact

    def test_stream_is_the_cursor(self):
        with _federation() as federation, federation.session() as session:
            handle = session.submit(SPINE_SQL)
            assert handle.stream() is handle.cursor()
            handle.result(timeout=30)

    def test_unstreamable_plan_still_delivers_chunks(self):
        with _federation() as federation:
            with federation.session(fetch_size=3) as session:
                handle = session.submit(JOIN_ALGEBRA)
                batches = list(handle.stream().chunks(timeout=30))
                result = handle.result(timeout=30)
        rows = [row for batch in batches for row in batch.tuples]
        assert rows == list(result.relation.tuples)
        assert all(batch.cardinality <= 3 for batch in batches)

    def test_rows_and_chunks_partition_one_stream(self):
        with _federation() as federation:
            with federation.session(stream_chunk_size=2) as session:
                handle = session.submit(SPINE_SQL)
                result = handle.result(timeout=30)
                cursor = handle.cursor()
                first = cursor.fetchone(timeout=30)
                rest = [row for batch in cursor.chunks(timeout=30) for row in batch.tuples]
        # fetchone consumed its whole batch into the row buffer; chunks()
        # drains the remaining batches — together they cover everything
        # exactly once, in order.
        leftover = len(result.relation.tuples) - 1 - len(rest)
        assert 0 <= leftover < 2  # the partially fetched batch stays row-side
        assert [first] + rest != []
        all_rows = list(result.relation.tuples)
        assert first == all_rows[0]
        assert rest == all_rows[len(all_rows) - len(rest):]

    def test_empty_result_yields_no_chunks(self):
        with _federation() as federation, federation.session() as session:
            handle = session.submit('SELECT ANAME FROM PALUMNUS WHERE DEGREE = "NOPE"')
            assert list(handle.stream().chunks(timeout=30)) == []
            assert handle.result(timeout=30).relation.cardinality == 0


class TestStreamingOptions:
    def test_new_fields_validate(self):
        assert QueryOptions().wire_format == "auto"
        assert QueryOptions().stream_chunk_size == 1024
        with pytest.raises(ValueError, match="wire_format"):
            QueryOptions(wire_format="avro")
        with pytest.raises(ValueError, match="wire_format"):
            QueryOptions(wire_format=2)
        with pytest.raises(ValueError, match="stream_chunk_size"):
            QueryOptions(stream_chunk_size=0)
        with pytest.raises(ValueError, match="stream_chunk_size"):
            QueryOptions(stream_chunk_size=True)

    def test_override_chain_defaults_session_submit(self):
        defaults = QueryOptions(stream_chunk_size=500, wire_format="json")
        with _federation(defaults=defaults) as federation:
            session = federation.session(stream_chunk_size=200)
            assert session.defaults.stream_chunk_size == 200  # session wins
            assert session.defaults.wire_format == "json"  # inherited
            # submit-level override wins over both; chunk size 2 must show
            # up as several small batches.
            handle = session.submit(SPINE_SQL, stream_chunk_size=2)
            batches = list(handle.stream().chunks(timeout=30))
            assert len(batches) > 1
            assert all(batch.cardinality <= 2 for batch in batches)

    def test_wire_format_choices_agree_in_process(self):
        with _federation() as federation, federation.session() as session:
            results = {
                fmt: session.execute(SPINE_SQL, wire_format=fmt, timeout=30)
                for fmt in ("auto", "json", "binary")
            }
        relations = [r.relation for r in results.values()]
        assert relations[0] == relations[1] == relations[2]


class TestClosedAndCancelled:
    def test_fetch_after_session_close_raises_service_closed(self):
        with _federation() as federation:
            session = federation.session()
            handle = session.submit(SPINE_SQL)
            handle.result(timeout=30)
            cursor = handle.cursor()
            session.close()
            with pytest.raises(ServiceClosedError, match="session"):
                cursor.fetchmany(timeout=30)
            with pytest.raises(ServiceClosedError, match="session"):
                list(cursor)
            with pytest.raises(ServiceClosedError, match="session"):
                next(cursor.chunks(timeout=30))

    def test_chunks_surface_cancellation_not_hang(self):
        # Unit-level determinism: a producer feeds one batch, then the
        # query is cancelled mid-stream.  chunks() must yield the buffered
        # batch and then raise — never block forever.
        cursor = Cursor(fetch_size=2)
        batch = PolygenRelation.from_data(
            ["A"], [("x",), ("y",)], origins=["AD"]
        )
        cursor._feed_chunk(batch)
        cursor._fail(QueryCancelledError("query cancelled"))
        stream = cursor.chunks(timeout=5)
        assert next(stream).cardinality == 2
        with pytest.raises(QueryCancelledError):
            next(stream)

    def test_cancelled_query_chunks_raise_through_the_service(self):
        with _federation(latency=0.25) as federation:
            session = federation.session()
            handle = session.submit(SPINE_SQL)
            handle.cancel()
            with pytest.raises(QueryCancelledError):
                for _ in handle.stream().chunks(timeout=30):
                    pass

    def test_close_reason_defaults_to_plain_message(self):
        cursor = Cursor()
        cursor.close()
        with pytest.raises(ServiceClosedError, match="cursor is closed"):
            cursor.fetchone()
