"""Multi-user stress: one federation, many sessions, zero thread churn.

The acceptance bar for the service redesign: one
:class:`~repro.service.federation.PolygenFederation` serves at least eight
concurrent sessions with results tag-identical to the serial executor, its
per-database worker pool survives across queries (no thread creation after
warmup), and shutdown through the context manager leaves nothing running.
"""

import threading

import pytest

from repro.datasets.paper import (
    build_paper_federation,
    paper_databases,
    paper_identity_resolver,
    paper_polygen_schema,
)
from repro.lqp.registry import LQPRegistry
from repro.lqp.relational_lqp import RelationalLQP
from repro.service.federation import PolygenFederation

from tests.integration.conftest import PAPER_SQL

#: Concurrent sessions (the acceptance floor is 8) × queries per session.
SESSIONS = 8
QUERIES_PER_SESSION = 3

#: A mixed workload: SQL and algebra, joins, merges, pushdown-eligible
#: selections — every query exercises tags across all three databases.
WORKLOAD = [
    PAPER_SQL,
    '((((PALUMNUS [DEGREE = "MBA"]) [AID# = AID#] PCAREER)'
    " [ONAME = ONAME] PORGANIZATION) [CEO = ANAME]) [ONAME, CEO]",
    "(PORGANIZATION [ONAME, INDUSTRY, CEO])",
    '(PCAREER [POSITION = "CEO"]) [ONAME]',
    'SELECT ONAME, HEADQUARTERS FROM PORGANIZATION WHERE INDUSTRY = "Banking"',
]


def _federation(**kwargs) -> PolygenFederation:
    registry = LQPRegistry()
    for database in paper_databases().values():
        registry.register(RelationalLQP(database))
    return PolygenFederation(
        paper_polygen_schema(),
        registry,
        resolver=paper_identity_resolver(),
        **kwargs,
    )


@pytest.fixture(scope="module")
def serial_reference():
    """Every workload query answered by the serial, single-user facade."""
    facade = build_paper_federation()
    return [
        facade.run_sql(q) if q.lstrip().upper().startswith("SELECT") else facade.run_algebra(q)
        for q in WORKLOAD
    ]


def test_eight_sessions_concurrent_submits_are_tag_identical(serial_reference):
    """N session threads × M in-flight submits each: every result —
    relation, tags, lineage — equals the serial executor's."""
    failures = []
    with _federation(max_concurrent_queries=SESSIONS) as federation:

        def user(user_index: int) -> None:
            try:
                with federation.session(name=f"user-{user_index}") as session:
                    picks = [
                        (user_index + offset) % len(WORKLOAD)
                        for offset in range(QUERIES_PER_SESSION)
                    ]
                    handles = [(pick, session.submit(WORKLOAD[pick])) for pick in picks]
                    for pick, handle in handles:
                        result = handle.result(timeout=60)
                        expected = serial_reference[pick]
                        assert result.relation == expected.relation, WORKLOAD[pick]
                        assert result.lineage == expected.lineage, WORKLOAD[pick]
            except BaseException as exc:  # surfaces in the main thread
                failures.append((user_index, exc))

        threads = [
            threading.Thread(target=user, args=(index,), name=f"stress-user-{index}")
            for index in range(SESSIONS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
        assert not any(thread.is_alive() for thread in threads)
        stats = federation.stats()

    assert not failures, failures[:3]
    assert stats.queries_submitted == SESSIONS * QUERIES_PER_SESSION
    assert stats.queries_completed == SESSIONS * QUERIES_PER_SESSION
    assert stats.queries_failed == 0


def test_worker_pool_survives_across_queries_without_churn():
    """After one warmup query the pool owns exactly one thread per
    database, and many further queries reuse those same threads."""
    with _federation() as federation:
        session = federation.session()
        session.execute(PAPER_SQL)  # warmup: creates the per-DB workers
        warm_names = federation.pool.thread_names()
        assert len(warm_names) == 3  # AD, PD, CD
        warm_threads = {
            t.name: t.ident for t in threading.enumerate() if t.name in warm_names
        }

        for round_index in range(10):
            session.execute(WORKLOAD[round_index % len(WORKLOAD)])

        assert federation.pool.thread_names() == warm_names
        after = {
            t.name: t.ident for t in threading.enumerate() if t.name in warm_names
        }
        # Same names AND same thread identities: nothing was respawned.
        assert after == warm_threads


def test_context_manager_shutdown_is_clean():
    with _federation() as federation:
        with federation.session() as session:
            handles = [session.submit(q) for q in WORKLOAD]
            for handle in handles:
                handle.result(timeout=60)
        worker_names = set(federation.pool.thread_names())
    # The with-block closed the federation: pool refuses work, workers
    # joined, sessions detached.
    assert federation.closed and federation.pool.closed
    assert not (worker_names & {t.name for t in threading.enumerate()})
    assert federation.stats().sessions_open == 0
