"""Unit tests for the PolygenFederation service API."""

import threading

import pytest

from repro.core.cell import ConflictPolicy
from repro.datasets.paper import (
    build_paper_federation,
    paper_databases,
    paper_identity_resolver,
    paper_polygen_schema,
)
from repro.errors import (
    ExecutionError,
    QueryCancelledError,
    ServiceClosedError,
    TranslationError,
)
from repro.lqp.cost import LatencyLQP
from repro.lqp.registry import LQPRegistry
from repro.lqp.relational_lqp import RelationalLQP
from repro.pqp.runtime import ConcurrentExecutor
from repro.service.federation import PolygenFederation
from repro.service.options import QueryOptions

from tests.integration.conftest import PAPER_SQL

PAPER_ALGEBRA = (
    '((((PALUMNUS [DEGREE = "MBA"]) [AID# = AID#] PCAREER)'
    " [ONAME = ONAME] PORGANIZATION) [CEO = ANAME]) [ONAME, CEO]"
)


def _registry(latency=0.0) -> LQPRegistry:
    registry = LQPRegistry()
    for database in paper_databases().values():
        lqp = RelationalLQP(database)
        registry.register(LatencyLQP(lqp, per_query=latency) if latency else lqp)
    return registry


def _federation(latency=0.0, **kwargs) -> PolygenFederation:
    return PolygenFederation(
        paper_polygen_schema(),
        _registry(latency),
        resolver=paper_identity_resolver(),
        **kwargs,
    )


@pytest.fixture(scope="module")
def reference():
    """The serial facade's answer to the paper's query — the tag oracle."""
    return build_paper_federation().run_sql(PAPER_SQL)


class TestQueryOptions:
    def test_defaults(self):
        options = QueryOptions()
        assert options.engine == "concurrent"
        assert options.optimize and options.pushdown
        assert not options.prune_projections
        assert options.policy is ConflictPolicy.DROP

    def test_replace_resolves_overrides(self):
        base = QueryOptions()
        assert base.replace() is base
        tuned = base.replace(engine="serial", fetch_size=7)
        assert (tuned.engine, tuned.fetch_size) == ("serial", 7)
        assert base.engine == "concurrent"  # immutable

    def test_validation(self):
        with pytest.raises(ValueError, match="engine"):
            QueryOptions(engine="warp")
        with pytest.raises(ValueError, match="fetch_size"):
            QueryOptions(fetch_size=0)
        with pytest.raises(ValueError, match="no_such_flag"):
            QueryOptions().replace(no_such_flag=True)

    def test_ill_typed_fields_rejected_by_name(self):
        # A knob that would merely truthy-coerce must fail loudly, naming
        # the field: these options flow through three defaulting levels,
        # so a silent coercion is a query running with behaviour nobody
        # asked for.
        with pytest.raises(ValueError, match="pushdown"):
            QueryOptions(pushdown="no")
        with pytest.raises(ValueError, match="prune_projections"):
            QueryOptions(prune_projections=1)
        with pytest.raises(ValueError, match="policy"):
            QueryOptions(policy="drop")
        with pytest.raises(ValueError, match="fetch_size"):
            QueryOptions(fetch_size="64")
        with pytest.raises(ValueError, match="fetch_size"):
            QueryOptions(fetch_size=True)
        with pytest.raises(ValueError, match="optimize"):
            QueryOptions(optimize="fast")
        assert QueryOptions(optimize=1).optimize  # historical facade tolerance
        with pytest.raises(ValueError, match="engine"):
            QueryOptions(engine=0)

    def test_typoed_override_raises_not_noop(self):
        base = QueryOptions()
        with pytest.raises(ValueError, match="engin"):
            base.replace(engin="serial")


class TestSubmission:
    def test_sql_submission_matches_facade(self, reference):
        with _federation() as federation, federation.session() as session:
            result = session.execute(PAPER_SQL)
        assert result.relation == reference.relation
        assert result.lineage == reference.lineage
        assert result.sql == PAPER_SQL and result.translation is not None

    def test_algebra_text_and_tree_submissions(self, reference):
        with _federation() as federation, federation.session() as session:
            from_text = session.execute(PAPER_ALGEBRA)
            tree, _ = federation.analyze(PAPER_ALGEBRA)
            from_tree = session.execute(tree)
        assert from_text.relation == reference.relation
        assert from_tree.relation == reference.relation

    def test_plan_submission_executes_as_given(self, reference):
        with _federation() as federation, federation.session() as session:
            _, pom = federation.analyze(PAPER_ALGEBRA)
            iom = federation.plan(pom)
            result = session.execute(iom)
        assert result.relation == reference.relation
        assert result.optimization is None  # plans run without optimization
        assert result.pom is None and result.expression is None

    def test_unsupported_query_type_raises(self):
        with _federation() as federation, federation.session() as session:
            with pytest.raises(TypeError, match="submit"):
                session.submit(12345)

    def test_handle_is_future_like(self):
        with _federation() as federation, federation.session() as session:
            handle = session.submit(PAPER_SQL)
            result = handle.result(timeout=30)
            assert handle.done() and not handle.cancelled()
            assert handle.exception() is None
            assert result.relation.cardinality > 0

    def test_per_submit_engine_override(self, reference):
        with _federation() as federation, federation.session() as session:
            serial = session.execute(PAPER_SQL, engine="serial")
            concurrent = session.execute(PAPER_SQL, engine="concurrent")
        assert serial.relation == concurrent.relation == reference.relation
        assert {t.worker for t in serial.trace.timings.values()} == {"serial"}
        assert any(
            t.worker != "serial" for t in concurrent.trace.timings.values()
        )

    def test_session_option_specialization(self):
        with _federation() as federation:
            session = federation.session(engine="serial", prune_projections=True)
            assert session.defaults.engine == "serial"
            assert session.defaults.prune_projections
            result = session.execute(PAPER_ALGEBRA)
            assert result.optimization.attributes_pruned > 0

    def test_translation_errors_propagate_through_handles(self):
        with _federation() as federation, federation.session() as session:
            handle = session.submit("SELECT NOPE FROM NOWHERE")
            with pytest.raises(TranslationError):
                handle.result(timeout=30)
            assert isinstance(handle.exception(), TranslationError)

    def test_cost_based_optimization_through_sessions(self, reference):
        from repro.pqp.optimizer import ShapeChoice

        with _federation() as federation:
            with federation.session(optimize="cost") as session:
                first = session.execute(PAPER_SQL)
                # Calibrated on the first query's trace, re-planned here.
                second = session.execute(PAPER_SQL)
            # Per-submit override works too.
            with federation.session() as session:
                third = session.execute(PAPER_SQL, optimize="cost")
            stats = federation.stats()
        for result in (first, second, third):
            assert result.relation == reference.relation
            assert result.lineage == reference.lineage
            assert isinstance(result.optimization, ShapeChoice)
            assert result.optimization.predicted_makespan > 0
        assert stats.plans_calibrated == 3
        assert set(stats.calibrated_models) == {"AD", "PD", "CD"}


class TestStreamingCursor:
    def test_cursor_streams_all_rows(self, reference):
        with _federation() as federation, federation.session() as session:
            rows = list(session.cursor(PAPER_SQL, fetch_size=2))
        assert len(rows) == reference.relation.cardinality
        assert {row.data for row in rows} == {
            t.data for t in reference.relation.tuples
        }

    def test_cursor_failure_propagates(self):
        with _federation() as federation, federation.session() as session:
            cursor = session.cursor("SELECT NOPE FROM NOWHERE")
            with pytest.raises(TranslationError):
                cursor.fetchall(timeout=30)

    def test_fetchmany_respects_fetch_size_option(self):
        with _federation() as federation, federation.session() as session:
            handle = session.submit('PORGANIZATION [INDUSTRY = "High Tech"]', fetch_size=3)
            cursor = handle.cursor()
            batch = cursor.fetchmany(timeout=30)
            assert 0 < len(batch) <= 3


class TestCancellation:
    def test_cancel_running_query(self):
        with _federation(latency=0.25) as federation:
            session = federation.session()
            handle = session.submit(PAPER_SQL)
            assert handle.cancel()
            with pytest.raises(QueryCancelledError):
                handle.result(timeout=30)
            assert handle.cancelled()
            with pytest.raises(QueryCancelledError):
                handle.cursor().fetchall(timeout=30)

    def test_cancel_queued_query_never_runs(self):
        with _federation(latency=0.2, max_concurrent_queries=1) as federation:
            session = federation.session()
            running = session.submit(PAPER_SQL)
            queued = session.submit(PAPER_SQL)
            assert queued.cancel()
            assert queued.cancelled()
            with pytest.raises(QueryCancelledError):
                queued.result(timeout=30)
            running.result(timeout=60)  # the first query is unharmed

    def test_cancel_after_completion_returns_false(self):
        with _federation() as federation, federation.session() as session:
            handle = session.submit(PAPER_SQL)
            handle.result(timeout=30)
            assert not handle.cancel()
            assert not handle.cancelled()

    def test_federation_survives_cancellation(self, reference):
        with _federation(latency=0.05) as federation:
            session = federation.session()
            session.submit(PAPER_SQL).cancel()
            result = session.execute(PAPER_SQL)
        assert result.relation == reference.relation


class TestLifecycleAndStats:
    def test_closed_federation_refuses_work(self):
        federation = _federation()
        session = federation.session()
        federation.close()
        assert federation.closed
        with pytest.raises(ServiceClosedError):
            federation.session()
        with pytest.raises(ServiceClosedError):
            session.submit(PAPER_SQL)
        federation.close()  # idempotent

    def test_close_joins_worker_threads(self):
        federation = _federation()
        session = federation.session()
        session.execute(PAPER_SQL)
        workers = federation.pool.thread_names()
        assert workers  # warmup created the per-database workers
        federation.close()
        assert federation.pool.closed
        alive = {t.name for t in threading.enumerate()}
        assert not (set(workers) & alive)

    def test_dropped_sessions_are_not_pinned(self):
        import gc

        with _federation() as federation:
            for _ in range(10):
                session = federation.session()
                session.execute(PAPER_ALGEBRA)
                del session  # dropped without close()
            gc.collect()
            assert federation.stats().sessions_open == 0

    def test_session_close_detaches(self):
        with _federation() as federation:
            session = federation.session(name="alice")
            assert federation.stats().sessions_open == 1
            session.close()
            assert session.closed
            assert federation.stats().sessions_open == 0
            with pytest.raises(ServiceClosedError):
                session.submit(PAPER_SQL)

    def test_stats_count_outcomes(self):
        with _federation() as federation:
            session = federation.session()
            session.execute(PAPER_SQL)
            session.execute(PAPER_ALGEBRA)
            with pytest.raises(TranslationError):
                session.execute("SELECT NOPE FROM NOWHERE")
            stats = federation.stats()
        assert stats.queries_submitted == 3
        assert stats.queries_completed == 2
        assert stats.queries_failed == 1
        assert stats.queries_active == 0
        assert stats.uptime_seconds > 0

    def test_stats_report_utilization_and_traffic(self):
        with _federation() as federation:
            federation.session().execute(PAPER_SQL)
            stats = federation.stats()
        # Every location that did measured work shows up, including the PQP.
        assert {"AD", "PD", "CD", "PQP"} <= set(stats.busy_by_location)
        assert all(busy >= 0 for busy in stats.busy_by_location.values())
        assert set(stats.utilization()) == set(stats.busy_by_location)
        assert stats.lqp_queries["AD"] >= 2  # ALUMNUS select + CAREER retrieve
        assert stats.lqp_tuples_shipped["CD"] > 0
        assert len(stats.worker_threads) == 3
        assert stats.render()

    def test_validate_feeds_schedule_model(self):
        with _federation() as federation:
            result = federation.session().execute(PAPER_SQL)
            validation = federation.validate(result)
        assert validation.measured_makespan > 0
        assert validation.simulated_makespan > 0

    def test_empty_plan_raises_execution_error(self):
        from repro.pqp.matrix import IntermediateOperationMatrix

        with _federation() as federation, federation.session() as session:
            with pytest.raises(ExecutionError, match="empty"):
                session.execute(IntermediateOperationMatrix())


class TestSynchronousRun:
    def test_run_executes_on_the_calling_thread(self, reference):
        with _federation() as federation:
            result = federation.run(PAPER_SQL)
            assert result.relation == reference.relation
            stats = federation.stats()
        assert stats.queries_submitted == stats.queries_completed == 1

    def test_run_counts_failures(self):
        with _federation() as federation:
            with pytest.raises(TranslationError):
                federation.run("SELECT NOPE FROM NOWHERE")
            assert federation.stats().queries_failed == 1

    def test_run_on_closed_federation_raises(self):
        federation = _federation()
        federation.close()
        with pytest.raises(ServiceClosedError):
            federation.run(PAPER_SQL)


class TestFacadeOverFederation:
    def test_facade_exposes_its_federation(self):
        pqp = build_paper_federation()
        assert pqp.federation.defaults.engine == "serial"
        assert not isinstance(pqp.executor, ConcurrentExecutor)

    def test_serial_facade_spawns_no_threads(self):
        before = threading.active_count()
        for _ in range(5):
            pqp = build_paper_federation()
            pqp.run_sql(PAPER_SQL)
        # The historical facade held zero threads for the serial engine;
        # the federation-backed facade must not regress that (no
        # coordinator threads, no pool workers on the serial path).
        assert threading.active_count() == before

    def test_dropped_concurrent_facade_releases_its_workers(self):
        import gc
        import time

        from repro.pqp.processor import PolygenQueryProcessor

        before = threading.active_count()
        for _ in range(3):
            pqp = PolygenQueryProcessor(
                paper_polygen_schema(),
                _registry(),
                resolver=paper_identity_resolver(),
                concurrent=True,
            )
            pqp.run_sql(PAPER_SQL)
            del pqp  # dropped without close(): the pool finalizer must fire
        gc.collect()
        # The stop sentinels are asynchronous; give the workers a moment.
        deadline = time.time() + 5.0
        while threading.active_count() > before and time.time() < deadline:
            time.sleep(0.01)
        assert threading.active_count() == before

    def test_concurrent_facade_shares_the_pool(self):
        registry = _registry()
        from repro.pqp.processor import PolygenQueryProcessor

        with PolygenQueryProcessor(
            paper_polygen_schema(),
            registry,
            resolver=paper_identity_resolver(),
            concurrent=True,
        ) as pqp:
            assert isinstance(pqp.executor, ConcurrentExecutor)
            assert pqp.executor.pool is pqp.federation.pool
            first = pqp.run_sql(PAPER_SQL)
            warm = pqp.federation.pool.thread_names()
            second = pqp.run_sql(PAPER_SQL)
            assert pqp.federation.pool.thread_names() == warm
        assert first.relation == second.relation
