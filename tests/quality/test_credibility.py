"""Unit tests for credibility scoring and conflict resolution."""

import pytest

from repro.core.cell import Cell
from repro.core.relation import PolygenRelation
from repro.core.tags import sources
from repro.errors import InvalidOperandError, PolygenError
from repro.quality.credibility import (
    CredibilityModel,
    credibility_coalesce,
    credibility_merge,
)


def cell(datum, origins=(), intermediates=()):
    return Cell.of(datum, origins, intermediates)


class TestModel:
    def test_scores_and_default(self):
        model = CredibilityModel({"CD": 0.9}, default=0.4)
        assert model.score("CD") == 0.9
        assert model.score("XX") == 0.4

    def test_score_bounds_enforced(self):
        with pytest.raises(PolygenError):
            CredibilityModel({"CD": 1.5})
        with pytest.raises(PolygenError):
            CredibilityModel(default=-0.1)
        model = CredibilityModel()
        with pytest.raises(PolygenError):
            model.set_score("AD", 2.0)

    def test_cell_score_uses_best_origin(self):
        model = CredibilityModel({"AD": 0.2, "CD": 0.9})
        corroborated = cell("x", ["AD", "CD"])
        assert model.cell_score(corroborated) == 0.9

    def test_nil_cell_scores_zero(self):
        assert CredibilityModel().cell_score(Cell.nil()) == 0.0

    def test_tuple_score_is_weakest_link(self):
        model = CredibilityModel({"AD": 0.2, "CD": 0.9})
        relation = PolygenRelation.from_cells(
            ["A", "B"], [[cell("x", ["CD"]), cell("y", ["AD"])]]
        )
        assert model.tuple_score(relation.tuples[0]) == 0.2

    def test_tuple_score_ignores_nil_cells(self):
        model = CredibilityModel({"CD": 0.9})
        relation = PolygenRelation.from_cells(
            ["A", "B"], [[cell("x", ["CD"]), Cell.nil()]]
        )
        assert model.tuple_score(relation.tuples[0]) == 0.9

    def test_rank_most_credible_first(self):
        model = CredibilityModel({"AD": 0.2, "CD": 0.9})
        relation = PolygenRelation.from_cells(
            ["A"],
            [[cell("low", ["AD"])], [cell("high", ["CD"])]],
        )
        ranked = model.rank(relation)
        assert [row.data[0] for _, row in ranked] == ["high", "low"]
        assert ranked[0][0] == 0.9

    def test_filter_threshold(self):
        model = CredibilityModel({"AD": 0.2, "CD": 0.9})
        relation = PolygenRelation.from_cells(
            ["A"],
            [[cell("low", ["AD"])], [cell("high", ["CD"])]],
        )
        kept = model.filter(relation, 0.5)
        assert [row.data[0] for row in kept] == ["high"]


class TestCredibilityCoalesce:
    def build(self, left, right):
        return PolygenRelation.from_cells(
            ["X", "Y"], [[left, right]]
        )

    def test_agreeing_cells_union_tags(self):
        model = CredibilityModel()
        relation = self.build(cell("v", ["AD"]), cell("v", ["CD"]))
        out = credibility_coalesce(relation, "X", "Y", model, w="W")
        assert out.tuples[0][0].origins == sources("AD", "CD")

    def test_conflict_keeps_more_credible_side(self):
        model = CredibilityModel({"AD": 0.3, "CD": 0.9})
        relation = self.build(cell("from-ad", ["AD"]), cell("from-cd", ["CD"]))
        out = credibility_coalesce(relation, "X", "Y", model)
        winner = out.tuples[0][0]
        assert winner.datum == "from-cd"
        assert winner.origins == sources("CD")
        # The losing source becomes an intermediate, not an origin.
        assert "AD" in winner.intermediates

    def test_tie_keeps_left(self):
        model = CredibilityModel()
        relation = self.build(cell("left", ["AD"]), cell("right", ["CD"]))
        out = credibility_coalesce(relation, "X", "Y", model)
        assert out.tuples[0][0].datum == "left"

    def test_no_rows_are_dropped(self):
        model = CredibilityModel({"AD": 0.3, "CD": 0.9})
        relation = PolygenRelation.from_cells(
            ["X", "Y"],
            [
                [cell("a", ["AD"]), cell("b", ["CD"])],
                [cell("c", ["AD"]), cell("c", ["CD"])],
            ],
        )
        out = credibility_coalesce(relation, "X", "Y", model)
        assert out.cardinality == 2

    def test_same_attribute_rejected(self):
        with pytest.raises(InvalidOperandError):
            credibility_coalesce(
                PolygenRelation.from_cells(["X"], [[cell("a")]]),
                "X",
                "X",
                CredibilityModel(),
            )


class TestCredibilityMerge:
    def test_conflicting_sources_still_produce_a_row(self):
        model = CredibilityModel({"A": 0.2, "B": 0.9})
        low = PolygenRelation.from_data(["K", "V"], [["k1", "stale"]], origins=["A"])
        high = PolygenRelation.from_data(["K", "V"], [["k1", "fresh"]], origins=["B"])
        merged = credibility_merge([low, high], ["K"], model)
        assert merged.cardinality == 1
        row = merged.tuples[0]
        assert row.data == ("k1", "fresh")
        assert "A" in row[1].intermediates

    def test_vanilla_merge_would_drop_the_row(self):
        from repro.core.derived import merge

        low = PolygenRelation.from_data(["K", "V"], [["k1", "stale"]], origins=["A"])
        high = PolygenRelation.from_data(["K", "V"], [["k1", "fresh"]], origins=["B"])
        assert merge([low, high], ["K"]).cardinality == 0

    def test_disjoint_keys_behave_like_plain_merge(self):
        from repro.core.derived import merge

        model = CredibilityModel()
        a = PolygenRelation.from_data(["K", "V"], [["k1", "x"]], origins=["A"])
        b = PolygenRelation.from_data(["K", "W"], [["k2", "y"]], origins=["B"])
        assert credibility_merge([a, b], ["K"], model) == merge([a, b], ["K"])

    def test_requires_operands_and_key(self):
        with pytest.raises(InvalidOperandError):
            credibility_merge([], ["K"], CredibilityModel())
