"""Unit tests for cross-database referential integrity diagnostics."""

import pytest

from repro.core.relation import PolygenRelation
from repro.datasets.paper import build_paper_federation
from repro.quality.diagnostics import dangling_references


class TestDanglingReferences:
    def test_consistent_reference(self):
        referencing = PolygenRelation.from_data(
            ["EMPLOYER"], [["IBM"], ["DEC"]], origins=["AD"]
        )
        referenced = PolygenRelation.from_data(
            ["NAME"], [["IBM"], ["DEC"], ["Ford"]], origins=["CD"]
        )
        report = dangling_references(referencing, "EMPLOYER", referenced, "NAME")
        assert report.is_consistent
        assert report.total_values == 2
        assert "consistent" in report.render()

    def test_dangling_values_report_their_sources(self):
        referencing = PolygenRelation.from_data(
            ["PID", "EMPLOYER"],
            [["p1", "IBM"], ["p2", "Ghost Corp"], ["p3", "Ghost Corp"]],
            origins=["AD"],
        )
        referenced = PolygenRelation.from_data(["NAME"], [["IBM"]], origins=["CD"])
        report = dangling_references(referencing, "EMPLOYER", referenced, "NAME")
        assert not report.is_consistent
        assert report.dangling_count == 1
        entry = report.dangling[0]
        assert entry.value == "Ghost Corp"
        assert entry.origins == frozenset({"AD"})
        assert entry.occurrences == 2
        assert "Ghost Corp" in report.render()

    def test_nil_values_are_skipped(self):
        referencing = PolygenRelation.from_data(["EMPLOYER"], [[None]], origins=["AD"])
        referenced = PolygenRelation.from_data(["NAME"], [["IBM"]], origins=["CD"])
        report = dangling_references(referencing, "EMPLOYER", referenced, "NAME")
        assert report.is_consistent
        assert report.total_values == 0

    def test_paper_federation_career_vs_firm(self):
        # The paper's own data exhibits the cardinality inconsistency:
        # CAREER references MIT and BP, which FIRM (CD) does not list.
        pqp = build_paper_federation()
        career = pqp.run_algebra("PCAREER [ONAME, POSITION]").relation
        firm = pqp.run_algebra("PFINANCE [ONAME, YEAR]").relation
        report = dangling_references(career, "ONAME", firm, "ONAME")
        dangling_names = {entry.value for entry in report.dangling}
        assert dangling_names == {"MIT", "BP"}
        for entry in report.dangling:
            assert entry.origins == frozenset({"AD"})

    def test_paper_federation_career_vs_merged_organization(self):
        # Against the merged PORGANIZATION every CAREER reference resolves —
        # the Alumni Database's BUSINESS relation covers its own CAREER.
        pqp = build_paper_federation()
        career = pqp.run_algebra("PCAREER [ONAME, POSITION]").relation
        organizations = pqp.run_algebra("PORGANIZATION [ONAME, INDUSTRY]").relation
        report = dangling_references(career, "ONAME", organizations, "ONAME")
        assert report.is_consistent
