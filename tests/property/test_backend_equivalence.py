"""Heterogeneous-backend equivalence properties.

"To the PQP, each LQP behaves as a local relational system" (paper, §I) —
so a federation whose sources live in SQLite files, append-only log
directories, or key-value stores must answer every polygen query
tag-identically to the all-in-memory federation: data, headings, *and*
tags.  Hypothesis drives the same randomized polygen queries as
:mod:`tests.property.test_execution_equivalence` through

- homogeneous federations (all three paper databases in one backend
  kind), serial and concurrent-optimized, and
- a mixed polystore (AD in SQLite, PD in a log store, CD in a KV store),
  locally *and* behind loopback :class:`~repro.net.server.LQPServer`\\ s,

and asserts every configuration equals the in-process serial baseline.
Capability differences (native vs scan-filter selection, projection
pushdown, range splitting) may move work around — they must never move
a single tuple or tag.

Backend-internal semantics (SQLite type faithfulness, log replay, KV
slicing) live in ``tests/backends/``; this module is the federation-level
half of the backends' contract.
"""

import pytest
from hypothesis import HealthCheck, given, settings

from repro.backends import KVStoreLQP, LogStoreLQP, SqliteLQP
from repro.core.predicate import Theta
from repro.datasets.paper import (
    paper_databases,
    paper_identity_resolver,
    paper_polygen_schema,
)
from repro.lqp.registry import LQPRegistry
from repro.lqp.relational_lqp import RelationalLQP
from repro.net import LQPServer
from repro.pqp.processor import PolygenQueryProcessor

from tests.property.test_execution_equivalence import queries

TIMEOUT = 5.0

#: database name → backend factory for the mixed polystore: one of each
#: capability tier across the paper's three sources.
POLYSTORE = ("sqlite", "log", "kv")


def _backend_lqp(kind, database, tmp_path):
    if kind == "sqlite":
        return SqliteLQP.from_database(database)
    if kind == "log":
        return LogStoreLQP.from_database(
            database, str(tmp_path / f"log-{database.name}")
        )
    if kind == "kv":
        return KVStoreLQP.from_database(database)
    raise AssertionError(kind)


def _processor(lqps, **kwargs):
    registry = LQPRegistry()
    for lqp in lqps:
        registry.register(lqp)
    return PolygenQueryProcessor(
        schema=paper_polygen_schema(),
        registry=registry,
        resolver=paper_identity_resolver(),
        **kwargs,
    )


def _remote_processor(servers, **kwargs):
    registry = LQPRegistry()
    for server in servers:
        registry.register(server.url, concurrency=4, timeout=TIMEOUT)
    return PolygenQueryProcessor(
        schema=paper_polygen_schema(),
        registry=registry,
        resolver=paper_identity_resolver(),
        **kwargs,
    )


@pytest.fixture(scope="module")
def harness(tmp_path_factory):
    tmp_path = tmp_path_factory.mktemp("backend-stores")
    databases = paper_databases()

    engines = {}
    opened = []
    servers = []

    # Homogeneous federations: every source in one backend kind.
    for kind in ("sqlite", "log", "kv"):
        serial = [
            _backend_lqp(kind, db, tmp_path / "serial")
            for db in databases.values()
        ]
        concurrent = [
            _backend_lqp(kind, db, tmp_path / "concurrent")
            for db in databases.values()
        ]
        opened.extend(serial)
        opened.extend(concurrent)
        engines[f"{kind}_serial"] = _processor(serial, optimize=False)
        engines[f"{kind}_concurrent_optimized"] = _processor(
            concurrent, concurrent=True, pushdown=True, prune_projections=True
        )

    # The mixed polystore, local and behind loopback servers.
    mixtures = {
        "polystore_local": [
            _backend_lqp(kind, db, tmp_path / "local")
            for kind, db in zip(POLYSTORE, databases.values())
        ],
        "polystore_remote": [
            _backend_lqp(kind, db, tmp_path / "remote")
            for kind, db in zip(POLYSTORE, databases.values())
        ],
    }
    opened.extend(mixtures["polystore_local"])
    opened.extend(mixtures["polystore_remote"])
    engines["polystore_local"] = _processor(
        mixtures["polystore_local"],
        concurrent=True,
        pushdown=True,
        prune_projections=True,
    )
    servers = [
        LQPServer(lqp, chunk_size=3).start()
        for lqp in mixtures["polystore_remote"]
    ]
    engines["polystore_remote"] = _remote_processor(
        servers, concurrent=True, pushdown=True, prune_projections=True
    )

    baseline = _processor(
        [RelationalLQP(db) for db in databases.values()], optimize=False
    )
    yield baseline, engines
    for processor in engines.values():
        processor.close()
    baseline.close()
    engines["polystore_remote"].registry.close()  # the dialed RemoteLQPs
    for server in servers:
        server.stop()
    for lqp in opened:
        close = getattr(lqp, "close", None)
        if close is not None:
            close()


@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(query=queries())
def test_every_backend_is_tag_identical_to_in_memory(harness, query):
    baseline, engines = harness
    reference = baseline.run_algebra(query)
    for name, engine in engines.items():
        result = engine.run_algebra(query)
        assert result.relation == reference.relation, (
            f"{name} diverged from the in-memory baseline on {query!r}"
        )
        assert result.lineage == reference.lineage, name


def test_paper_query_runs_across_the_polystore(harness):
    from tests.integration.conftest import PAPER_SQL

    baseline, engines = harness
    reference = baseline.run_sql(PAPER_SQL)
    for name in ("polystore_local", "polystore_remote"):
        result = engines[name].run_sql(PAPER_SQL)
        assert result.relation == reference.relation, name
        assert result.lineage == reference.lineage, name


def test_polystore_remote_actually_used_the_network(harness):
    _, engines = harness
    stats = engines["polystore_remote"].federation.stats()
    assert stats.remote_transports, "no transport counters — did this run remotely?"
    assert any(
        transport.bytes_received > 0
        for transport in stats.remote_transports.values()
    )


class TestDirectVerbParity:
    """The raw LQP verbs agree with RelationalLQP on the awkward inputs:
    nil keys in predicates, nil-owning ranges, empty relations."""

    @pytest.fixture(scope="class")
    def trio(self, tmp_path_factory):
        from repro.relational.database import LocalDatabase
        from repro.relational.schema import RelationSchema

        db = LocalDatabase("ED")
        db.load(
            RelationSchema("R", ["K", "V"], key=["K"]),
            [(1, "a"), (2, None), (3, "c"), (4, "d")],
        )
        db.create(RelationSchema("EMPTY", ["K", "V"], key=["K"]))
        tmp = tmp_path_factory.mktemp("verb-parity")
        backends = {
            "sqlite": SqliteLQP.from_database(db),
            "log": LogStoreLQP.from_database(db, str(tmp / "log")),
            "kv": KVStoreLQP.from_database(db),
        }
        yield RelationalLQP(db), backends
        for backend in backends.values():
            close = getattr(backend, "close", None)
            if close is not None:
                close()

    @pytest.mark.parametrize("kind", ["sqlite", "log", "kv"])
    def test_select_against_nil_value_matches(self, trio, kind):
        reference, backends = trio
        for theta in (Theta.EQ, Theta.NE, Theta.LT, Theta.GE):
            expected = reference.select("R", "V", theta, None)
            assert backends[kind].select("R", "V", theta, None) == expected

    @pytest.mark.parametrize("kind", ["sqlite", "log", "kv"])
    def test_nil_cells_never_satisfy_predicates(self, trio, kind):
        reference, backends = trio
        expected = reference.select("R", "V", Theta.NE, "a")
        got = backends[kind].select("R", "V", Theta.NE, "a")
        assert got == expected
        assert all(row[1] is not None for row in got.rows)

    @pytest.mark.parametrize("kind", ["sqlite", "log", "kv"])
    @pytest.mark.parametrize(
        "lower,upper,include_nil",
        [(None, 3, True), (2, None, False), (None, None, True), (2, 2, False)],
    )
    def test_retrieve_range_matches(self, trio, kind, lower, upper, include_nil):
        reference, backends = trio
        expected = reference.retrieve_range(
            "R", "K", lower=lower, upper=upper, include_nil=include_nil
        )
        got = backends[kind].retrieve_range(
            "R", "K", lower=lower, upper=upper, include_nil=include_nil
        )
        assert got == expected

    @pytest.mark.parametrize("kind", ["sqlite", "log", "kv"])
    def test_empty_relation_round_trips(self, trio, kind):
        reference, backends = trio
        assert backends[kind].retrieve("EMPTY") == reference.retrieve("EMPTY")
        assert (
            backends[kind].select("EMPTY", "V", Theta.EQ, "x")
            == reference.select("EMPTY", "V", Theta.EQ, "x")
        )

    @pytest.mark.parametrize("kind", ["sqlite", "log", "kv"])
    def test_projection_matches(self, trio, kind):
        # ``columns=`` is part of the verb contract only for engines
        # advertising native projection; the PQP projects for the rest.
        from repro.lqp.base import project_columns

        reference, backends = trio
        backend = backends[kind]
        expected = reference.retrieve("R", columns=["V"])
        if backend.capabilities().native_projection:
            assert backend.retrieve("R", columns=["V"]) == expected
        else:
            assert project_columns(backend.retrieve("R"), ["V"]) == expected
