"""Property-based tests: algebraic laws and tag invariants of the polygen
algebra (hypothesis)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.algebra import difference, product, project, restrict, union
from repro.core.derived import intersect, join, merge, outer_join
from repro.core.predicate import AttributeRef, Literal, Theta
from repro.core.relation import PolygenRelation

from tests.property.strategies import (
    DATABASES,
    relation_pairs,
    relations,
    keyed_relation_sets,
)


class TestUnionLaws:
    @given(relation_pairs())
    def test_commutative(self, pair):
        left, right = pair
        assert union(left, right) == union(right, left)

    @given(relations())
    def test_idempotent_on_normalized_relations(self, relation):
        # Union merges tuples sharing a data portion (paper, §II), so
        # idempotence holds once the relation is data-normalized — which a
        # full-width Project performs.
        normalized = project(relation, relation.attributes)
        assert union(normalized, normalized) == normalized

    @given(relations())
    def test_self_union_normalizes(self, relation):
        # union(p, p) equals the data-normal form of p: same data portions,
        # tags merged across data-duplicates.
        assert union(relation, relation) == project(relation, relation.attributes)

    @given(relation_pairs(), relations())
    def test_associative_on_shared_heading(self, pair, _ignored):
        left, right = pair
        # Build a third relation over the same heading by reusing left.
        third = left
        assert union(union(left, right), third) == union(left, union(right, third))

    @given(relation_pairs())
    def test_union_covers_both_data_portions(self, pair):
        left, right = pair
        combined = union(left, right)
        data = set(combined.data_rows())
        assert {row.data for row in left} <= data
        assert {row.data for row in right} <= data


class TestDifferenceLaws:
    @given(relations())
    def test_self_difference_empty(self, relation):
        assert difference(relation, relation).cardinality == 0

    @given(relation_pairs())
    def test_difference_disjoint_from_subtrahend(self, pair):
        left, right = pair
        out = difference(left, right)
        assert not (set(out.data_rows()) & set(right.data_rows()))

    @given(relation_pairs())
    def test_difference_adds_subtrahend_origins_to_intermediates(self, pair):
        left, right = pair
        out = difference(left, right)
        mediators = right.all_origins()
        for row in out:
            for cell in row:
                assert mediators <= cell.intermediates

    @given(relation_pairs())
    def test_origins_never_change(self, pair):
        left, right = pair
        out = difference(left, right)
        origins_by_data = {}
        for row in left:
            origins_by_data.setdefault(row.data, []).append(
                tuple(cell.origins for cell in row)
            )
        for row in out:
            assert tuple(cell.origins for cell in row) in origins_by_data[row.data]


class TestProjectLaws:
    @given(relations())
    def test_idempotent(self, relation):
        attrs = relation.attributes
        assert project(project(relation, attrs), attrs) == project(relation, attrs)

    @given(relations(min_rows=1))
    def test_single_attribute_dedupes_by_data(self, relation):
        out = project(relation, [relation.attributes[0]])
        data = [row.data for row in out]
        assert len(data) == len(set(data))

    @given(relations(min_rows=1))
    def test_tag_union_preserves_sources(self, relation):
        attr = relation.attributes[0]
        out = project(relation, [attr])
        index = relation.heading.index(attr)
        for row in out:
            datum = row.data[0]
            expected_origins = frozenset()
            for original in relation:
                if original[index].datum == datum:
                    expected_origins |= original[index].origins
            assert row[0].origins == expected_origins


class TestRestrictLaws:
    @given(relations(min_rows=1), st.sampled_from(["x", "y", 1]))
    def test_subset_and_origin_preservation(self, relation, literal):
        attr = relation.attributes[0]
        out = restrict(relation, attr, Theta.EQ, Literal(literal))
        for row in out:
            # Some input tuple must explain this output tuple: identical
            # data and origins, and intermediates that only grew.
            assert any(
                row.data == original.data
                and all(
                    new.origins == old.origins and old.intermediates <= new.intermediates
                    for new, old in zip(row, original)
                )
                for original in relation
            )

    @given(relations(min_rows=1))
    def test_restrict_attr_to_itself_keeps_non_nil(self, relation):
        # nil never satisfies θ, so p[A = A] keeps exactly the tuples whose
        # A is non-nil (compared on data portions; tuples that become
        # identical after the intermediate update may collapse).
        attr = relation.attributes[0]
        out = restrict(relation, attr, Theta.EQ, AttributeRef(attr))
        index = relation.heading.index(attr)
        expected = {row.data for row in relation if row[index].datum is not None}
        assert set(out.data_rows()) == expected

    @given(relations(min_rows=1))
    def test_intermediates_gain_exactly_compared_origins(self, relation):
        attr = relation.attributes[0]
        index = relation.heading.index(attr)
        out = restrict(relation, attr, Theta.EQ, AttributeRef(attr))
        for row in out:
            key_origins = row[index].origins
            # every cell's added intermediates are exactly the key origins
            for cell in row:
                assert key_origins <= cell.intermediates


class TestJoinLaws:
    @given(relations(heading=["A", "B"], min_rows=0, max_rows=5),
           relations(heading=["C", "D"], min_rows=0, max_rows=5))
    def test_join_equals_restrict_of_product(self, left, right):
        via_join = join(left, right, "A", Theta.EQ, "C")
        via_primitives = restrict(product(left, right), "A", Theta.EQ, AttributeRef("C"))
        assert via_join == via_primitives

    @given(relation_pairs(max_rows=5))
    def test_intersection_commutative(self, pair):
        left, right = pair
        assert intersect(left, right) == intersect(right, left)

    @given(relations(min_rows=1, max_rows=5))
    def test_intersection_with_self_preserves_data(self, relation):
        out = intersect(relation, relation)
        assert set(out.data_rows()) == set(relation.data_rows())


class TestOuterJoinLaws:
    @given(relations(heading=["K", "V"], min_rows=0, max_rows=5),
           relations(heading=["J", "W"], min_rows=0, max_rows=5))
    def test_every_input_tuple_is_represented(self, left, right):
        out = outer_join(left, right, [("K", "J")])
        left_data = {row.data for row in left}
        right_data = {row.data for row in right}
        out_left = {row.data[:2] for row in out}
        out_right = {row.data[2:] for row in out}
        assert left_data <= out_left
        assert right_data <= out_right

    @given(relations(heading=["K", "V"], min_rows=0, max_rows=5),
           relations(heading=["J", "W"], min_rows=0, max_rows=5))
    def test_padded_cells_have_no_origins(self, left, right):
        out = outer_join(left, right, [("K", "J")])
        for row in out:
            for cell in row:
                if cell.is_nil:
                    assert cell.origins == frozenset()


class TestMergeLaws:
    @given(keyed_relation_sets())
    @settings(max_examples=60)
    def test_merge_order_immaterial(self, operands):
        import itertools

        reference = None
        for permutation in itertools.permutations(operands):
            out = merge(list(permutation), ["K"])
            normalized = {(row.data, row.cells) for row in out}
            if reference is None:
                reference = normalized
            else:
                assert normalized == reference

    @given(keyed_relation_sets())
    @settings(max_examples=60)
    def test_merge_covers_union_of_keys(self, operands):
        out = merge(operands, ["K"])
        expected_keys = set()
        for relation in operands:
            expected_keys |= {row.data[0] for row in relation}
        assert {row.data[0] for row in out} == expected_keys

    @given(keyed_relation_sets())
    @settings(max_examples=60)
    def test_merged_origins_are_union_of_contributors(self, operands):
        out = merge(operands, ["K"])
        contributors = {}
        for relation in operands:
            for row in relation:
                contributors.setdefault(row.data[0], frozenset())
                contributors[row.data[0]] |= row[0].origins
        for row in out:
            assert row[0].origins == contributors[row.data[0]]
