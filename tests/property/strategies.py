"""Hypothesis strategies for polygen relations.

Small alphabets keep examples readable while still exercising duplicates,
nils, overlapping tag sets and multi-attribute headings.
"""

from __future__ import annotations

from hypothesis import strategies as st

from repro.core.cell import Cell
from repro.core.relation import PolygenRelation
from repro.core.row import PolygenTuple

DATABASES = ("AD", "PD", "CD")
ATTRIBUTES = ("A", "B", "C", "D")
VALUES = ("x", "y", "z", 1, 2)


def tag_sets():
    return st.frozensets(st.sampled_from(DATABASES), max_size=len(DATABASES))


def data(allow_nil: bool = True):
    values = st.sampled_from(VALUES)
    if allow_nil:
        return st.one_of(st.none(), values)
    return values


def cells(allow_nil: bool = True):
    def build(datum, origins, intermediates):
        if datum is None:
            return Cell(None, frozenset(), intermediates)
        return Cell(datum, origins, intermediates)

    return st.builds(build, data(allow_nil), tag_sets(), tag_sets())


def headings(min_size: int = 1, max_size: int = 3):
    return st.lists(
        st.sampled_from(ATTRIBUTES), min_size=min_size, max_size=max_size, unique=True
    )


@st.composite
def relations(draw, heading=None, min_rows: int = 0, max_rows: int = 6,
              allow_nil: bool = True):
    """A random polygen relation (optionally over a fixed heading)."""
    if heading is None:
        heading = draw(headings())
    rows = draw(
        st.lists(
            st.lists(
                cells(allow_nil), min_size=len(heading), max_size=len(heading)
            ),
            min_size=min_rows,
            max_size=max_rows,
        )
    )
    return PolygenRelation(heading, (PolygenTuple(row) for row in rows))


@st.composite
def relation_pairs(draw, min_rows: int = 0, max_rows: int = 6):
    """Two relations over the same random heading (union-compatible)."""
    heading = draw(headings())
    left = draw(relations(heading=heading, min_rows=min_rows, max_rows=max_rows))
    right = draw(relations(heading=heading, min_rows=min_rows, max_rows=max_rows))
    return left, right


@st.composite
def keyed_relation_sets(draw, max_relations: int = 3):
    """Relations suitable for Merge: a shared key attribute K, conflict-free
    shared attributes (every relation agrees on V(k) by construction), and
    per-relation origin tags — the shape the executor feeds to Merge."""
    keys = draw(st.lists(st.sampled_from(["k1", "k2", "k3", "k4"]), min_size=1, unique=True))
    value_of = draw(
        st.fixed_dictionaries({key: st.sampled_from(["v1", "v2", "v3"]) for key in keys})
    )
    relation_count = draw(st.integers(min_value=2, max_value=max_relations))
    relations_ = []
    for index in range(relation_count):
        database = DATABASES[index % len(DATABASES)]
        covered = draw(
            st.lists(st.sampled_from(keys), min_size=1, unique=True)
        )
        rows = [(key, value_of[key]) for key in covered]
        relations_.append(
            PolygenRelation.from_data(["K", "V"], rows, origins=[database])
        )
    return relations_
