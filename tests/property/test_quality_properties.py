"""Property-based tests for the quality extensions and the baseline.

Invariants:

- credibility-driven Merge never loses a key that any source knows,
- on conflict-free inputs it degrades to the paper's plain Merge,
- origins in any merged result name only contributing databases,
- tuple scores are bounded by the model's score range,
- the untagged baseline's outer-total-join agrees with the polygen Merge's
  data portion on conflict-free inputs.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.derived import merge
from repro.quality.credibility import CredibilityModel, credibility_merge

from tests.property.strategies import DATABASES, keyed_relation_sets


def _models():
    return st.builds(
        CredibilityModel,
        st.fixed_dictionaries(
            {database: st.floats(min_value=0.0, max_value=1.0) for database in DATABASES}
        ),
    )


class TestCredibilityMergeProperties:
    @given(keyed_relation_sets(), _models())
    @settings(max_examples=50)
    def test_no_key_is_ever_lost(self, operands, model):
        out = credibility_merge(operands, ["K"], model)
        expected = set()
        for relation in operands:
            expected |= {row.data[0] for row in relation}
        assert {row.data[0] for row in out} == expected

    @given(keyed_relation_sets(), _models())
    @settings(max_examples=50)
    def test_conflict_free_inputs_match_plain_merge(self, operands, model):
        # keyed_relation_sets generates agreeing values per key, so the
        # credibility arbitration never fires and both merges coincide.
        assert credibility_merge(operands, ["K"], model) == merge(operands, ["K"])

    @given(keyed_relation_sets(), _models())
    @settings(max_examples=50)
    def test_origins_only_name_contributors(self, operands, model):
        contributors = set()
        for relation in operands:
            contributors |= relation.all_origins()
        out = credibility_merge(operands, ["K"], model)
        assert out.all_origins() <= contributors
        assert out.all_intermediates() <= contributors

    @given(keyed_relation_sets(), _models())
    @settings(max_examples=50)
    def test_tuple_scores_bounded(self, operands, model):
        out = credibility_merge(operands, ["K"], model)
        for score, _row in model.rank(out):
            assert 0.0 <= score <= 1.0

    @given(keyed_relation_sets(), _models(), st.floats(min_value=0.0, max_value=1.0))
    @settings(max_examples=50)
    def test_filter_is_a_restriction_of_rank(self, operands, model, threshold):
        out = credibility_merge(operands, ["K"], model)
        kept = model.filter(out, threshold)
        assert kept.cardinality <= out.cardinality
        for row in kept:
            assert model.tuple_score(row) >= threshold


class TestBaselineAgreementProperties:
    @given(keyed_relation_sets())
    @settings(max_examples=50, deadline=None)
    def test_untagged_outer_total_join_matches_merge_data(self, operands):
        from repro.baseline.global_model import _outer_total_join
        from repro.relational.relation import Relation

        tagged = merge(operands, ["K"])
        untagged = Relation(operands[0].attributes, operands[0].data_rows())
        for relation in operands[1:]:
            untagged = _outer_total_join(
                untagged, Relation(relation.attributes, relation.data_rows()), ["K"]
            )
        assert set(untagged.rows) == set(tagged.data_rows())
