"""Remote-execution equivalence properties.

The network layer must be invisible in the answer: a federation whose
LQPs sit behind :class:`~repro.net.server.LQPServer`\\ s on loopback —
registered by ``polygen://`` URL, multiplexed, chunk-streamed — must
produce relations that equal the in-process federation's bit for bit:
data, headings, *and tags*.  Hypothesis drives the same randomized
polygen queries as :mod:`tests.property.test_execution_equivalence`
through remote-backed processors in all four engine configurations
(serial/concurrent × unoptimized/optimized) and asserts tag-identical
results against the in-process serial baseline.

Fault-injection coverage (dropped connections → typed errors, client
timeouts propagating cancellation to the server) lives in
``tests/net/test_server_client.py``; this module is the semantic half of
the network layer's contract.
"""

import pytest
from hypothesis import HealthCheck, given, settings

from repro.datasets.paper import (
    paper_databases,
    paper_identity_resolver,
    paper_polygen_schema,
)
from repro.lqp.registry import LQPRegistry
from repro.lqp.relational_lqp import RelationalLQP
from repro.net import LQPServer
from repro.pqp.processor import PolygenQueryProcessor

from tests.property.test_execution_equivalence import queries

#: Transport settings: short enough that a wedged socket fails the suite
#: instead of hanging it.
TIMEOUT = 5.0


def _remote_processor(servers, **kwargs) -> PolygenQueryProcessor:
    registry = LQPRegistry()
    for server in servers:
        registry.register(server.url, concurrency=4, timeout=TIMEOUT)
    return PolygenQueryProcessor(
        schema=paper_polygen_schema(),
        registry=registry,
        resolver=paper_identity_resolver(),
        **kwargs,
    )


def _in_process_baseline() -> PolygenQueryProcessor:
    registry = LQPRegistry()
    for database in paper_databases().values():
        registry.register(RelationalLQP(database))
    return PolygenQueryProcessor(
        schema=paper_polygen_schema(),
        registry=registry,
        resolver=paper_identity_resolver(),
        optimize=False,
    )


@pytest.fixture(scope="module")
def harness():
    servers = [
        LQPServer(RelationalLQP(database), chunk_size=3).start()
        for database in paper_databases().values()
    ]
    engines = {
        "remote_serial": _remote_processor(servers, optimize=False),
        "remote_optimized": _remote_processor(
            servers, pushdown=True, prune_projections=True
        ),
        "remote_concurrent": _remote_processor(
            servers, concurrent=True, optimize=False
        ),
        "remote_concurrent_optimized": _remote_processor(
            servers, concurrent=True, pushdown=True, prune_projections=True
        ),
    }
    baseline = _in_process_baseline()
    yield baseline, engines
    for processor in engines.values():
        for lqp in processor.registry:
            lqp.inner.close()  # the RemoteLQP under the accounting wrapper
        processor.close()
    baseline.close()
    for server in servers:
        server.stop()


@settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(query=queries())
def test_remote_loopback_is_tag_identical_to_in_process(harness, query):
    baseline, engines = harness
    reference = baseline.run_algebra(query)
    for name, engine in engines.items():
        remote = engine.run_algebra(query)
        assert remote.relation == reference.relation, (
            f"{name} diverged from the in-process baseline on {query!r}"
        )
        assert remote.lineage == reference.lineage


def test_paper_query_is_tag_identical_over_the_wire(harness):
    from tests.integration.conftest import PAPER_SQL

    baseline, engines = harness
    reference = baseline.run_sql(PAPER_SQL)
    for name, engine in engines.items():
        remote = engine.run_sql(PAPER_SQL)
        assert remote.relation == reference.relation, name
        assert remote.lineage == reference.lineage


def test_remote_federation_actually_used_the_network(harness):
    _, engines = harness
    stats = engines["remote_concurrent"].federation.stats()
    assert stats.remote_transports, "no transport counters — did this run remotely?"
    assert all(
        transport.requests > 0 for transport in stats.remote_transports.values()
    )
    assert any(
        transport.bytes_received > 0
        for transport in stats.remote_transports.values()
    )
