"""Semantic-result-cache properties.

The cache must be invisible in the answer and *tag-precise* under
invalidation:

1. **Equivalence** — for any query, a result served by a cache-enabled
   federation (first run populates, second run hits) is cell-for-cell and
   tag-for-tag identical to fresh execution, across the full engine ×
   transport matrix (serial/concurrent × in-process/loopback TCP).
2. **Precise invalidation** — invalidating database D evicts exactly the
   entries whose source-tag set consults D: a D-consulting query is never
   served from cache afterwards, while entries not consulting D keep
   serving whole-plan hits (no over-eviction).
3. **No stale reads** — after a write to D and ``invalidate(D)``, cached
   queries consulting D return the post-write answer, identical to a
   federation that never cached at all.

Reuses the randomized query generator of
:mod:`tests.property.test_execution_equivalence`.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.datasets.paper import (
    paper_databases,
    paper_identity_resolver,
    paper_polygen_schema,
)
from repro.lqp.registry import LQPRegistry
from repro.lqp.relational_lqp import RelationalLQP
from repro.net.server import LQPServer
from repro.pqp.fingerprint import fingerprint_plan
from repro.pqp.matrix import Operation
from repro.pqp.processor import PolygenQueryProcessor
from repro.service.federation import PolygenFederation
from repro.service.options import QueryOptions

from tests.property.test_execution_equivalence import queries

TIMEOUT = 15.0


def _local_registry(databases=None) -> LQPRegistry:
    registry = LQPRegistry()
    for database in (databases or paper_databases()).values():
        registry.register(RelationalLQP(database))
    return registry


def _plan_databases(result) -> set:
    """The databases a result's *plan* consulted — the cache's entry tag
    basis: shipped execution locations, consulted-only sources, and every
    origin/intermediate tag in the answer itself."""
    consulted = set()
    for row in result.iom:
        if row.is_local:
            consulted.add(row.el)
        consulted.update(row.consulted)
        if row.op is Operation.CACHED and row.cached is not None:
            consulted.update(row.cached.sources)
    consulted.update(result.relation.contributing_sources())
    return consulted


@pytest.fixture(scope="module")
def oracle():
    """Cache-free serial facade: the ground truth for data and tags."""
    return PolygenQueryProcessor(
        schema=paper_polygen_schema(),
        registry=_local_registry(),
        resolver=paper_identity_resolver(),
        optimize=False,
    )


@pytest.fixture(scope="module")
def loopback_urls():
    servers = [
        LQPServer(RelationalLQP(database)).start()
        for database in paper_databases().values()
    ]
    yield [server.url for server in servers]
    for server in servers:
        server.stop()


@pytest.fixture(
    scope="module",
    params=[
        "serial-local",
        "concurrent-local",
        "serial-loopback",
        "concurrent-loopback",
    ],
)
def cached_federation(request, loopback_urls):
    engine, transport = request.param.split("-")
    registry = LQPRegistry()
    if transport == "loopback":
        for url in loopback_urls:
            registry.register(url, timeout=TIMEOUT)
    else:
        registry = _local_registry()
    with PolygenFederation(
        paper_polygen_schema(),
        registry,
        resolver=paper_identity_resolver(),
        defaults=QueryOptions(engine=engine, cache="on"),
    ) as federation:
        yield federation


@settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(query=queries())
def test_cached_results_are_tag_identical(oracle, cached_federation, query):
    fresh = oracle.run_algebra(query)
    first = cached_federation.run(query)
    second = cached_federation.run(query)
    assert second.cache_hit, f"repeat of {query!r} missed the cache"
    for served in (first, second):
        assert served.relation == fresh.relation, (
            f"cache-enabled run diverged from fresh execution on {query!r}"
        )
        assert served.lineage == fresh.lineage


@settings(max_examples=20, deadline=None)
@given(data=st.data())
def test_invalidation_is_tag_precise(data):
    batch = data.draw(
        st.lists(queries(), min_size=2, max_size=4, unique=True), label="queries"
    )
    with PolygenFederation(
        paper_polygen_schema(),
        _local_registry(),
        resolver=paper_identity_resolver(),
        defaults=QueryOptions(cache="on"),
    ) as federation:
        dependencies, fingerprints = {}, {}
        for query in batch:
            result = federation.run(query)
            dependencies[query] = _plan_databases(result)
            fingerprints[query] = fingerprint_plan(result.iom).final
        for query in batch:  # warm: everything now whole-plan hits
            assert federation.run(query).cache_hit
        database = data.draw(
            st.sampled_from(sorted(set().union(*dependencies.values()))),
            label="invalidated database",
        )
        evicted = federation.invalidate(database)
        assert evicted >= sum(
            database in consulted for consulted in dependencies.values()
        )
        # Probe the cache *before* any recomputation repopulates it: the
        # eviction must be exactly tag-precise at this instant.  (A later
        # cache-on run of a D-consulting superquery would legitimately
        # re-store fresh entries for its shared subplans.)
        for query in batch:
            entry = federation.cache.lookup(fingerprints[query])
            if database in dependencies[query]:
                assert entry is None, (
                    f"{query!r} consults {database} but its cache entry "
                    "survived invalidate"
                )
            else:
                assert entry is not None, (
                    f"{query!r} does not consult {database} but its cache "
                    "entry was evicted"
                )
        # And behaviourally: every query still answers, recomputed or
        # served, with a whole-plan hit exactly when its entry survived.
        for query in batch:
            again = federation.run(query)
            if database not in dependencies[query]:
                assert again.cache_hit


@settings(max_examples=10, deadline=None)
@given(data=st.data())
def test_write_then_invalidate_never_serves_stale_rows(data):
    batch = data.draw(
        st.lists(queries(), min_size=1, max_size=3, unique=True), label="queries"
    )
    databases = paper_databases()
    with PolygenFederation(
        paper_polygen_schema(),
        _local_registry(databases),
        resolver=paper_identity_resolver(),
        defaults=QueryOptions(cache="on"),
    ) as federation:
        for query in batch:  # populate, then confirm the cache serves
            federation.run(query)
            assert federation.run(query).cache_hit
        # The write: a new MBA alumna lands in AD.ALUMNUS.
        databases["AD"].insert(
            "ALUMNUS", [("424", "Grace Murray", "MBA", "CS")]
        )
        federation.invalidate("AD")
        # Ground truth over the *mutated* databases, never cached.
        oracle = PolygenQueryProcessor(
            schema=paper_polygen_schema(),
            registry=_local_registry(databases),
            resolver=paper_identity_resolver(),
            optimize=False,
        )
        for query in batch:
            served = federation.run(query)
            fresh = oracle.run_algebra(query)
            assert served.relation == fresh.relation, (
                f"{query!r} served stale rows after a write to AD"
            )
            assert served.lineage == fresh.lineage
