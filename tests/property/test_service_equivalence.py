"""Service-equivalence properties.

The federation service must be invisible in the answer: for any query, a
result obtained through a shared, concurrently-loaded
:class:`~repro.service.federation.PolygenFederation` — eight sessions
submitting at once over one long-lived worker pool — equals the blocking
serial facade's, data, headings *and* tags.  Reuses the randomized query
generator of :mod:`tests.property.test_execution_equivalence`, whose
identity-resolver and domain-transform hazards are exactly what concurrent
materialization must not disturb.
"""

import pytest
from hypothesis import HealthCheck, given, settings

from repro.datasets.paper import (
    paper_databases,
    paper_identity_resolver,
    paper_polygen_schema,
)
from repro.lqp.registry import LQPRegistry
from repro.lqp.relational_lqp import RelationalLQP
from repro.pqp.processor import PolygenQueryProcessor
from repro.service.federation import PolygenFederation

from tests.property.test_execution_equivalence import queries

#: Concurrent sessions per drawn query (the acceptance floor is 8).
SESSIONS = 8


def _registry() -> LQPRegistry:
    registry = LQPRegistry()
    for database in paper_databases().values():
        registry.register(RelationalLQP(database))
    return registry


@pytest.fixture(scope="module")
def serial_facade():
    return PolygenQueryProcessor(
        schema=paper_polygen_schema(),
        registry=_registry(),
        resolver=paper_identity_resolver(),
        optimize=False,
    )


@pytest.fixture(scope="module")
def federation():
    with PolygenFederation(
        paper_polygen_schema(),
        _registry(),
        resolver=paper_identity_resolver(),
        max_concurrent_queries=SESSIONS,
    ) as shared:
        yield shared


@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(query=queries())
def test_concurrent_sessions_agree_with_serial(serial_facade, federation, query):
    baseline = serial_facade.run_algebra(query)
    sessions = [federation.session() for _ in range(SESSIONS)]
    try:
        handles = [session.submit(query) for session in sessions]
        for session, handle in zip(sessions, handles):
            result = handle.result(timeout=60)
            assert result.relation == baseline.relation, (
                f"{session.name} diverged from the serial facade on {query!r}"
            )
            assert result.lineage == baseline.lineage
    finally:
        for session in sessions:
            session.close()
