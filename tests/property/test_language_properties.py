"""Property-based tests for the front-end languages: render/parse round
trips over randomly generated trees, and domain-transform laws."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algebra_lang.parser import parse_expression
from repro.core.expression import (
    Coalesce,
    Difference,
    Intersect,
    Join,
    Product,
    Project,
    Restrict,
    SchemeRef,
    Select,
    Union,
)
from repro.core.predicate import Theta
from repro.integration.domains import city_state_to_state, money_text_to_float
from repro.sql.parser import parse_sql

NAMES = st.sampled_from(["P1", "P2", "AID#", "ONAME", "CEO", "DEGREE"])
THETAS = st.sampled_from(list(Theta))
LITERALS = st.one_of(
    st.sampled_from(["MBA", "High Tech", "x"]),
    st.integers(min_value=-999, max_value=9999),
)


def expression_trees(depth: int = 3):
    leaves = st.builds(SchemeRef, NAMES)

    def extend(children):
        return st.one_of(
            st.builds(Select, children, NAMES, THETAS, LITERALS),
            st.builds(Restrict, children, NAMES, THETAS, NAMES),
            st.builds(Join, children, NAMES, THETAS, NAMES, children),
            st.builds(
                Project,
                children,
                st.lists(NAMES, min_size=1, max_size=3, unique=True),
            ),
            st.builds(Union, children, children),
            st.builds(Difference, children, children),
            st.builds(Product, children, children),
            st.builds(Intersect, children, children),
            st.builds(Coalesce, children, NAMES, NAMES, NAMES),
        )

    return st.recursive(leaves, extend, max_leaves=8)


class TestAlgebraRoundTrip:
    @given(expression_trees())
    @settings(max_examples=150)
    def test_render_parse_fixpoint(self, tree):
        rendered = tree.render()
        assert parse_expression(rendered) == tree

    @given(expression_trees())
    @settings(max_examples=50)
    def test_render_is_stable(self, tree):
        once = tree.render()
        assert parse_expression(once).render() == once


class TestSqlRoundTrip:
    @st.composite
    @staticmethod
    def statements(draw, depth=2):
        from repro.sql.ast import ComparisonPredicate, InPredicate, SelectStatement

        select_list = tuple(
            draw(st.lists(NAMES, min_size=1, max_size=3, unique=True))
        )
        tables = tuple(draw(st.lists(NAMES, min_size=1, max_size=2, unique=True)))
        predicates = []
        for _ in range(draw(st.integers(min_value=0, max_value=2))):
            if depth > 0 and draw(st.booleans()):
                predicates.append(
                    InPredicate(
                        draw(NAMES), draw(TestSqlRoundTrip.statements(depth=depth - 1))
                    )
                )
            else:
                right_is_attr = draw(st.booleans())
                right = draw(NAMES) if right_is_attr else draw(LITERALS)
                predicates.append(
                    ComparisonPredicate(draw(NAMES), draw(THETAS), right, right_is_attr)
                )
        return SelectStatement(select_list, tables, tuple(predicates))

    @given(statements())
    @settings(max_examples=100)
    def test_render_parse_fixpoint(self, statement):
        assert parse_sql(statement.render()) == statement


class TestDomainTransformProperties:
    @given(st.sampled_from(["NY", "MA", "CA", "MI", "TX"]),
           st.sampled_from(["Boston", "New York", "So. San Francisco", "Ann Arbor"]))
    def test_city_state_always_returns_the_state(self, state, city):
        assert city_state_to_state(f"{city}, {state}") == state

    @given(st.sampled_from(["NY", "MA", "CA"]))
    def test_bare_state_fixpoint(self, state):
        assert city_state_to_state(city_state_to_state(state)) == state

    @given(st.floats(min_value=0.001, max_value=999.0, allow_nan=False))
    def test_money_scale_ordering(self, number):
        text = f"{number:.3f}"
        assert money_text_to_float(text + " bil") == pytest.approx(
            money_text_to_float(text + " mil") * 1000
        )

    @given(st.floats(min_value=0.0, max_value=1e6, allow_nan=False))
    def test_money_negation_is_symmetric(self, number):
        text = f"{number:.2f} mil"
        assert money_text_to_float("-" + text) == -money_text_to_float(text)
