"""Streamed-execution equivalence properties.

Pipelined chunk streaming must be invisible in the answer: for any query,
the batches a streaming cursor yields — concatenated — must equal the
whole-relation result *tag for tag*, no matter which engine ran the plan
(serial/concurrent), where the sources live (in-process/loopback
servers), or which wire encoding carried the chunks (binary v2 / JSON
v1).  Alongside the hypothesis sweep: NaN cells, nil keys and empty
strings crossing every wire intact; tag-pool deltas split across
arbitrary chunk boundaries; and the version-mismatch fallback — a v1
peer keeps working, at JSON, with zero binary frames on the wire.
"""

import math

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.heading import Heading
from repro.datasets.paper import (
    paper_databases,
    paper_identity_resolver,
    paper_polygen_schema,
)
from repro.lqp.registry import LQPRegistry
from repro.lqp.relational_lqp import RelationalLQP
from repro.net import LQPServer, binary
from repro.net.client import RemoteLQP
from repro.pqp.processor import PolygenQueryProcessor
from repro.relational.database import LocalDatabase
from repro.relational.schema import RelationSchema
from repro.service.federation import PolygenFederation
from repro.storage.columnar import ColumnarRelation
from repro.storage.tag_pool import TagPool

from tests.property.test_execution_equivalence import queries

TIMEOUT = 10.0


def _in_process_registry() -> LQPRegistry:
    registry = LQPRegistry()
    for database in paper_databases().values():
        registry.register(RelationalLQP(database))
    return registry


@pytest.fixture(scope="module")
def harness():
    baseline = PolygenQueryProcessor(
        schema=paper_polygen_schema(),
        registry=_in_process_registry(),
        resolver=paper_identity_resolver(),
        optimize=False,
    )
    servers = [
        LQPServer(RelationalLQP(database), chunk_size=3).start()
        for database in paper_databases().values()
    ]

    def remote_registry() -> LQPRegistry:
        registry = LQPRegistry()
        for server in servers:
            registry.register(server.url, concurrency=4, timeout=TIMEOUT)
        return registry

    local = PolygenFederation(
        paper_polygen_schema(),
        _in_process_registry(),
        resolver=paper_identity_resolver(),
    )
    loopback = PolygenFederation(
        paper_polygen_schema(),
        remote_registry(),
        resolver=paper_identity_resolver(),
    )
    #: Tiny chunks force multi-chunk streams and cross-chunk tag deltas.
    sessions = {
        "local_serial": local.session(engine="serial", stream_chunk_size=2),
        "local_concurrent": local.session(engine="concurrent", stream_chunk_size=2),
        "loopback_binary": loopback.session(wire_format="binary", stream_chunk_size=2),
        "loopback_json": loopback.session(wire_format="json", stream_chunk_size=2),
    }
    yield baseline, sessions
    local.close()
    loopback.close()
    baseline.close()
    for server in servers:
        server.stop()


@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(query=queries())
def test_streamed_chunks_are_tag_identical_everywhere(harness, query):
    baseline, sessions = harness
    reference = baseline.run_algebra(query)
    for name, session in sessions.items():
        handle = session.submit(query)
        batches = list(handle.stream().chunks(timeout=30))
        result = handle.result(timeout=30)
        assert result.relation == reference.relation, (
            f"{name} diverged from the unstreamed baseline on {query!r}"
        )
        assert result.lineage == reference.lineage, name
        streamed = [row for batch in batches for row in batch.tuples]
        # PolygenTuple equality covers data AND tags: the streamed batches
        # must concatenate to exactly the final relation.
        assert streamed == list(result.relation.tuples), (
            f"{name} streamed different rows than it returned on {query!r}"
        )


def _canonical(value):
    if isinstance(value, float) and math.isnan(value):
        return "\x00NaN"
    return value


_CELLS = st.one_of(
    st.none(),
    st.integers(min_value=-(2**40), max_value=2**40),
    st.floats(allow_nan=True, allow_infinity=True, width=64),
    st.text(max_size=8),
    st.booleans(),
)


@settings(max_examples=20, deadline=None)
@given(
    rows=st.lists(st.tuples(_CELLS, _CELLS, _CELLS), max_size=12),
    chunk_size=st.integers(min_value=1, max_value=5),
)
def test_nan_nil_and_empty_cells_survive_every_wire(rows, chunk_size):
    database = LocalDatabase("XD")
    database.create(RelationSchema("T", ["A", "B", "C"]))
    database.insert("T", rows)
    lqp = RelationalLQP(database)
    expected = [
        tuple(_canonical(cell) for cell in row) for row in lqp.retrieve("T").rows
    ]
    server = LQPServer(lqp, chunk_size=chunk_size).start()
    try:
        for wire_format in ("binary", "json"):
            remote = RemoteLQP(server.url, timeout=TIMEOUT, wire_format=wire_format)
            try:
                whole = [
                    tuple(_canonical(cell) for cell in row)
                    for row in remote.retrieve("T").rows
                ]
                chunked = [
                    tuple(_canonical(cell) for cell in row)
                    for chunk in remote.retrieve_chunks("T", chunk_size=chunk_size)
                    for row in chunk.rows
                ]
                assert whole == expected, wire_format
                assert chunked == expected, wire_format
                stats = remote.transport_stats()
                if wire_format == "binary" and expected:
                    assert stats.binary_chunks > 0
                if wire_format == "json":
                    assert stats.binary_chunks == 0
            finally:
                remote.close()
    finally:
        server.stop()


_SOURCES = st.frozensets(st.sampled_from(["AD", "PD", "CD", "XD"]), max_size=3)


@settings(max_examples=25, deadline=None)
@given(
    data=st.data(),
    rows=st.lists(
        st.tuples(st.text(max_size=5), st.one_of(st.none(), st.integers())),
        min_size=1,
        max_size=10,
    ),
    chunk_size=st.integers(min_value=1, max_value=4),
)
def test_tag_deltas_split_across_any_chunk_boundary(data, rows, chunk_size):
    sender = TagPool()
    tag_rows = [
        tuple(
            sender.intern(data.draw(_SOURCES), data.draw(_SOURCES))
            for _ in row
        )
        for row in rows
    ]
    store = ColumnarRelation.from_row_major(Heading(("A", "B")), rows, tag_rows, sender)
    receiver = TagPool()
    back = binary.store_from_chunk_payloads(
        binary.store_chunk_payloads(store, chunk_size), pool=receiver
    )
    assert list(back.data_rows()) == list(store.data_rows())
    for ours, theirs in zip(back.tag_rows(), store.tag_rows()):
        for mine, original in zip(ours, theirs):
            assert receiver.pair(mine) == sender.pair(original)


def test_v1_peer_negotiates_json_and_still_answers(monkeypatch):
    """Version-mismatch fallback through the whole service stack: against
    a v1-hello peer the client streams JSON chunks, ships zero binary
    frames, and the answer stays tag-identical to the in-process one."""
    from repro.net import protocol, server as server_module

    reference = PolygenQueryProcessor(
        schema=paper_polygen_schema(),
        registry=_in_process_registry(),
        resolver=paper_identity_resolver(),
        optimize=False,
    )
    query = '(PALUMNUS [DEGREE = "MBA"]) [ANAME, MAJOR]'
    expected = reference.run_algebra(query)
    reference.close()

    def v1_hello(database, relations):
        # A PR-5-era hello: protocol 1, no min_protocol, no formats.
        return {
            "kind": "hello",
            "protocol": 1,
            "database": database,
            "relations": list(relations),
        }

    monkeypatch.setattr(server_module.protocol, "hello_message", v1_hello)
    servers = [
        LQPServer(RelationalLQP(database), chunk_size=3).start()
        for database in paper_databases().values()
    ]
    try:
        registry = LQPRegistry()
        remotes = []
        for server in servers:
            remote = RemoteLQP(server.url, timeout=TIMEOUT)
            remotes.append(remote)
            assert not remote.binary_negotiated
            registry.register(remote)
        with PolygenFederation(
            paper_polygen_schema(), registry, resolver=paper_identity_resolver()
        ) as federation:
            with federation.session(stream_chunk_size=2) as session:
                handle = session.submit(query)
                batches = list(handle.stream().chunks(timeout=30))
                result = handle.result(timeout=30)
        assert result.relation == expected.relation
        assert [r for b in batches for r in b.tuples] == list(result.relation.tuples)
        for remote in remotes:
            assert remote.transport_stats().binary_chunks == 0
            remote.close()
    finally:
        for server in servers:
            server.stop()
