"""Differential properties: hash-partitioned Merge ≡ the paper's fold.

:func:`repro.core.derived.merge` now evaluates an n-ary Merge as one
hash-partitioned pass (:func:`repro.storage.kernels.hash_merge`);
:func:`repro.core.derived.merge_fold` remains the literal left fold of
Outer Natural Total Joins the paper defines.  The fold order is
immaterial (paper, §II), so the two must agree on *everything*: row bags,
cell tags, raised conflicts.  Hypothesis drives adversarial operand sets —
nil keys (loner rows), nil and conflicting data cells, operands with
different headings, empty operands — under every conflict policy.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.cell import ConflictPolicy
from repro.core.derived import merge, merge_fold
from repro.core.relation import PolygenRelation
from repro.core.row import PolygenTuple
from repro.errors import CoalesceConflictError

from tests.property.strategies import cells, keyed_relation_sets

POLICIES = tuple(ConflictPolicy)


def normalize(relation):
    """Order-insensitive bag view of a polygen relation, tags included."""
    assert isinstance(relation, PolygenRelation)
    return (relation.attributes, sorted(((row.data, row.cells) for row in relation), key=repr))


@st.composite
def merge_cases(draw):
    """2..5 operands over headings ``K (+ V, W subsets)`` with fully random
    cells: nil keys, nil data, disagreeing values, overlapping tag sets."""
    count = draw(st.integers(min_value=2, max_value=5))
    operands = []
    for _ in range(count):
        heading = ["K"] + draw(
            st.lists(st.sampled_from(("V", "W")), unique=True, max_size=2)
        )
        rows = draw(
            st.lists(
                st.lists(cells(), min_size=len(heading), max_size=len(heading)),
                max_size=4,
            )
        )
        operands.append(
            PolygenRelation(heading, (PolygenTuple(row) for row in rows))
        )
    policy = draw(st.sampled_from(POLICIES))
    return operands, policy


@settings(max_examples=200, deadline=None)
@given(case=merge_cases())
def test_hash_merge_matches_fold(case):
    operands, policy = case
    try:
        expected = merge_fold(operands, key=["K"], policy=policy)
    except CoalesceConflictError:
        with pytest.raises(CoalesceConflictError):
            merge(operands, key=["K"], policy=policy)
        return
    actual = merge(operands, key=["K"], policy=policy)
    assert normalize(actual) == normalize(expected)


@settings(max_examples=100, deadline=None)
@given(
    operands=keyed_relation_sets(),
    policy=st.sampled_from(POLICIES),
    seed=st.integers(min_value=0, max_value=2**16),
)
def test_operand_order_is_immaterial(operands, policy, seed):
    # The paper's §II claim, which licenses hash partitioning in the first
    # place — and, under the symmetric policies, shuffling too.
    reference = merge(operands, key=["K"], policy=policy)
    if policy in (ConflictPolicy.PREFER_LEFT, ConflictPolicy.PREFER_RIGHT):
        # Order-sensitive by design; only the fold equivalence holds.
        assert normalize(reference) == normalize(
            merge_fold(operands, key=["K"], policy=policy)
        )
        return
    shuffled = list(operands)
    random.Random(seed).shuffle(shuffled)
    assert normalize(merge(shuffled, key=["K"], policy=policy)) == normalize(
        reference
    )


def test_single_operand_and_empty_operand():
    relation = PolygenRelation.from_data(
        ["K", "V"], [("k1", "v1"), (None, "v2")], origins=["AD"]
    )
    empty = PolygenRelation(["K"], ())
    assert normalize(merge([relation], key=["K"])) == normalize(
        merge_fold([relation], key=["K"])
    )
    assert normalize(merge([relation, empty], key=["K"])) == normalize(
        merge_fold([relation, empty], key=["K"])
    )
