"""Scan-sharding equivalence properties.

The shard pass (:mod:`repro.pqp.shard`) must be invisible in the answer:
splitting one Retrieve into K key-range partial scans plus a reassembly
Union must reproduce the unsharded retrieve cell for cell — data,
headings *and tags* — under every executor (serial/concurrent) and every
transport (in-process / remote loopback).  Hypothesis drives randomized
key columns through all four combinations; pinned examples cover the
structural edge cases the partitioner must survive: all-nil key columns,
K larger than the cardinality, and skew that leaves middle shards empty.
"""

import pytest
from hypothesis import HealthCheck, example, given, settings
from hypothesis import strategies as st

from repro.catalog.mapping import AttributeMapping
from repro.catalog.schema import PolygenSchema
from repro.catalog.scheme import PolygenScheme
from repro.lqp.registry import LQPRegistry
from repro.lqp.relational_lqp import RelationalLQP
from repro.pqp.matrix import (
    IntermediateOperationMatrix,
    LocalOperand,
    MatrixRow,
    Operation,
    ResultOperand,
)
from repro.pqp.processor import PolygenQueryProcessor
from repro.pqp.shard import shard_retrieves
from repro.relational.database import LocalDatabase
from repro.relational.schema import RelationSchema
from repro.service.federation import PolygenFederation

TIMEOUT = 5.0

#: Key columns: integers with nils, sized to exercise empty / lopsided
#: shards under widths 2..6.
key_columns = st.lists(
    st.one_of(st.none(), st.integers(min_value=-50, max_value=50)),
    min_size=0,
    max_size=40,
)


def _schema() -> PolygenSchema:
    return PolygenSchema(
        [
            PolygenScheme(
                "PEMP",
                {
                    "EID": [AttributeMapping("AD", "EMP", "EID")],
                    "K": [AttributeMapping("AD", "EMP", "K")],
                    "V": [AttributeMapping("AD", "EMP", "V")],
                },
                primary_key=["EID"],
            )
        ]
    )


def _database(keys) -> LocalDatabase:
    db = LocalDatabase("AD")
    db.load(
        RelationSchema("EMP", ["EID", "K", "V"], key=["EID"]),
        [(f"e{i}", key, f"v{i % 5}") for i, key in enumerate(keys)],
    )
    return db


def _plan() -> IntermediateOperationMatrix:
    return IntermediateOperationMatrix(
        [
            MatrixRow(
                result=ResultOperand(1),
                op=Operation.RETRIEVE,
                lhr=LocalOperand("EMP"),
                el="AD",
                scheme="PEMP",
            )
        ]
    )


def _local_registry(keys) -> LQPRegistry:
    registry = LQPRegistry()
    registry.register(RelationalLQP(_database(keys)))
    return registry


@settings(max_examples=25, deadline=None)
@given(keys=key_columns, width=st.integers(min_value=2, max_value=6))
@example(keys=[None] * 10, width=4)  # all-nil key column: no split, still equal
@example(keys=[0, 1, 2], width=6)  # K > cardinality
@example(keys=[0, 0, 0, 1, 100], width=4)  # skew: middle shards come up empty
@example(keys=[], width=2)  # empty relation
def test_sharded_equals_unsharded_locally(keys, width):
    registry = _local_registry(keys)
    serial = PolygenQueryProcessor(
        schema=_schema(), registry=registry, optimize=False
    )
    concurrent = PolygenQueryProcessor(
        schema=_schema(), registry=registry, concurrent=True, optimize=False
    )
    try:
        baseline = serial.run_plan(_plan())
        sharded, _ = shard_retrieves(
            _plan(), registry, width=width, schema=_schema(), min_tuples=1
        )
        for name, engine in (("serial", serial), ("concurrent", concurrent)):
            run = engine.run_plan(sharded)
            assert run.relation == baseline.relation, (
                f"{name} sharded run diverged for keys={keys!r} width={width}"
            )
            assert run.lineage == baseline.lineage
    finally:
        serial.close()
        concurrent.close()


@settings(
    max_examples=8,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(keys=key_columns, width=st.integers(min_value=2, max_value=4))
@example(keys=[None] * 8, width=3)
@example(keys=[0, 5], width=4)
def test_sharded_equals_unsharded_over_loopback(keys, width):
    from repro.net import LQPServer

    baseline_engine = PolygenQueryProcessor(
        schema=_schema(), registry=_local_registry(keys), optimize=False
    )
    baseline = baseline_engine.run_plan(_plan())
    baseline_engine.close()

    server = LQPServer(RelationalLQP(_database(keys)), chunk_size=3).start()
    registry = LQPRegistry()
    registry.register(server.url, concurrency=4, timeout=TIMEOUT)
    engines = [
        PolygenQueryProcessor(
            schema=_schema(), registry=registry, concurrent=concurrent, optimize=False
        )
        for concurrent in (False, True)
    ]
    try:
        # Stats arrive over the wire (relation_stats round trip, cached).
        sharded, _ = shard_retrieves(
            _plan(), registry, width=width, schema=_schema(), min_tuples=1
        )
        for engine in engines:
            run = engine.run_plan(sharded)
            assert run.relation == baseline.relation
            assert run.lineage == baseline.lineage
    finally:
        for lqp in registry:
            lqp.inner.close()
        for engine in engines:
            engine.close()
        server.stop()


class TestShardedExecutionDetail:
    def test_shards_actually_run_as_range_retrieves(self):
        keys = list(range(37))
        registry = _local_registry(keys)
        sharded, report = shard_retrieves(
            _plan(), registry, width=4, schema=_schema(), min_tuples=1
        )
        assert report.shards_emitted == 4
        engine = PolygenQueryProcessor(
            schema=_schema(), registry=registry, concurrent=True, optimize=False
        )
        try:
            run = engine.run_plan(sharded)
            assert run.relation.cardinality == len(keys)
        finally:
            engine.close()
        stats = registry.get("AD").stats
        assert stats.range_retrieves == 4
        assert stats.retrieves == 0
        # Disjoint partitions: the shards shipped each tuple exactly once.
        assert stats.tuples_shipped == len(keys)


class TestFederationShardOption:
    def test_shard_width_option_end_to_end(self):
        keys = list(range(100))
        with PolygenFederation(_schema(), _local_registry(keys)) as federation:
            with federation.session() as session:
                plain = session.execute("PEMP [EID, K, V]")
                sharded = session.execute("PEMP [EID, K, V]", shard_width=4)
        assert plain.sharding is None
        assert sharded.sharding is not None
        assert sharded.sharding.retrieves_sharded == 1
        assert sharded.sharding.families == (("AD", "EMP", "K", 4),)
        assert sharded.relation == plain.relation
        assert sharded.lineage == plain.lineage

    def test_auto_width_defers_to_native_concurrency(self):
        keys = list(range(100))
        with PolygenFederation(_schema(), _local_registry(keys)) as federation:
            with federation.session() as session:
                result = session.execute("PEMP [EID, K, V]", shard_width="auto")
        # In-process LQPs advertise width 1: auto never over-shards them.
        assert result.sharding is not None
        assert result.sharding.retrieves_sharded == 0

    def test_small_relations_stay_unsharded(self):
        keys = list(range(10))  # below the pass's min-tuples floor
        with PolygenFederation(_schema(), _local_registry(keys)) as federation:
            with federation.session() as session:
                result = session.execute("PEMP [EID, K, V]", shard_width=4)
        assert result.sharding is not None
        assert result.sharding.retrieves_sharded == 0
