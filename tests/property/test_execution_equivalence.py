"""Executor-equivalence properties.

The concurrent runtime, the optimizer's semantic rewrites (selection
pushdown, projection pruning) and the cost-based shape selection must be
invisible in the answer: for any query, the relation they produce — data,
headings, *and tags* — equals the serial, unoptimized pipeline's.
Hypothesis drives randomized polygen queries over the paper's federation
(whose identity resolver and domain transforms are exactly the hazards
pushdown must respect) through five differently-configured processors and
asserts tag-identical results.  The cost-based engine re-plans every query
under models calibrated from its own preceding queries — so across a run
its *shapes* drift (flat Merges become availability-ordered chains) while
its answers must not.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.datasets.paper import (
    paper_databases,
    paper_identity_resolver,
    paper_polygen_schema,
)
from repro.lqp.registry import LQPRegistry
from repro.lqp.relational_lqp import RelationalLQP
from repro.pqp.processor import PolygenQueryProcessor

#: Values seen in (or near-missing from) the paper's data, per probed
#: attribute.  "CitiCorp"/"Citicorp" exercise the identity-resolver
#: aliasing; "Atlantis" never matches.
_SELECTABLE = {
    "PALUMNUS": {
        "DEGREE": ("MBA", "BS", "MS", "Atlantis"),
        "MAJOR": ("IS", "MGT", "EECS"),
        "ANAME": ("John Reed", "Ken Olsen"),
    },
    "PCAREER": {
        "POSITION": ("CEO", "Manager", "Professor"),
        "ONAME": ("Citicorp", "CitiCorp", "MIT", "Genentech"),
    },
    "PORGANIZATION": {
        "INDUSTRY": ("High Tech", "Banking", "Hotel", "Atlantis"),
        "ONAME": ("Citicorp", "CitiCorp", "IBM", "Genentech"),
        "CEO": ("John Reed", "Bob Swanson"),
        "HEADQUARTERS": ("NY", "CA", "MA"),
    },
    "PSTUDENT": {
        "MAJOR": ("Finance", "Math", "EECS"),
        "SNAME": ("John Smith",),
    },
    "PINTERVIEW": {
        "ONAME": ("IBM", "Oracle", "Citicorp"),
        "JOB": ("CFO", "System Analyst"),
    },
    "PFINANCE": {
        "YEAR": (),  # numeric; selected via ONAME instead
        "ONAME": ("IBM", "CitiCorp", "Oracle"),
    },
}

#: (left scheme, join attribute pair, right scheme) shapes from the paper.
_JOINS = (
    ("PALUMNUS", "AID#", "AID#", "PCAREER"),
    ("PCAREER", "ONAME", "ONAME", "PORGANIZATION"),
    ("PINTERVIEW", "ONAME", "ONAME", "PORGANIZATION"),
    ("PFINANCE", "ONAME", "ONAME", "PORGANIZATION"),
)


def _schema_attrs(scheme: str):
    return paper_polygen_schema().scheme(scheme).attributes


def _post_select_attrs(scheme_name: str, attribute: str):
    """The heading a Select on ``attribute`` materializes: only relations
    mapping the probed attribute are retrieved (interpreter, Figure 3)."""
    scheme = paper_polygen_schema().scheme(scheme_name)
    locations = scheme.relations_for(attribute)
    attrs = []
    for candidate in scheme.attributes:
        mapped = {
            polygen
            for location in locations
            for polygen in scheme.rename_map(*location).values()
        }
        if candidate in mapped:
            attrs.append(candidate)
    return tuple(attrs)


@st.composite
def queries(draw) -> str:
    """A random polygen algebra query string."""
    shape = draw(st.sampled_from(("select", "select_project", "join", "join_select")))
    if shape in ("select", "select_project"):
        scheme = draw(st.sampled_from(sorted(_SELECTABLE)))
        pool = {a: vs for a, vs in _SELECTABLE[scheme].items() if vs}
        attribute = draw(st.sampled_from(sorted(pool)))
        value = draw(st.sampled_from(pool[attribute]))
        text = f'({scheme} [{attribute} = "{value}"])'
        if shape == "select_project":
            attrs = list(_post_select_attrs(scheme, attribute))
            keep = draw(
                st.lists(st.sampled_from(attrs), min_size=1, unique=True)
            )
            text = f"({text} [{', '.join(keep)}])"
        return text
    left, lha, rha, right = draw(st.sampled_from(_JOINS))
    text = f"({left} [{lha} = {rha}] {right})"
    if shape == "join_select":
        pool = {a: vs for a, vs in _SELECTABLE[left].items() if vs}
        attribute = draw(st.sampled_from(sorted(pool)))
        value = draw(st.sampled_from(pool[attribute]))
        text = f'(({left} [{attribute} = "{value}"]) [{lha} = {rha}] {right})'
    combined = list(_schema_attrs(left)) + [
        a for a in _schema_attrs(right) if a != rha
    ]
    keep = draw(st.lists(st.sampled_from(combined), min_size=1, unique=True))
    return f"({text} [{', '.join(keep)}])"


def _processor(**kwargs) -> PolygenQueryProcessor:
    registry = LQPRegistry()
    for database in paper_databases().values():
        registry.register(RelationalLQP(database))
    return PolygenQueryProcessor(
        schema=paper_polygen_schema(),
        registry=registry,
        resolver=paper_identity_resolver(),
        **kwargs,
    )


@pytest.fixture(scope="module")
def engines():
    return {
        "baseline": _processor(optimize=False),
        "optimized": _processor(pushdown=True, prune_projections=True),
        "concurrent": _processor(concurrent=True, optimize=False),
        "concurrent_optimized": _processor(
            concurrent=True, pushdown=True, prune_projections=True
        ),
        "cost_optimized": _processor(concurrent=True, optimize="cost"),
    }


_VARIANTS = (
    "optimized",
    "concurrent",
    "concurrent_optimized",
    "cost_optimized",
)


@settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(query=queries())
def test_all_engines_agree(engines, query):
    baseline = engines["baseline"].run_algebra(query)
    for name in _VARIANTS:
        other = engines[name].run_algebra(query)
        assert other.relation == baseline.relation, (
            f"{name} diverged from serial/unoptimized on {query!r}"
        )
        assert other.lineage == baseline.lineage


def test_paper_query_agrees_across_engines(engines):
    from tests.integration.conftest import PAPER_SQL

    baseline = engines["baseline"].run_sql(PAPER_SQL)
    for name in _VARIANTS:
        other = engines[name].run_sql(PAPER_SQL)
        assert other.relation == baseline.relation
