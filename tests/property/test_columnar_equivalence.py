"""Differential property tests: columnar kernels vs. row-path references.

Every algebra primitive (and the heavy derived operators) must produce the
*same relation* whether evaluated through the columnar kernels
(:mod:`repro.core.algebra` → :mod:`repro.storage.kernels`) or through the
original row-at-a-time transcriptions preserved in
:mod:`repro.core.rowpath`.  Relation equality here is the full polygen
notion — same heading and same set of (data, origins, intermediates)
tuples — so a passing run means the storage refactor is bit-identical at
the logical level.
"""

from hypothesis import given
from hypothesis import strategies as st

from repro.core import algebra, derived, rowpath
from repro.core.cell import ConflictPolicy
from repro.core.predicate import AttributeRef, Literal, Theta
from repro.errors import CoalesceConflictError, IncomparableTypesError

from tests.property.strategies import VALUES, relation_pairs, relations


def assert_same_outcome(columnar_fn, rowpath_fn):
    """Run both paths; either both return equal relations or both raise the
    same error type (e.g. order-comparing mixed types)."""
    try:
        expected = rowpath_fn()
    except (IncomparableTypesError, CoalesceConflictError) as error:
        try:
            columnar_fn()
        except type(error):
            return
        raise AssertionError(
            f"row path raised {type(error).__name__}, columnar path did not"
        )
    actual = columnar_fn()
    assert actual == expected
    assert actual.heading == expected.heading
    assert set(actual.tuples) == set(expected.tuples)


@given(relations(min_rows=0, max_rows=8), st.data())
def test_project_equivalence(relation, data):
    attributes = data.draw(
        st.lists(
            st.sampled_from(relation.attributes),
            min_size=1,
            max_size=relation.degree,
            unique=True,
        )
    )
    assert_same_outcome(
        lambda: algebra.project(relation, attributes),
        lambda: rowpath.project(relation, attributes),
    )


@given(st.data())
def test_product_equivalence(data):
    left = data.draw(relations(heading=["A", "B"], max_rows=5))
    right = data.draw(relations(heading=["C", "D"], max_rows=5))
    assert_same_outcome(
        lambda: algebra.product(left, right),
        lambda: rowpath.product(left, right),
    )


@given(relations(min_rows=0, max_rows=8), st.sampled_from(list(Theta)), st.data())
def test_restrict_literal_equivalence(relation, theta, data):
    x = data.draw(st.sampled_from(relation.attributes))
    value = data.draw(st.sampled_from(VALUES))
    assert_same_outcome(
        lambda: algebra.restrict(relation, x, theta, Literal(value)),
        lambda: rowpath.restrict(relation, x, theta, Literal(value)),
    )


@given(relations(min_rows=0, max_rows=8), st.sampled_from(list(Theta)), st.data())
def test_restrict_attribute_equivalence(relation, theta, data):
    x = data.draw(st.sampled_from(relation.attributes))
    y = data.draw(st.sampled_from(relation.attributes))
    assert_same_outcome(
        lambda: algebra.restrict(relation, x, theta, AttributeRef(y)),
        lambda: rowpath.restrict(relation, x, theta, AttributeRef(y)),
    )


@given(relation_pairs(max_rows=8))
def test_union_equivalence(pair):
    left, right = pair
    assert_same_outcome(
        lambda: algebra.union(left, right),
        lambda: rowpath.union(left, right),
    )


@given(relation_pairs(max_rows=8))
def test_difference_equivalence(pair):
    left, right = pair
    assert_same_outcome(
        lambda: algebra.difference(left, right),
        lambda: rowpath.difference(left, right),
    )


@given(st.data(), st.sampled_from(list(ConflictPolicy)))
def test_coalesce_equivalence(data, policy):
    relation = data.draw(relations(heading=["A", "B", "C"], max_rows=8))
    x = data.draw(st.sampled_from(relation.attributes))
    y = data.draw(st.sampled_from([a for a in relation.attributes if a != x]))
    assert_same_outcome(
        lambda: algebra.coalesce(relation, x, y, w="W", policy=policy),
        lambda: rowpath.coalesce(relation, x, y, w="W", policy=policy),
    )


@given(relation_pairs(max_rows=8))
def test_intersect_equivalence(pair):
    left, right = pair
    assert_same_outcome(
        lambda: derived.intersect(left, right),
        lambda: rowpath.intersect(left, right),
    )


@given(st.data())
def test_outer_join_equivalence(data):
    left = data.draw(relations(heading=["A", "B"], max_rows=6))
    right = data.draw(relations(heading=["C", "D"], max_rows=6))
    key_pairs = [("A", "C")]
    assert_same_outcome(
        lambda: derived.outer_join(left, right, key_pairs),
        lambda: rowpath.outer_join(left, right, key_pairs),
    )


@given(st.data())
def test_operator_chain_equivalence(data):
    """A pipeline representative of executor plans agrees end-to-end."""
    left = data.draw(relations(heading=["A", "B"], max_rows=6))
    right = data.draw(relations(heading=["A", "B"], max_rows=6))

    def columnar():
        combined = algebra.union(left, right)
        filtered = algebra.restrict(combined, "A", Theta.NE, Literal("zz"))
        return algebra.project(filtered, ["A"])

    def row():
        combined = rowpath.union(left, right)
        filtered = rowpath.restrict(combined, "A", Theta.NE, Literal("zz"))
        return rowpath.project(filtered, ["A"])

    assert_same_outcome(columnar, row)
