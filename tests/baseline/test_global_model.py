"""Unit tests for the untagged global-model baseline.

The load-bearing property: on the same plan the baseline produces exactly
the polygen result's *data portion* — everything it lacks is the tags.
"""

import pytest

from repro.baseline.global_model import GlobalQueryProcessor
from repro.datasets.paper import (
    build_paper_federation,
    paper_databases,
    paper_identity_resolver,
    paper_polygen_schema,
)
from repro.lqp.registry import LQPRegistry
from repro.lqp.relational_lqp import RelationalLQP

from tests.integration.conftest import PAPER_SQL


@pytest.fixture(scope="module")
def global_pqp():
    registry = LQPRegistry()
    for database in paper_databases().values():
        registry.register(RelationalLQP(database))
    return GlobalQueryProcessor(
        paper_polygen_schema(), registry, resolver=paper_identity_resolver()
    )


@pytest.fixture(scope="module")
def polygen_pqp():
    return build_paper_federation()


class TestPaperQuery:
    def test_same_data_as_polygen_result(self, global_pqp, polygen_pqp):
        untagged = global_pqp.run_sql(PAPER_SQL)
        tagged = polygen_pqp.run_sql(PAPER_SQL)
        assert set(untagged.relation.rows) == set(tagged.relation.data_rows())

    def test_single_source_illusion(self, global_pqp):
        # The baseline's answer carries no provenance whatsoever.
        result = global_pqp.run_sql(PAPER_SQL)
        assert result.relation.attributes == ("ONAME", "CEO")
        assert all(isinstance(v, str) for row in result.relation for v in row)


class TestOperators:
    @pytest.mark.parametrize(
        "algebra",
        [
            'PALUMNUS [DEGREE = "MBA"]',
            "PALUMNUS [ANAME]",
            "PORGANIZATION [ONAME, INDUSTRY]",
            '(PALUMNUS [DEGREE = "MBA"]) [AID# = AID#] PCAREER',
            "(PALUMNUS [MAJOR]) UNION (PSTUDENT [MAJOR])",
            "(PALUMNUS [MAJOR]) MINUS (PSTUDENT [MAJOR])",
            "(PALUMNUS [MAJOR]) INTERSECT (PSTUDENT [MAJOR])",
            "PORGANIZATION [CEO = ANAME] PALUMNUS",
            "PFINANCE [YEAR = 1989]",
        ],
    )
    def test_data_matches_polygen_pipeline(self, global_pqp, polygen_pqp, algebra):
        untagged = global_pqp.run_algebra(algebra)
        tagged = polygen_pqp.run_algebra(algebra)
        assert set(untagged.relation.rows) == set(tagged.relation.data_rows())
        assert untagged.relation.attributes == tagged.relation.attributes

    def test_merge_outer_joins_with_nil_padding(self, global_pqp):
        result = global_pqp.run_algebra("PORGANIZATION [ONAME, CEO]")
        by_name = dict(result.relation.rows)
        assert by_name["MIT"] is None  # AD-only organization, no CEO
        assert by_name["Genentech"] == "Bob Swanson"

    def test_coalesce_conflict_drops_row_like_polygen(self, global_pqp, polygen_pqp):
        expr = "(PORGANIZATION [ONAME, INDUSTRY]) [ONAME COALESCE INDUSTRY AS X]"
        untagged = global_pqp.run_algebra(expr)
        tagged = polygen_pqp.run_algebra(expr)
        assert set(untagged.relation.rows) == set(tagged.relation.data_rows())

    def test_run_plan_reuses_polygen_iom(self, global_pqp, polygen_pqp):
        tagged = polygen_pqp.run_sql(PAPER_SQL)
        untagged = global_pqp.run_plan(tagged.iom)
        assert set(untagged.relation.rows) == set(tagged.relation.data_rows())
