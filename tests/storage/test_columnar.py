"""Unit tests for the columnar relation store and its facade round-trips."""

import pytest

from repro.core.cell import Cell
from repro.core.heading import Heading
from repro.core.relation import PolygenRelation
from repro.core.row import PolygenTuple
from repro.core.tags import sources
from repro.errors import DegreeMismatchError
from repro.storage.columnar import ColumnarRelation
from repro.storage.tag_pool import GLOBAL_TAG_POOL, TagPool


def cell(datum, origins=(), intermediates=()):
    return Cell.of(datum, origins, intermediates)


SAMPLE_ROWS = [
    [cell("a1", ["AD"], ["PD"]), cell(1, ["CD"])],
    [cell("a2", ["PD"]), cell(None)],
    [cell("a1", ["CD"]), cell(1, ["AD", "CD"], ["AD"])],
]


def sample_relation():
    return PolygenRelation.from_cells(["A", "B"], SAMPLE_ROWS)


class TestRoundTrip:
    def test_relation_to_store_to_relation_is_identity(self):
        r = sample_relation()
        rebuilt = PolygenRelation(r.heading, r.store.to_tuples())
        assert rebuilt == r
        assert rebuilt.tuples == r.tuples

    def test_from_store_wraps_without_copying(self):
        r = sample_relation()
        wrapped = PolygenRelation.from_store(r.store)
        assert wrapped.store is r.store
        assert wrapped == r

    def test_from_tuples_matches_facade_constructor(self):
        rows = [PolygenTuple(row) for row in SAMPLE_ROWS]
        store = ColumnarRelation.from_tuples(Heading(["A", "B"]), rows)
        assert store.to_tuples() == tuple(rows)
        assert PolygenRelation.from_store(store) == PolygenRelation(["A", "B"], rows)

    def test_round_trip_preserves_tags_exactly(self):
        r = sample_relation()
        for row, rebuilt in zip(r.tuples, r.store.to_tuples()):
            for mine, theirs in zip(row, rebuilt):
                assert mine.datum == theirs.datum
                assert mine.origins == theirs.origins
                assert mine.intermediates == theirs.intermediates


class TestStoreSemantics:
    def test_exact_duplicates_collapse(self):
        row = PolygenTuple([cell("x", ["AD"])])
        store = ColumnarRelation.from_tuples(Heading(["A"]), [row, row])
        assert store.cardinality == 1

    def test_data_duplicates_with_distinct_tags_coexist(self):
        rows = [PolygenTuple([cell("x", ["AD"])]), PolygenTuple([cell("x", ["CD"])])]
        store = ColumnarRelation.from_tuples(Heading(["A"]), rows)
        assert store.cardinality == 2

    def test_degree_mismatch_rejected(self):
        with pytest.raises(DegreeMismatchError):
            ColumnarRelation.from_tuples(
                Heading(["A", "B"]), [PolygenTuple([cell("x")])]
            )

    def test_from_uniform_rows_interns_two_ids(self):
        pool = TagPool()
        store = ColumnarRelation.from_uniform_rows(
            Heading(["A", "B"]),
            [["x", None], ["y", "z"], ["w", None]],
            origins=sources("AD"),
            pool=pool,
        )
        ids = store.distinct_tag_ids()
        assert len(ids) == 2
        assert store.all_origins() == sources("AD")
        # Nil cells carry the empty-origin id.
        nil_cells = [c for c in store.iter_cells(1) if c.is_nil]
        assert nil_cells and all(c.origins == frozenset() for c in nil_cells)

    def test_from_uniform_rows_validates_degree(self):
        with pytest.raises(DegreeMismatchError):
            ColumnarRelation.from_uniform_rows(Heading(["A", "B"]), [["only-one"]])

    def test_empty_store(self):
        store = ColumnarRelation.empty(Heading(["A", "B"]))
        assert store.cardinality == 0
        assert store.data_rows() == []
        assert store.to_tuples() == ()
        assert store.row_keys() == frozenset()
        assert store.all_origins() == frozenset()

    def test_take_rows_permutes(self):
        r = sample_relation()
        flipped = r.store.take_rows([2, 0, 1])
        assert flipped.data_rows() == [r.store.data_rows()[i] for i in (2, 0, 1)]

    def test_rename_shares_columns(self):
        r = sample_relation()
        renamed = r.store.rename({"A": "Z"})
        assert renamed.columns is r.store.columns
        assert renamed.heading.attributes == ("Z", "B")

    def test_row_keys_equal_iff_same_rows(self):
        r = sample_relation()
        s = PolygenRelation.from_cells(["A", "B"], reversed(SAMPLE_ROWS))
        assert r.store.row_keys() == s.store.row_keys()

    def test_distinct_tag_ids_counts_pairs_not_cells(self):
        r = PolygenRelation.from_data(
            ["A", "B", "C"], [[1, 2, 3], [4, 5, 6], [7, 8, 9]], origins=["AD"]
        )
        assert len(r.store.distinct_tag_ids()) == 1


class TestFacadeViews:
    def test_tuples_are_lazy_and_cached(self):
        r = PolygenRelation.from_data(["A"], [["x"]], origins=["AD"])
        assert r._tuples is None
        first = r.tuples
        assert r.tuples is first

    def test_operator_results_stay_columnar_until_viewed(self):
        from repro.core import algebra

        r = PolygenRelation.from_data(["A", "B"], [["x", 1], ["y", 2]], origins=["AD"])
        out = algebra.project(r, ["A"])
        assert out._tuples is None  # no cells materialized by the operator
        assert [t.data for t in out.tuples] == [("x",), ("y",)]

    def test_equality_across_pools(self):
        private = TagPool()
        rows = [PolygenTuple([cell("x", ["AD"])])]
        mine = PolygenRelation(["A"], rows)
        other = PolygenRelation.from_store(
            ColumnarRelation.from_tuples(Heading(["A"]), rows, pool=private)
        )
        assert mine == other
        assert hash(mine) == hash(other)

    def test_sorted_by_data_mixed_types_numeric_order(self):
        r = PolygenRelation.from_data(["A"], [[10], [9], ["b"], [None], [2]])
        assert [t.data[0] for t in r.sorted_by_data()] == [2, 9, 10, "b", None]

    def test_sorted_by_data_huge_ints_and_nan(self):
        nan = float("nan")
        r = PolygenRelation.from_data(["A"], [[10**400], [5.0], [nan], [1]])
        ordered = [t.data[0] for t in r.sorted_by_data()]
        assert ordered[:2] == [1, 5.0]
        assert ordered[2] == 10**400
        assert ordered[3] != ordered[3]  # NaN sorts after real numerics

    def test_sorted_by_data_strings_unchanged(self):
        r = PolygenRelation.from_data(["A"], [["b"], ["a"], [None]])
        assert [t.data[0] for t in r.sorted_by_data()] == ["a", "b", None]

    def test_global_pool_is_default(self):
        r = PolygenRelation.from_data(["A"], [["x"]])
        assert r.store.pool is GLOBAL_TAG_POOL
