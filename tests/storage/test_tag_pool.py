"""Unit tests for the tag-interning pool."""

import pytest

from repro.core.predicate import Literal, Theta
from repro.core.relation import PolygenRelation
from repro.core import algebra
from repro.core.tags import sources
from repro.storage.tag_pool import GLOBAL_TAG_POOL, TagPool


def test_empty_pair_preinterned():
    pool = TagPool()
    assert pool.EMPTY_ID == 0
    assert pool.pair(0) == (frozenset(), frozenset())
    assert pool.intern(frozenset(), frozenset()) == 0


def test_same_pair_same_id():
    pool = TagPool()
    a = pool.intern(sources("AD"), sources("PD"))
    b = pool.intern(sources("AD"), sources("PD"))
    assert a == b
    assert len(pool) == 2  # empty pair + this one


def test_distinct_pairs_distinct_ids():
    pool = TagPool()
    a = pool.intern(sources("AD"), frozenset())
    b = pool.intern(frozenset(), sources("AD"))
    assert a != b
    assert pool.origins(a) == sources("AD")
    assert pool.intermediates(a) == frozenset()
    assert pool.origins(b) == frozenset()
    assert pool.intermediates(b) == sources("AD")


def test_intern_iterables_normalizes():
    pool = TagPool()
    assert pool.intern_iterables(["AD", "AD"], ()) == pool.intern(
        sources("AD"), frozenset()
    )


def test_merge_is_componentwise_union_and_memoized():
    pool = TagPool()
    a = pool.intern(sources("AD"), sources("PD"))
    b = pool.intern(sources("CD"), frozenset())
    merged = pool.merge(a, b)
    assert pool.pair(merged) == (sources("AD", "CD"), sources("PD"))
    # Commutative and stable.
    assert pool.merge(b, a) == merged
    assert pool.merge(a, a) == a


def test_add_intermediates_noop_cases():
    pool = TagPool()
    a = pool.intern(sources("AD"), sources("PD"))
    assert pool.add_intermediates(a, frozenset()) == a
    assert pool.add_intermediates(a, sources("PD")) == a
    grown = pool.add_intermediates(a, sources("CD"))
    assert pool.pair(grown) == (sources("AD"), sources("PD", "CD"))


def test_absorb_matches_prefer_policy_rule():
    pool = TagPool()
    winner = pool.intern(sources("AD"), sources("PD"))
    loser = pool.intern(sources("CD"), sources("BD"))
    absorbed = pool.absorb(winner, loser)
    assert pool.pair(absorbed) == (sources("AD"), sources("PD", "BD", "CD"))


def test_pool_survives_operator_chains():
    """A chain of algebra operators keeps every relation on the global pool
    and re-interns nothing: the same logical pair always has the same id."""
    r = PolygenRelation.from_data(
        ["A", "B"], [["x", 1], ["y", 2], ["x", 3]], origins=["AD"]
    )
    s = PolygenRelation.from_data(["A", "B"], [["x", 1], ["z", 9]], origins=["PD"])
    out = algebra.project(
        algebra.union(algebra.restrict(r, "B", Theta.GE, Literal(0)), s), ["A"]
    )
    assert out.store.pool is GLOBAL_TAG_POOL
    assert r.store.pool is out.store.pool
    tagged_id = GLOBAL_TAG_POOL.intern(sources("AD"), frozenset())
    assert GLOBAL_TAG_POOL.intern(sources("AD"), frozenset()) == tagged_id
    # The base relation stores that id once per cell, by reference.
    assert set(r.store.tags[0]) == {tagged_id}


def test_relation_stores_share_interned_ids():
    """The extremely common tag ``({AD}, {})`` occupies one pool slot no
    matter how many relations or cells carry it."""
    before = len(GLOBAL_TAG_POOL)
    relations = [
        PolygenRelation.from_data(["A"], [[f"v{i}{j}"] for j in range(50)], origins=["XQ"])
        for i in range(10)
    ]
    after = len(GLOBAL_TAG_POOL)
    # At most one new pair (({XQ}, {})) regardless of 500 cells.
    assert after - before <= 1
    first = relations[0].store.tags[0][0]
    assert all(rel.store.tags[0][0] == first for rel in relations)


def test_translated_moves_ids_between_pools():
    private = TagPool()
    r = PolygenRelation.from_data(["A"], [["x"]], origins=["AD"])
    moved = r.store.translated(private)
    assert moved.pool is private
    assert moved.to_tuples() == r.store.to_tuples()
    assert r.store.translated(r.store.pool) is r.store


def test_pool_repr_and_contains():
    pool = TagPool()
    pair = (sources("AD"), frozenset())
    assert pair not in pool
    pool.intern(*pair)
    assert pair in pool
    assert "TagPool" in repr(pool)


@pytest.mark.parametrize("n", [1, 7])
def test_ids_are_dense_and_stable(n):
    pool = TagPool()
    ids = [pool.intern(frozenset({f"S{i}"}), frozenset()) for i in range(n)]
    assert ids == list(range(1, n + 1))
    # Re-interning changes nothing.
    assert [pool.intern(frozenset({f"S{i}"}), frozenset()) for i in range(n)] == ids


def test_concurrent_interning_is_consistent():
    """The concurrent runtime interns from per-database worker threads;
    racing allocations must never hand two pairs the same id (or one pair
    two ids)."""
    import threading

    pool = TagPool()
    pairs = [
        (frozenset({f"D{i:02d}"}), frozenset(sample))
        for i in range(40)
        for sample in ((), ("AD",), ("AD", "PD"))
    ]
    results: dict = {}
    barrier = threading.Barrier(8)

    def worker(worker_id: int) -> None:
        barrier.wait()
        local = {}
        for pair in pairs:
            local[pair] = pool.intern(*pair)
        results[worker_id] = local

    threads = [threading.Thread(target=worker, args=(i,)) for i in range(8)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()

    reference = results[0]
    for worker_id, local in results.items():
        assert local == reference, f"worker {worker_id} saw different ids"
    for pair, tag_id in reference.items():
        assert pool.pair(tag_id) == pair
    assert len(pool) == len(pairs) + 1  # plus the preinterned empty pair
