"""Unit tests for the tracing core: spans, ambient context, wire
payloads, adoption, and the bounded trace book."""

import threading

from repro.obs.trace import (
    MAX_EVENTS,
    MAX_SPANS,
    Span,
    Tracer,
    current_span,
    span_payloads,
    spans_from_payloads,
    use_span,
)


class TestSpanLifecycle:
    def test_root_and_children_share_one_trace(self):
        tracer = Tracer("test")
        root = tracer.start("query", kind="sql")
        a = root.child("stage-a")
        b = a.child("stage-b")
        assert root.trace_id == a.trace_id == b.trace_id
        assert a.parent_id == root.span_id
        assert b.parent_id == a.span_id
        assert root.attributes == {"kind": "sql"}
        spans = root.trace_spans()
        assert [s.name for s in spans] == ["query", "stage-a", "stage-b"]

    def test_end_is_idempotent_and_first_close_wins(self):
        span = Tracer().start("op")
        span.end()
        first = span.finish
        span.end()
        assert span.finish == first
        assert span.status == "ok"

    def test_end_with_error_sets_status_and_attribute(self):
        span = Tracer().start("op")
        span.end(ValueError("boom"))
        assert span.status == "error"
        assert "boom" in span.attributes["error"]

    def test_duration_and_ordering(self):
        span = Tracer().start("op")
        span.end()
        assert span.finish >= span.start
        assert span.duration >= 0.0

    def test_events_are_capped(self):
        span = Tracer().start("op")
        for i in range(MAX_EVENTS + 10):
            span.add_event("chunk", n=i)
        assert len(span.events) == MAX_EVENTS

    def test_trace_book_caps_span_count(self):
        root = Tracer().start("query")
        for i in range(MAX_SPANS + 5):
            root.child(f"row {i}")
        assert len(root.trace_spans()) == MAX_SPANS
        assert root._book.dropped == 6  # 5 over plus the one that hit the cap

    def test_tree_orphans_hang_off_empty_key(self):
        root = Tracer().start("query")
        child = root.child("stage")
        orphan = Span(name="lost", trace_id=root.trace_id, span_id="x",
                      parent_id="never-recorded")
        root._book.add(orphan)
        tree = root.tree()
        assert [s.name for s in tree[root.span_id]] == ["stage"]
        # Roots and unknown parents both hang off "": the orphan joins
        # the root there instead of vanishing.
        assert {s.name for s in tree[""]} == {"query", "lost"}
        assert child.span_id not in tree  # leaf


class TestAmbientContext:
    def test_with_span_sets_and_restores_ambient(self):
        tracer = Tracer()
        assert current_span() is None
        with tracer.span("outer") as outer:
            assert current_span() is outer
            with tracer.span("inner") as inner:
                assert current_span() is inner
                assert inner.parent_id == outer.span_id
            assert current_span() is outer
            assert inner.finish is not None
        assert current_span() is None
        assert outer.finish is not None

    def test_use_span_does_not_end_the_span(self):
        span = Tracer().start("op")
        with use_span(span):
            assert current_span() is span
        assert span.finish is None  # cross-thread re-entry half
        assert current_span() is None

    def test_ambient_span_is_not_inherited_by_new_threads(self):
        seen = []
        span = Tracer().start("op")
        with use_span(span):
            worker = threading.Thread(target=lambda: seen.append(current_span()))
            worker.start()
            worker.join()
        assert seen == [None]

    def test_explicit_capture_and_reentry_across_threads(self):
        tracer = Tracer()
        results = []

        def work(parent):
            with use_span(parent):
                with tracer.span("on-worker") as child:
                    results.append(child)

        with tracer.span("coordinator") as root:
            worker = threading.Thread(target=work, args=(current_span(),))
            worker.start()
            worker.join()
        assert results[0].parent_id == root.span_id
        assert results[0] in root.trace_spans()


class TestWirePayloads:
    def test_round_trip(self):
        span = Tracer().start("serve.retrieve", database="AD")
        span.add_event("chunk", tuples=3)
        span.end()
        [payload] = span_payloads([span])
        [back] = spans_from_payloads([payload])
        assert back.name == span.name
        assert back.trace_id == span.trace_id
        assert back.span_id == span.span_id
        assert back.attributes == {"database": "AD"}
        assert back.events[0]["tuples"] == 3
        assert back.remote is True

    def test_open_span_payload_carries_a_finish(self):
        span = Tracer().start("op")
        payload = span.to_payload()
        assert payload["finish"] >= payload["start"]

    def test_adopt_rewrites_trace_id_and_joins_the_book(self):
        coordinator = Tracer().start("query")
        server_root = Tracer().continue_remote(
            "serve.retrieve",
            {"id": coordinator.trace_id, "span": coordinator.span_id},
        )
        engine = server_root.child("engine.retrieve")
        engine.end()
        server_root.end()
        payloads = span_payloads(server_root.trace_spans())
        adopted = coordinator.adopt(payloads)
        assert len(adopted) == 2
        assert all(s.remote for s in adopted)
        assert all(s.trace_id == coordinator.trace_id for s in adopted)
        names = [s.name for s in coordinator.trace_spans()]
        assert names == ["query", "serve.retrieve", "engine.retrieve"]
        # Parenting survived the wire: serve under query, engine under serve.
        tree = coordinator.tree()
        assert [s.name for s in tree[coordinator.span_id]] == ["serve.retrieve"]

    def test_continue_remote_without_context_starts_fresh(self):
        span = Tracer().continue_remote("serve.retrieve", {})
        assert span.parent_id is None
        assert len(span.trace_id) == 32
