"""Acceptance tests for the unified telemetry: one stitched distributed
trace, the metrics exposition, and the slow-query log, all driven
through a real federation over loopback LQP servers."""

import contextlib

import pytest

from repro.datasets.paper import (
    paper_databases,
    paper_identity_resolver,
    paper_polygen_schema,
)
from repro.lqp.registry import LQPRegistry
from repro.lqp.relational_lqp import RelationalLQP
from repro.net import LQPServer, RemoteLQP
from repro.service.federation import FederationStats, PolygenFederation

from tests.integration.conftest import PAPER_SQL

TIMEOUT = 5.0


@pytest.fixture(scope="module")
def distributed_federation():
    """AD and CD behind real TCP servers, PD in-process."""
    databases = paper_databases()
    with contextlib.ExitStack() as stack:
        registry = LQPRegistry()
        for name, database in databases.items():
            lqp = RelationalLQP(database)
            if name in ("AD", "CD"):
                server = stack.enter_context(LQPServer(lqp, chunk_size=4))
                lqp = stack.enter_context(RemoteLQP(server.url, timeout=TIMEOUT))
            registry.register(lqp)
        federation = stack.enter_context(
            PolygenFederation(
                paper_polygen_schema(),
                registry,
                resolver=paper_identity_resolver(),
            )
        )
        yield federation


@pytest.fixture
def local_federation():
    registry = LQPRegistry()
    for database in paper_databases().values():
        registry.register(RelationalLQP(database))
    with PolygenFederation(
        paper_polygen_schema(), registry, resolver=paper_identity_resolver()
    ) as federation:
        yield federation


class TestStitchedTrace:
    @pytest.mark.parametrize("engine", ["serial", "concurrent"])
    @pytest.mark.parametrize("wire_format", ["json", "binary"])
    def test_one_trace_spans_coordinator_and_servers(
        self, distributed_federation, engine, wire_format
    ):
        federation = distributed_federation
        result = federation.run(
            PAPER_SQL,
            federation.defaults.replace(engine=engine, wire_format=wire_format),
        )
        assert len(result.relation) == 3  # still the paper's answer
        spans = result.trace.spans
        # ONE trace: every span — coordinator and server-side — shares id.
        assert len({span.trace_id for span in spans}) == 1
        ids = {span.span_id for span in spans}
        roots = [span for span in spans if span.parent_id is None]
        assert [root.name for root in roots] == ["query"]
        # The two remote sources shipped their server-side spans back.
        serve = [span for span in spans if span.name.startswith("serve.")]
        engine_spans = [span for span in spans if span.name.startswith("engine.")]
        assert serve and engine_spans
        assert all(span.remote for span in serve + engine_spans)
        # Correct parenting via the propagated ids: serve spans hang off
        # coordinator row spans, engine spans off their serve span.
        row_ids = {
            span.span_id for span in spans if span.name.startswith("row ")
        }
        assert all(span.parent_id in row_ids for span in serve)
        serve_ids = {span.span_id for span in serve}
        assert all(span.parent_id in serve_ids for span in engine_spans)
        # Everything is reachable: no orphan parents.
        assert all(
            span.parent_id in ids for span in spans if span.parent_id is not None
        )
        # The root covers the pipeline stages.
        stage_names = {
            span.name for span in spans if span.parent_id == roots[0].span_id
        }
        assert {"analyze", "plan", "optimize", "execute"} <= stage_names

    def test_spans_are_closed_and_timestamped(self, distributed_federation):
        result = distributed_federation.run(PAPER_SQL)
        for span in result.trace.spans:
            assert span.finish is not None
            assert span.finish >= span.start

    def test_untraced_lqp_call_ships_no_spans(self, distributed_federation):
        # A direct registry-level call with no ambient span must not ask
        # the server for tracing (zero overhead when nobody is looking).
        remote = distributed_federation.registry.get("AD")
        relation = remote.retrieve("BUSINESS")
        assert len(relation.rows) > 0


class TestMetricsExposition:
    def test_per_source_counters_and_latency_histogram(self, local_federation):
        federation = local_federation
        session = federation.session("metrics-user")
        session.execute(PAPER_SQL)
        session.execute(PAPER_SQL)
        text = federation.metrics_text()
        # Per-source-tag query counters.
        for source in ("AD", "CD", "PD"):
            assert f'polygen_source_consulted_total{{source="{source}"}} 2' in text
        # The latency histogram with exponential buckets.
        assert 'polygen_query_seconds_bucket{le="+Inf"} 2' in text
        assert "polygen_query_seconds_sum" in text
        assert "polygen_query_seconds_count 2" in text
        # Status and per-session labels.
        assert 'polygen_queries_total{status="completed"} 2' in text
        assert 'polygen_session_queries_total{session="metrics-user"} 2' in text
        # Collector-backed gauges.
        assert "polygen_uptime_seconds" in text
        assert 'polygen_busy_seconds_total{location="PQP"}' in text

    def test_transport_gauges_for_remote_sources(self, distributed_federation):
        distributed_federation.run(PAPER_SQL)
        text = distributed_federation.metrics_text()
        assert 'polygen_transport_requests{database="AD"}' in text
        assert 'polygen_transport_requests{database="CD"}' in text

    def test_serve_metrics_endpoint_scrapes(self, local_federation):
        import socket

        local_federation.run(PAPER_SQL)
        exporter = local_federation.serve_metrics()
        with socket.create_connection(exporter.address, timeout=TIMEOUT) as sock:
            sock.sendall(b"GET /metrics HTTP/1.0\r\n\r\n")
            sock.settimeout(TIMEOUT)
            data = b""
            while True:
                piece = sock.recv(4096)
                if not piece:
                    break
                data += piece
        assert b"polygen_queries_total" in data


class TestSlowQueryLog:
    def test_fires_exactly_for_over_threshold_queries(self, local_federation):
        federation = local_federation
        fast = federation.session("fast", slow_query_ms=60_000.0)
        slow = federation.session("slow", slow_query_ms=0.0)
        fast.execute(PAPER_SQL)
        assert federation.events.records("slow_query") == []
        slow.execute(PAPER_SQL)
        records = federation.events.records("slow_query")
        assert len(records) == 1
        assert federation.metrics.counter("polygen_slow_queries_total").total() == 1

    def test_entry_carries_the_debugging_payload(self, local_federation):
        federation = local_federation
        session = federation.session("audit", slow_query_ms=0.0)
        session.execute(PAPER_SQL)
        [entry] = federation.events.records("slow_query")
        assert entry["session"] == "audit"
        assert entry["engine"] == "concurrent"
        assert entry["cache"] == "off"
        assert entry["shape"] == "rewritten"
        assert entry["sources"] == ["AD", "CD", "PD"]
        assert entry["elapsed_ms"] >= 0
        assert isinstance(entry["fingerprint"], str) and entry["fingerprint"]
        assert "PQP" in entry["busy_by_location"]
        assert "SELECT" in entry["query"]

    def test_cache_disposition_tracks_hits(self, local_federation):
        federation = local_federation
        session = federation.session("cached", slow_query_ms=0.0, cache="on")
        session.execute(PAPER_SQL)
        session.execute(PAPER_SQL)
        records = federation.events.records("slow_query")
        assert [r["cache"] for r in records] == ["miss", "hit"]


class TestStatsShapeStability:
    """The deprecation guarantee: ``stats()`` keeps its historical shape
    while the metrics registry is the source of truth underneath."""

    PINNED_FIELDS = [
        "queries_submitted",
        "queries_completed",
        "queries_failed",
        "queries_cancelled",
        "queries_active",
        "sessions_open",
        "uptime_seconds",
        "worker_threads",
        "pool_occupancy",
        "busy_by_location",
        "lqp_queries",
        "lqp_tuples_shipped",
        "calibrated_models",
        "remote_transports",
        "cost_model_error",
        "plans_calibrated",
        "cache",
    ]

    def test_field_names_are_pinned(self):
        import dataclasses

        names = [field.name for field in dataclasses.fields(FederationStats)]
        assert names == self.PINNED_FIELDS

    def test_stats_mirror_the_registry(self, local_federation):
        federation = local_federation
        federation.run(PAPER_SQL)
        with pytest.raises(Exception):
            federation.run("SELECT NOPE FROM NOWHERE")
        stats = federation.stats()
        assert stats.queries_submitted == 2
        assert stats.queries_completed == 1
        assert stats.queries_failed == 1
        assert stats.queries_cancelled == 0
        assert stats.queries_active == 0
        assert stats.queries_completed == int(
            federation.metrics.counter("polygen_queries_total").value(
                status="completed"
            )
        )
        assert set(stats.busy_by_location) == {"AD", "CD", "PD", "PQP"}
        assert stats.cache is not None
        rendered = stats.render()
        assert "queries: 2 submitted, 1 completed, 1 failed" in rendered
