"""Concurrency stress for the shared stats counters.

Many sessions hammer the same :class:`TransferStats` (LQP accounting)
and :class:`ResultCache` at once; the counters must come out exact —
a lost ``+=`` under contention is precisely the bug the internal locks
exist to prevent."""

import threading

from repro.datasets.paper import (
    paper_databases,
    paper_identity_resolver,
    paper_polygen_schema,
)
from repro.lqp.cost import AccountingLQP, TransferStats
from repro.lqp.registry import LQPRegistry
from repro.lqp.relational_lqp import RelationalLQP
from repro.service.cache import ResultCache
from repro.service.federation import PolygenFederation

from tests.integration.conftest import PAPER_SQL


def _run_threads(worker, count):
    threads = [threading.Thread(target=worker, args=(i,)) for i in range(count)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()


class TestTransferStatsAtomicity:
    def test_concurrent_record_loses_no_updates(self):
        stats = TransferStats()

        class _Result:
            cardinality = 3

        workers, rounds = 8, 1500

        def work(_):
            for i in range(rounds):
                stats.record(("retrieve", "select", "retrieve_range")[i % 3], _Result())

        _run_threads(work, workers)
        assert stats.queries == workers * rounds
        assert stats.tuples_shipped == workers * rounds * 3
        assert stats.retrieves + stats.selects + stats.range_retrieves == (
            workers * rounds
        )

    def test_count_and_add_tuples_interleave_exactly(self):
        stats = TransferStats()
        workers, rounds = 8, 1000

        def work(_):
            for _ in range(rounds):
                stats.count("retrieve")
                stats.add_tuples(5)

        _run_threads(work, workers)
        assert stats.queries == stats.retrieves == workers * rounds
        assert stats.tuples_shipped == workers * rounds * 5

    def test_snapshot_and_merge_are_consistent(self):
        stats = TransferStats()

        class _Result:
            cardinality = 1

        stop = threading.Event()

        def mutate():
            while not stop.is_set():
                stats.record("retrieve", _Result())

        writer = threading.Thread(target=mutate)
        writer.start()
        try:
            for _ in range(300):
                snap = stats.snapshot()
                # Internal consistency: the kind counters always sum to
                # queries inside one snapshot, even mid-hammering.
                assert (
                    snap.retrieves
                    + snap.selects
                    + snap.range_retrieves
                    + snap.range_selects
                    == snap.queries
                )
                assert snap.tuples_shipped == snap.queries
        finally:
            stop.set()
            writer.join()

    def test_accounting_lqp_counts_across_worker_threads(self):
        database = paper_databases()["AD"]
        accounted = AccountingLQP(RelationalLQP(database))
        workers, rounds = 6, 200

        def work(_):
            for _ in range(rounds):
                accounted.retrieve("BUSINESS")

        _run_threads(work, workers)
        assert accounted.stats.queries == workers * rounds
        assert accounted.stats.retrieves == workers * rounds


class TestConcurrentSessions:
    def test_federation_counters_exact_under_parallel_sessions(self):
        registry = LQPRegistry()
        for database in paper_databases().values():
            registry.register(AccountingLQP(RelationalLQP(database)))
        with PolygenFederation(
            paper_polygen_schema(),
            registry,
            resolver=paper_identity_resolver(),
        ) as federation:
            workers, rounds = 6, 4
            errors = []

            def work(index):
                try:
                    session = federation.session(f"stress-{index}", cache="on")
                    for _ in range(rounds):
                        result = session.submit(PAPER_SQL).result(timeout=30)
                        assert len(result.relation) == 3
                except Exception as exc:  # pragma: no cover - failure detail
                    errors.append(exc)

            _run_threads(work, workers)
            assert errors == []
            stats = federation.stats()
            total = workers * rounds
            assert stats.queries_submitted == total
            assert stats.queries_completed == total
            assert stats.queries_failed == stats.queries_cancelled == 0
            assert stats.queries_active == 0
            # Cache counters are coherent: every query either hit or missed.
            cache = stats.cache
            assert cache.hits + cache.misses == total
            assert cache.hits >= 1  # repeats of one plan must hit
            # Per-session metric labels: one series per stress session.
            counter = federation.metrics.counter("polygen_session_queries_total")
            assert counter.total() == total
            assert len(counter.samples()) == workers


class TestResultCacheStress:
    def test_concurrent_lookups_and_puts_keep_counters_coherent(self):
        from repro.core.relation import PolygenRelation

        cache = ResultCache(max_entries=16)
        relation = PolygenRelation.from_data(["A"], [[1]], origins=["AD"])
        workers, rounds = 8, 400

        def work(index):
            for i in range(rounds):
                key = f"fp-{(index + i) % 24}"
                if cache.lookup(key) is None:
                    cache.put(key, relation, {}, {"AD"}, cost=1.0)

        _run_threads(work, workers)
        stats = cache.stats()
        assert stats.hits + stats.misses == workers * rounds
        assert stats.entries <= 16
        assert stats.insertions >= stats.entries
