"""Tests for the TCP metrics exposition endpoint."""

import socket

from repro.obs.export import MetricsExporter
from repro.obs.metrics import MetricsRegistry

TIMEOUT = 5.0


def _http_get(address) -> bytes:
    with socket.create_connection(address, timeout=TIMEOUT) as sock:
        sock.sendall(b"GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n")
        sock.settimeout(TIMEOUT)
        data = b""
        while True:
            try:
                piece = sock.recv(4096)
            except socket.timeout:
                break
            if not piece:
                break
            data += piece
    return data


class TestMetricsExporter:
    def test_http_scrape_returns_exposition(self):
        registry = MetricsRegistry()
        registry.counter("polygen_queries_total", "Q.").inc(status="completed")
        with MetricsExporter(registry) as exporter:
            response = _http_get(exporter.address)
        assert response.startswith(b"HTTP/1.1 200 OK")
        assert b"text/plain; version=0.0.4" in response
        assert b'polygen_queries_total{status="completed"} 1' in response

    def test_collectors_refresh_per_scrape(self):
        registry = MetricsRegistry()
        state = {"v": 1}
        registry.add_collector(lambda r: r.gauge("live").set(state["v"]))
        with MetricsExporter(registry) as exporter:
            assert b"live 1" in _http_get(exporter.address)
            state["v"] = 2
            assert b"live 2" in _http_get(exporter.address)

    def test_close_is_idempotent_and_frees_the_port(self):
        registry = MetricsRegistry()
        exporter = MetricsExporter(registry)
        address = exporter.address
        exporter.close()
        exporter.close()
        rebound = MetricsExporter(registry, port=address[1])
        rebound.close()
