"""Unit tests for the structured event log and the slow-query payload."""

import json
import threading

from repro.obs.events import EventLog, slow_query_event


class TestEventLog:
    def test_emit_and_filtered_records(self):
        log = EventLog()
        log.emit("slow_query", query="q1")
        log.emit("other", detail=1)
        log.emit("slow_query", query="q2")
        assert len(log) == 3
        slow = log.records("slow_query")
        assert [r["query"] for r in slow] == ["q1", "q2"]
        assert all(r["at"] > 0 for r in slow)

    def test_tail_is_bounded_but_len_counts_everything(self):
        log = EventLog(tail=4)
        for i in range(10):
            log.emit("e", n=i)
        assert len(log) == 10
        assert [r["n"] for r in log.records()] == [6, 7, 8, 9]

    def test_jsonl_sink_appends_parseable_lines(self, tmp_path):
        path = tmp_path / "events.jsonl"
        log = EventLog(path)
        log.emit("slow_query", elapsed_ms=12.5)
        log.emit("slow_query", elapsed_ms=80.0)
        lines = path.read_text().strip().splitlines()
        assert len(lines) == 2
        records = [json.loads(line) for line in lines]
        assert records[1]["elapsed_ms"] == 80.0
        assert records[0]["event"] == "slow_query"

    def test_concurrent_emitters_never_tear_lines(self, tmp_path):
        path = tmp_path / "events.jsonl"
        log = EventLog(path)
        workers, rounds = 6, 50

        def work(worker):
            for i in range(rounds):
                log.emit("e", worker=worker, i=i)

        threads = [
            threading.Thread(target=work, args=(w,)) for w in range(workers)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        lines = path.read_text().strip().splitlines()
        assert len(lines) == workers * rounds
        for line in lines:
            json.loads(line)  # every line is a whole record
        assert len(log) == workers * rounds


class TestSlowQueryEvent:
    def test_payload_shape(self):
        payload = slow_query_event(
            query="SELECT ...",
            elapsed_ms=123.4567,
            threshold_ms=100,
            fingerprint="abc123",
            shape="pushdown",
            cache="miss",
            busy_by_location={"AD": 0.12345678, "PQP": 0.001},
            sources=["CD", "AD"],
            session="alice",
            engine="concurrent",
        )
        assert payload == {
            "query": "SELECT ...",
            "elapsed_ms": 123.457,
            "threshold_ms": 100.0,
            "fingerprint": "abc123",
            "shape": "pushdown",
            "cache": "miss",
            "busy_by_location": {"AD": 0.123457, "PQP": 0.001},
            "sources": ["AD", "CD"],
            "session": "alice",
            "engine": "concurrent",
        }
