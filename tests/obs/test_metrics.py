"""Unit tests for the metrics registry: instruments, labels, exposition
format, collectors, and multi-threaded counter integrity."""

import threading

import pytest

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    default_buckets,
    global_registry,
)


class TestCounter:
    def test_inc_value_total_across_labels(self):
        counter = Counter("polygen_queries_total", "Queries.")
        counter.inc(status="completed")
        counter.inc(2, status="completed")
        counter.inc(status="failed")
        assert counter.value(status="completed") == 3
        assert counter.value(status="failed") == 1
        assert counter.value(status="cancelled") == 0
        assert counter.total() == 4

    def test_counters_only_go_up(self):
        counter = Counter("c", "")
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_render_includes_help_type_and_labels(self):
        counter = Counter("polygen_queries_total", "Queries by status.")
        counter.inc(status="completed")
        lines = counter.render()
        assert "# HELP polygen_queries_total Queries by status." in lines
        assert "# TYPE polygen_queries_total counter" in lines
        assert 'polygen_queries_total{status="completed"} 1' in lines

    def test_render_empty_family_emits_a_zero_sample(self):
        assert Counter("c", "").render()[-1] == "c 0"

    def test_label_values_are_escaped(self):
        counter = Counter("c", "")
        counter.inc(name='he said "hi"\n')
        sample = counter.render()[-1]
        assert '\\"hi\\"' in sample and "\\n" in sample


class TestGauge:
    def test_set_inc_dec(self):
        gauge = Gauge("g", "")
        gauge.set(5, database="AD")
        gauge.inc(2, database="AD")
        gauge.dec(database="AD")
        assert gauge.value(database="AD") == 6
        assert gauge.value(database="CD") == 0


class TestHistogram:
    def test_default_buckets_are_exponential(self):
        bounds = default_buckets()
        assert len(bounds) == 18
        assert bounds[0] == pytest.approx(0.0005)
        assert bounds[1] / bounds[0] == pytest.approx(2.0)

    def test_default_buckets_validate(self):
        with pytest.raises(ValueError):
            default_buckets(start=0)
        with pytest.raises(ValueError):
            default_buckets(factor=1.0)

    def test_observe_sum_count(self):
        histogram = Histogram("h", "", buckets=[0.1, 1.0, 10.0])
        for value in (0.05, 0.5, 5.0, 50.0):
            histogram.observe(value)
        assert histogram.count() == 4
        assert histogram.sum() == pytest.approx(55.55)

    def test_render_is_cumulative_with_inf(self):
        histogram = Histogram("h", "", buckets=[0.1, 1.0])
        for value in (0.05, 0.5, 5.0):
            histogram.observe(value)
        lines = histogram.render()
        assert 'h_bucket{le="0.1"} 1' in lines
        assert 'h_bucket{le="1"} 2' in lines
        assert 'h_bucket{le="+Inf"} 3' in lines
        assert "h_sum 5.55" in lines
        assert "h_count 3" in lines

    def test_unsorted_buckets_rejected(self):
        with pytest.raises(ValueError):
            Histogram("h", "", buckets=[1.0, 0.1])


class TestRegistry:
    def test_families_are_idempotent_by_name(self):
        registry = MetricsRegistry()
        assert registry.counter("c") is registry.counter("c")
        assert registry.gauge("g") is registry.gauge("g")

    def test_kind_mismatch_is_an_error(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ValueError, match="already registered"):
            registry.gauge("x")

    def test_render_sorts_families_and_ends_with_newline(self):
        registry = MetricsRegistry()
        registry.counter("zebra").inc()
        registry.counter("aardvark").inc()
        text = registry.render()
        assert text.index("aardvark") < text.index("zebra")
        assert text.endswith("\n")

    def test_collectors_run_at_render_time(self):
        registry = MetricsRegistry()
        state = {"depth": 3}
        registry.add_collector(
            lambda r: r.gauge("queue_depth").set(state["depth"])
        )
        assert "queue_depth 3" in registry.render()
        state["depth"] = 7
        assert "queue_depth 7" in registry.render()

    def test_snapshot_covers_counters_and_gauges(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(status="ok")
        registry.gauge("g").set(2)
        snapshot = registry.snapshot()
        assert snapshot["c"][(("status", "ok"),)] == 1
        assert snapshot["g"][()] == 2

    def test_global_registry_is_a_singleton(self):
        assert global_registry() is global_registry()


class TestThreadSafety:
    def test_concurrent_increments_lose_nothing(self):
        counter = Counter("c", "")
        histogram = Histogram("h", "", buckets=[0.5])
        rounds, workers = 2000, 8

        def work():
            for _ in range(rounds):
                counter.inc(status="completed")
                histogram.observe(0.1)

        threads = [threading.Thread(target=work) for _ in range(workers)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert counter.value(status="completed") == rounds * workers
        assert histogram.count() == rounds * workers
