"""LogStoreLQP unit tests: append, rotate, replay.

The scan-filter query semantics are covered federation-wide in
``tests/property/test_backend_equivalence.py``; here we pin the log's
own mechanics — segment rotation, replay-on-open, the append-only
constraint set, and the JSON-safety domain.
"""

import json
import os

import pytest

from repro.backends import LogStoreLQP
from repro.core.predicate import Theta
from repro.errors import (
    ConstraintViolationError,
    LocalEngineError,
    UnknownRelationError,
)
from repro.lqp.relational_lqp import RelationalLQP
from repro.relational.database import LocalDatabase
from repro.relational.schema import RelationSchema


def _database() -> LocalDatabase:
    db = LocalDatabase("LD")
    db.load(
        RelationSchema("EVENTS", ["ID", "KIND", "SIZE"], key=["ID"]),
        [(1, "put", 10), (2, "get", None), (3, "del", 4)],
    )
    return db


@pytest.fixture()
def store(tmp_path):
    with LogStoreLQP.from_database(_database(), str(tmp_path / "log")) as lqp:
        yield lqp


class TestLifecycle:
    def test_empty_store_requires_a_database_name(self, tmp_path):
        with pytest.raises(LocalEngineError, match="database name"):
            LogStoreLQP(str(tmp_path / "empty"))

    def test_replay_on_open_recovers_everything(self, store, tmp_path):
        path = store.path
        retrieved = store.retrieve("EVENTS")
        store.close()
        reopened = LogStoreLQP.open(path)
        assert reopened.name == "LD"
        assert reopened.relation_names() == ("EVENTS",)
        assert reopened.retrieve("EVENTS") == retrieved
        reopened.close()

    def test_reopen_with_wrong_name_is_refused(self, store):
        path = store.path
        store.close()
        with pytest.raises(LocalEngineError, match="holds database 'LD'"):
            LogStoreLQP.open(path, database="OTHER")

    def test_appends_after_reopen_are_replayed_too(self, store):
        path = store.path
        store.append("EVENTS", [(4, "put", 9)])
        store.close()
        reopened = LogStoreLQP.open(path)
        assert reopened.cardinality_estimate("EVENTS") == 4
        reopened.close()

    def test_capabilities_declare_the_weak_engine(self, store):
        capabilities = store.capabilities()
        assert not capabilities.native_select
        assert not capabilities.native_range
        assert not capabilities.native_projection
        assert not capabilities.splittable_scans
        assert not capabilities.signals_writes


class TestSegments:
    def test_small_segment_limit_rotates_files(self, tmp_path):
        store = LogStoreLQP(str(tmp_path / "log"), database="LD", segment_rows=3)
        store.create(RelationSchema("E", ["ID"], key=["ID"]))
        for i in range(8):
            store.append("E", [(i,)])
        assert store.segment_count() > 1
        assert store.cardinality_estimate("E") == 8
        store.close()
        reopened = LogStoreLQP.open(str(tmp_path / "log"))
        assert reopened.cardinality_estimate("E") == 8
        reopened.close()

    def test_segments_are_one_json_record_per_line(self, store):
        store.append("EVENTS", [(9, "put", 1)])
        segments = sorted(
            os.path.join(store.path, name) for name in os.listdir(store.path)
        )
        for segment in segments:
            with open(segment, "r", encoding="utf-8") as handle:
                for line in handle:
                    record = json.loads(line)
                    assert isinstance(record, dict)

    def test_out_of_band_appends_are_visible_on_reopen(self, store):
        # Another process appends a record the engine never hears about —
        # the signals_writes=False scenario the cache TTL exists for.
        path = store.path
        store.close()
        segments = sorted(os.listdir(path))
        with open(os.path.join(path, segments[-1]), "a", encoding="utf-8") as handle:
            handle.write(
                json.dumps(
                    {"rows": {"relation": "EVENTS", "rows": [[99, "ext", 0]]}}
                )
                + "\n"
            )
        reopened = LogStoreLQP.open(path)
        assert reopened.cardinality_estimate("EVENTS") == 4
        reopened.close()


class TestAppendConstraints:
    def test_duplicate_key_is_refused(self, store):
        with pytest.raises(ConstraintViolationError, match="duplicate key"):
            store.append("EVENTS", [(1, "again", 0)])

    def test_nil_key_is_refused(self, store):
        with pytest.raises(ConstraintViolationError, match="nil key"):
            store.append("EVENTS", [(None, "x", 0)])

    def test_degree_mismatch_is_refused(self, store):
        with pytest.raises(ConstraintViolationError, match="degree"):
            store.append("EVENTS", [(5, "x")])

    @pytest.mark.parametrize("value", [True, float("nan"), float("inf"), object()])
    def test_json_unsafe_values_are_refused(self, store, value):
        with pytest.raises(LocalEngineError, match="cannot persist"):
            store.append("EVENTS", [(7, value, 0)])

    def test_unknown_relation(self, store):
        with pytest.raises(UnknownRelationError):
            store.append("NOPE", [(1,)])
        with pytest.raises(UnknownRelationError):
            store.retrieve("NOPE")

    def test_duplicate_create_is_refused(self, store):
        with pytest.raises(ConstraintViolationError, match="already exists"):
            store.create(RelationSchema("EVENTS", ["ID"], key=["ID"]))


class TestQuerySurface:
    def test_select_matches_the_reference_engine(self, store):
        reference = RelationalLQP(_database())
        for theta, value in [
            (Theta.EQ, "put"),
            (Theta.NE, "get"),
            (Theta.GT, "del"),
        ]:
            assert store.select("EVENTS", "KIND", theta, value) == (
                reference.select("EVENTS", "KIND", theta, value)
            )

    def test_stats_refresh_as_the_log_grows(self, store):
        assert store.relation_stats("EVENTS").cardinality == 3
        store.append("EVENTS", [(4, "put", 99)])
        stats = store.relation_stats("EVENTS")
        assert stats.cardinality == 4
        assert stats.columns["SIZE"].maximum == 99
