"""SqliteLQP unit tests: SQL pushdown with polygen-exact semantics.

The federation-level equivalence (tag-identical answers through the PQP)
lives in ``tests/property/test_backend_equivalence.py``; this module pins
the adapter's engine-level contract — the type-faithfulness gaps between
SQLite and :class:`~repro.core.predicate.Theta` that the adapter must
close, persistence across reopen, and the catalog surface.
"""

import pytest

from repro.backends import SqliteLQP
from repro.core.predicate import Theta
from repro.errors import (
    ConstraintViolationError,
    IncomparableTypesError,
    LocalEngineError,
    UnknownAttributeError,
    UnknownRelationError,
)
from repro.lqp.relational_lqp import RelationalLQP
from repro.relational.database import LocalDatabase
from repro.relational.relation import Relation
from repro.relational.schema import RelationSchema


def _database() -> LocalDatabase:
    db = LocalDatabase("TD")
    db.load(
        RelationSchema("R", ["K", "N", "S"], key=["K"]),
        [
            (1, 10, "alpha"),
            (2, 25, "beta"),
            (3, None, "gamma"),
            (4, 7, None),
        ],
    )
    db.load(
        RelationSchema("MIXED", ["K", "V"], key=["K"]),
        [(1, "x"), (2, 3.5), (3, None)],
    )
    return db


@pytest.fixture()
def store():
    with SqliteLQP.from_database(_database()) as lqp:
        yield lqp


@pytest.fixture()
def reference():
    return RelationalLQP(_database())


class TestLifecycle:
    def test_new_store_requires_a_database_name(self, tmp_path):
        with pytest.raises(LocalEngineError, match="database name"):
            SqliteLQP(str(tmp_path / "new.db"))

    def test_reopen_recovers_name_relations_and_rows(self, tmp_path):
        path = str(tmp_path / "store.db")
        original = SqliteLQP.from_database(_database(), path)
        retrieved = original.retrieve("R")
        original.close()

        reopened = SqliteLQP.open(path)
        assert reopened.name == "TD"
        assert reopened.relation_names() == ("R", "MIXED")
        assert reopened.retrieve("R") == retrieved
        reopened.close()

    def test_reopen_with_wrong_name_is_refused(self, tmp_path):
        path = str(tmp_path / "store.db")
        SqliteLQP.from_database(_database(), path).close()
        with pytest.raises(LocalEngineError, match="holds database 'TD'"):
            SqliteLQP.open(path, database="OTHER")

    def test_interned_tags_survive_reopen(self, tmp_path):
        path = str(tmp_path / "store.db")
        SqliteLQP.from_database(_database(), path).close()
        reopened = SqliteLQP.open(path)
        assert "TD" in reopened.interned_tags()
        reopened.close()

    def test_capabilities_distinguish_memory_from_file(self, tmp_path):
        memory = SqliteLQP.from_database(_database())
        assert memory.capabilities().signals_writes
        memory.close()
        on_disk = SqliteLQP.from_database(_database(), str(tmp_path / "f.db"))
        # Another process can rewrite the file: invalidation alone cannot
        # be trusted, and the cache must bound staleness with a TTL.
        assert not on_disk.capabilities().signals_writes
        assert on_disk.capabilities().native_select
        assert on_disk.capabilities().native_range
        assert on_disk.capabilities().native_projection
        on_disk.close()


class TestInsertDomain:
    """Values SQLite would hand back changed are refused at the door."""

    @pytest.mark.parametrize("value", [True, False, float("nan"), 2**63, -(2**63) - 1, object()])
    def test_unstorable_values_are_refused(self, store, value):
        with pytest.raises(LocalEngineError, match="cannot store"):
            store.insert("R", [(9, value, "z")])

    def test_refused_insert_leaves_no_partial_rows(self, store):
        before = store.retrieve("R")
        with pytest.raises(LocalEngineError):
            store.insert("R", [(8, 1, "ok"), (9, float("nan"), "bad")])
        assert store.retrieve("R") == before

    def test_nil_key_is_a_constraint_violation(self, store):
        with pytest.raises(ConstraintViolationError, match="nil key"):
            store.insert("R", [(None, 1, "z")])

    def test_duplicate_key_is_a_constraint_violation(self, store):
        with pytest.raises(ConstraintViolationError, match="duplicate key"):
            store.insert("R", [(1, 99, "again")])

    def test_degree_mismatch_is_a_constraint_violation(self, store):
        with pytest.raises(ConstraintViolationError, match="degree"):
            store.insert("R", [(9, 1)])

    def test_unknown_relation(self, store):
        with pytest.raises(UnknownRelationError):
            store.retrieve("NOPE")


class TestSelectSemantics:
    """Every θ answers exactly as the Python reference engine."""

    @pytest.mark.parametrize(
        "attribute,theta,value",
        [
            ("N", Theta.EQ, 10),
            ("N", Theta.NE, 10),
            ("N", Theta.GT, 9),
            ("N", Theta.LE, 10),
            ("S", Theta.EQ, "beta"),
            ("S", Theta.GT, "alpha"),
            ("N", Theta.EQ, 10.0),  # int/float cross-class equality holds
            ("N", Theta.EQ, "10"),  # int/str equality does not
            ("K", Theta.EQ, None),  # nil satisfies no θ
            ("N", Theta.NE, None),
        ],
    )
    def test_matches_reference(self, store, reference, attribute, theta, value):
        assert store.select("R", attribute, theta, value) == reference.select(
            "R", attribute, theta, value
        )

    def test_nan_ne_uses_the_python_fallback(self, store, reference):
        # SQLite binds NaN as NULL, so `col <> NULL` would be empty; the
        # polygen answer is every non-nil row.
        nan = float("nan")
        assert store.select("R", "N", Theta.NE, nan) == reference.select(
            "R", "N", Theta.NE, nan
        )
        assert store.select("R", "N", Theta.NE, nan).cardinality == 3

    def test_ordering_against_mixed_column_raises_like_python(
        self, store, reference
    ):
        with pytest.raises(IncomparableTypesError):
            reference.select("MIXED", "V", Theta.GT, 1.0)
        with pytest.raises(IncomparableTypesError):
            store.select("MIXED", "V", Theta.GT, 1.0)

    def test_equality_against_mixed_column_is_fine(self, store, reference):
        assert store.select("MIXED", "V", Theta.EQ, 3.5) == reference.select(
            "MIXED", "V", Theta.EQ, 3.5
        )

    def test_unknown_attribute_raises(self, store):
        with pytest.raises(UnknownAttributeError):
            store.select("R", "NOPE", Theta.EQ, 1)


class TestProjectionAndRanges:
    def test_retrieve_projection(self, store, reference):
        assert store.retrieve("R", columns=["S", "K"]) == reference.retrieve(
            "R", columns=["S", "K"]
        )

    def test_projection_of_absent_column_raises(self, store):
        with pytest.raises(UnknownAttributeError):
            store.retrieve("R", columns=["NOPE"])

    @pytest.mark.parametrize(
        "lower,upper,include_nil",
        [(2, 4, False), (None, 3, True), (2, None, False), (None, None, True)],
    )
    def test_retrieve_range_matches(self, store, reference, lower, upper, include_nil):
        expected = reference.retrieve_range(
            "R", "K", lower=lower, upper=upper, include_nil=include_nil
        )
        got = store.retrieve_range(
            "R", "K", lower=lower, upper=upper, include_nil=include_nil
        )
        assert got == expected

    def test_nil_owning_shard_includes_nil_cells(self, store, reference):
        expected = reference.retrieve_range("R", "N", upper=10, include_nil=True)
        got = store.retrieve_range("R", "N", upper=10, include_nil=True)
        assert got == expected
        assert any(row[1] is None for row in got.rows)

    def test_select_range_composes_predicate_and_interval(self, store, reference):
        expected = reference.select_range(
            "R", "S", Theta.NE, "gamma", "K", lower=1, upper=4
        )
        got = store.select_range(
            "R", "S", Theta.NE, "gamma", "K", lower=1, upper=4
        )
        assert got == expected


class TestCatalog:
    def test_cardinality(self, store):
        assert store.cardinality_estimate("R") == 4

    def test_relation_stats_match_the_python_computation(self, store, reference):
        assert store.relation_stats("R") == reference.relation_stats("R")
        assert store.relation_stats("MIXED") == reference.relation_stats("MIXED")

    def test_stats_refresh_after_insert(self, store):
        assert store.relation_stats("R").cardinality == 4
        store.insert("R", [(5, 100, "delta")])
        stats = store.relation_stats("R")
        assert stats.cardinality == 5
        assert stats.columns["N"].maximum == 100

    def test_stats_observe_external_writers_of_a_shared_file(self, tmp_path):
        path = str(tmp_path / "shared.db")
        ours = SqliteLQP.from_database(_database(), path)
        assert ours.relation_stats("R").cardinality == 4
        other = SqliteLQP.open(path)
        other.insert("R", [(6, 1, "ext")])
        other.close()
        # PRAGMA data_version keys the cache, so the foreign write shows.
        assert ours.relation_stats("R").cardinality == 5
        ours.close()

    def test_empty_relation_round_trips(self, store):
        store.create(RelationSchema("EMPTY", ["A", "B"], key=["A"]))
        assert store.retrieve("EMPTY") == Relation(["A", "B"])
        assert store.relation_stats("EMPTY").cardinality == 0


class TestConcurrency:
    def test_threaded_selects_agree_with_serial(self, store):
        import threading

        expected = store.select("R", "N", Theta.GT, 5)
        results = []

        def worker():
            results.append(store.select("R", "N", Theta.GT, 5))

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert all(result == expected for result in results)
