"""The capability contract and the registry's URL schemes.

Capabilities are the backends subsystem's spine: every LQP describes its
native powers through one frozen descriptor, wrappers delegate it
unchanged, the wire serves it (with the two wire-forced flags), and the
registry can open sqlite/log stores straight from URLs.
"""

import pytest

from repro.backends import KVStoreLQP, LogStoreLQP, SqliteLQP
from repro.core.predicate import Theta
from repro.errors import ProtocolError
from repro.lqp.base import Capabilities
from repro.lqp.cost import AccountingLQP, LatencyLQP
from repro.lqp.csv_lqp import CsvLQP
from repro.lqp.registry import LQPRegistry
from repro.lqp.relational_lqp import RelationalLQP
from repro.relational.database import LocalDatabase
from repro.relational.schema import RelationSchema


def _database(name="XD") -> LocalDatabase:
    db = LocalDatabase(name)
    db.load(RelationSchema("R", ["K", "V"], key=["K"]), [(1, "a"), (2, "b")])
    return db


class TestDescriptor:
    def test_defaults_match_the_historical_contract(self):
        capabilities = Capabilities()
        assert capabilities.native_select
        assert not capabilities.native_range
        assert not capabilities.native_projection
        assert capabilities.splittable_scans
        assert capabilities.signals_writes

    def test_round_trips_through_dict(self):
        original = Capabilities(
            native_select=False,
            native_range=True,
            native_projection=True,
            splittable_scans=False,
            signals_writes=False,
        )
        assert Capabilities.from_dict(original.to_dict()) == original

    def test_from_dict_tolerates_unknown_and_missing_fields(self):
        # Forward compatibility: an older client reading a newer server's
        # payload (extra keys) or vice versa (missing keys) must not break.
        capabilities = Capabilities.from_dict(
            {"native_range": True, "future_power": True}
        )
        assert capabilities.native_range
        assert capabilities.native_select  # default fills the gap

    def test_relational_lqp_reports_projection_capability(self):
        capabilities = RelationalLQP(_database()).capabilities()
        assert capabilities.native_select
        assert capabilities.native_projection

    def test_csv_lqp_follows_its_projection_support(self):
        lqp = CsvLQP("CSV", {"R": "K,V\n1,a\n"})
        assert (
            lqp.capabilities().native_projection
            == lqp.supports_column_projection
        )


class TestWrapperDelegation:
    """Accounting/latency decoration must not change the declared powers."""

    @pytest.mark.parametrize(
        "factory",
        [
            lambda db, tmp: SqliteLQP.from_database(db),
            lambda db, tmp: LogStoreLQP.from_database(db, str(tmp / "log")),
            lambda db, tmp: KVStoreLQP.from_database(db),
            lambda db, tmp: RelationalLQP(db),
        ],
        ids=["sqlite", "log", "kv", "relational"],
    )
    def test_wrappers_pass_capabilities_through(self, tmp_path, factory):
        inner = factory(_database(), tmp_path)
        assert AccountingLQP(inner).capabilities() == inner.capabilities()
        assert LatencyLQP(inner).capabilities() == inner.capabilities()
        assert (
            AccountingLQP(LatencyLQP(inner)).capabilities()
            == inner.capabilities()
        )

    def test_registry_wrapper_serves_the_inner_capabilities(self):
        registry = LQPRegistry()
        registry.register(KVStoreLQP.from_database(_database()))
        assert not registry.get("XD").capabilities().native_select


class TestRegistryUrls:
    def test_sqlite_url_opens_and_queries(self, tmp_path):
        path = tmp_path / "store.db"
        SqliteLQP.from_database(_database(), str(path)).close()
        registry = LQPRegistry()
        wrapped = registry.register(f"sqlite://{path}")
        assert wrapped.name == "XD"
        assert wrapped.select("R", "V", Theta.EQ, "a").cardinality == 1
        registry.close()

    def test_file_url_opens_a_log_store(self, tmp_path):
        path = tmp_path / "log"
        LogStoreLQP.from_database(_database(), str(path)).close()
        registry = LQPRegistry()
        wrapped = registry.register(f"file://{path}")
        assert wrapped.name == "XD"
        assert wrapped.retrieve("R").cardinality == 2
        assert not wrapped.capabilities().signals_writes
        registry.close()

    def test_registry_close_releases_url_opened_backends(self, tmp_path):
        path = tmp_path / "store.db"
        SqliteLQP.from_database(_database(), str(path)).close()
        registry = LQPRegistry()
        wrapped = registry.register(f"sqlite://{path}")
        registry.close()
        import sqlite3

        with pytest.raises(sqlite3.ProgrammingError):
            wrapped.inner.retrieve("R")

    def test_unknown_scheme_is_a_protocol_error(self):
        registry = LQPRegistry()
        with pytest.raises(ProtocolError, match="unknown LQP URL scheme"):
            registry.register("redis://localhost:6379")

    def test_remote_options_only_apply_to_polygen_urls(self, tmp_path):
        path = tmp_path / "store.db"
        SqliteLQP.from_database(_database(), str(path)).close()
        registry = LQPRegistry()
        with pytest.raises(TypeError, match="polygen://"):
            registry.register(f"sqlite://{path}", concurrency=4)


class TestWireCapabilities:
    """The server serves capabilities; the wire forces the two flags whose
    meaning is "executed on the far side" — select and projection."""

    @pytest.fixture()
    def loopback(self, tmp_path):
        from repro.net import LQPServer
        from repro.net.client import RemoteLQP

        inner = LogStoreLQP.from_database(_database("WD"), str(tmp_path / "log"))
        server = LQPServer(inner).start()
        client = RemoteLQP(server.url)
        yield inner, client
        client.close()
        server.stop()
        inner.close()

    def test_remote_capabilities_force_wire_side_flags(self, loopback):
        inner, client = loopback
        remote = client.capabilities()
        # The log store can do neither natively, but across the wire both
        # happen server-side, which is what the flags mean to the planner.
        assert remote.native_select
        assert remote.native_projection
        # Honest pass-through for powers the wire cannot confer.
        assert remote.native_range == inner.capabilities().native_range
        assert remote.signals_writes == inner.capabilities().signals_writes
        assert (
            remote.splittable_scans == inner.capabilities().splittable_scans
        )

    def test_remote_capabilities_are_cached(self, loopback):
        _, client = loopback
        first = client.capabilities()
        assert client.capabilities() is first
