"""KVStoreLQP unit tests: key-only native access paths.

Federation-level equivalence lives in
``tests/property/test_backend_equivalence.py``; this module pins the
store's own contract — point lookups, sorted-index range slicing with
its fallbacks, and the upsert/key-integrity rules.
"""

import pytest

from repro.backends import KVStoreLQP
from repro.core.predicate import Theta
from repro.errors import ConstraintViolationError, UnknownRelationError
from repro.lqp.relational_lqp import RelationalLQP
from repro.relational.database import LocalDatabase
from repro.relational.schema import RelationSchema


def _database() -> LocalDatabase:
    db = LocalDatabase("KD")
    db.load(
        RelationSchema("USERS", ["UID", "NAME", "AGE"], key=["UID"]),
        [(3, "carol", 41), (1, "alice", 33), (2, "bob", None)],
    )
    db.load(
        RelationSchema("GRANTS", ["UID", "ROLE"], key=["UID", "ROLE"]),
        [(1, "admin"), (1, "dev"), (2, "dev")],
    )
    return db


@pytest.fixture()
def store():
    return KVStoreLQP.from_database(_database())


@pytest.fixture()
def reference():
    return RelationalLQP(_database())


class TestSchema:
    def test_every_relation_needs_a_key(self):
        store = KVStoreLQP("KD")
        with pytest.raises(ConstraintViolationError, match="primary key"):
            store.create(RelationSchema("KEYLESS", ["A", "B"]))

    def test_from_database_requires_keys_everywhere(self):
        db = LocalDatabase("BAD")
        db.load(RelationSchema("HEAP", ["A"]), [(1,)])
        with pytest.raises(ConstraintViolationError):
            KVStoreLQP.from_database(db)

    def test_duplicate_create_is_refused(self, store):
        with pytest.raises(ConstraintViolationError, match="already exists"):
            store.create(RelationSchema("USERS", ["UID"], key=["UID"]))

    def test_unknown_relation(self, store):
        with pytest.raises(UnknownRelationError):
            store.retrieve("NOPE")

    def test_capabilities_declare_key_only_power(self, store):
        capabilities = store.capabilities()
        assert not capabilities.native_select
        assert capabilities.native_range
        assert not capabilities.native_projection
        assert capabilities.splittable_scans
        assert capabilities.signals_writes


class TestPut:
    def test_put_upserts_by_key(self, store):
        store.put("USERS", [(2, "bob", 28)])
        assert store.cardinality_estimate("USERS") == 3
        assert store.select("USERS", "UID", Theta.EQ, 2).rows == ((2, "bob", 28),)

    def test_nil_key_is_refused(self, store):
        with pytest.raises(ConstraintViolationError, match="nil key"):
            store.put("USERS", [(None, "x", 1)])

    def test_degree_mismatch_is_refused(self, store):
        with pytest.raises(ConstraintViolationError, match="degree"):
            store.put("USERS", [(9, "x")])


class TestSelect:
    def test_point_lookup_on_the_key(self, store, reference):
        assert store.select("USERS", "UID", Theta.EQ, 1) == reference.select(
            "USERS", "UID", Theta.EQ, 1
        )

    def test_point_lookup_miss_is_empty(self, store):
        assert store.select("USERS", "UID", Theta.EQ, 99).cardinality == 0

    def test_unhashable_literal_matches_nothing(self, store):
        assert store.select("USERS", "UID", Theta.EQ, [1]).cardinality == 0

    def test_non_key_selection_scan_filters(self, store, reference):
        for theta, value in [(Theta.GT, 35), (Theta.NE, 33), (Theta.EQ, None)]:
            assert store.select("USERS", "AGE", theta, value) == (
                reference.select("USERS", "AGE", theta, value)
            )

    def test_composite_key_selection_scan_filters(self, store, reference):
        assert store.select("GRANTS", "UID", Theta.EQ, 1) == reference.select(
            "GRANTS", "UID", Theta.EQ, 1
        )


class TestRanges:
    @pytest.mark.parametrize(
        "lower,upper,include_nil",
        [(1, 3, False), (None, 2, False), (2, None, False), (None, None, True)],
    )
    def test_key_range_slices_match_the_reference(
        self, store, reference, lower, upper, include_nil
    ):
        expected = reference.retrieve_range(
            "USERS", "UID", lower=lower, upper=upper, include_nil=include_nil
        )
        got = store.retrieve_range(
            "USERS", "UID", lower=lower, upper=upper, include_nil=include_nil
        )
        assert got == expected

    def test_non_key_range_falls_back_to_the_scan(self, store, reference):
        expected = reference.retrieve_range(
            "USERS", "AGE", lower=30, upper=40, include_nil=True
        )
        assert (
            store.retrieve_range("USERS", "AGE", lower=30, upper=40, include_nil=True)
            == expected
        )

    def test_composite_key_range_falls_back_to_the_scan(self, store, reference):
        expected = reference.retrieve_range("GRANTS", "UID", lower=1, upper=2)
        assert store.retrieve_range("GRANTS", "UID", lower=1, upper=2) == expected

    def test_incomparable_bound_falls_back_to_the_scan(self, store, reference):
        expected = reference.retrieve_range("USERS", "UID", lower="a")
        assert store.retrieve_range("USERS", "UID", lower="a") == expected

    def test_range_projection(self, store, reference):
        expected = reference.retrieve_range(
            "USERS", "UID", lower=1, upper=3, columns=["NAME"]
        )
        got = store.retrieve_range("USERS", "UID", lower=1, upper=3, columns=["NAME"])
        assert got == expected


class TestCatalog:
    def test_stats_match_and_refresh(self, store, reference):
        assert store.relation_stats("USERS") == reference.relation_stats("USERS")
        store.put("USERS", [(9, "zed", 70)])
        assert store.relation_stats("USERS").columns["AGE"].maximum == 70
