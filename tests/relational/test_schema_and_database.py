"""Unit tests for local relation schemas and the LocalDatabase engine."""

import pytest

from repro.core.predicate import Theta
from repro.errors import (
    ConstraintViolationError,
    SchemaValidationError,
    UnknownRelationError,
)
from repro.relational.conditions import Comparison, Conjunction, TrueCondition
from repro.relational.database import LocalDatabase
from repro.relational.schema import RelationSchema


class TestRelationSchema:
    def test_basic(self):
        s = RelationSchema("ALUMNUS", ["AID#", "ANAME", "DEG", "MAJ"], key=["AID#"])
        assert s.degree == 4
        assert s.key == ("AID#",)
        assert s.key_indices() == (0,)

    def test_composite_key(self):
        s = RelationSchema("CAREER", ["AID#", "BNAME", "POS"], key=["AID#", "BNAME"])
        assert s.key_indices() == (0, 1)

    def test_key_must_exist(self):
        with pytest.raises(SchemaValidationError):
            RelationSchema("T", ["A"], key=["B"])

    def test_duplicate_key_attr_rejected(self):
        with pytest.raises(SchemaValidationError):
            RelationSchema("T", ["A", "B"], key=["A", "A"])

    def test_empty_name_rejected(self):
        with pytest.raises(SchemaValidationError):
            RelationSchema("", ["A"])

    def test_str_marks_key(self):
        s = RelationSchema("T", ["A", "B"], key=["A"])
        assert str(s) == "T(A*, B)"


class TestLocalDatabase:
    def setup_method(self):
        self.db = LocalDatabase("AD")
        self.db.create(RelationSchema("BUSINESS", ["BNAME", "IND"], key=["BNAME"]))

    def test_create_and_names(self):
        assert self.db.relation_names() == ("BUSINESS",)
        assert "BUSINESS" in self.db

    def test_double_create_rejected(self):
        with pytest.raises(ConstraintViolationError):
            self.db.create(RelationSchema("BUSINESS", ["X"]))

    def test_insert_and_retrieve(self):
        self.db.insert("BUSINESS", [("IBM", "High Tech"), ("BP", "Energy")])
        assert self.db.relation("BUSINESS").cardinality == 2

    def test_insert_wrong_degree(self):
        with pytest.raises(ConstraintViolationError):
            self.db.insert("BUSINESS", [("IBM",)])

    def test_key_uniqueness_enforced(self):
        self.db.insert("BUSINESS", [("IBM", "High Tech")])
        with pytest.raises(ConstraintViolationError):
            self.db.insert("BUSINESS", [("IBM", "Energy")])

    def test_key_uniqueness_within_batch(self):
        with pytest.raises(ConstraintViolationError):
            self.db.insert("BUSINESS", [("IBM", "a"), ("IBM", "b")])

    def test_nil_key_rejected(self):
        with pytest.raises(ConstraintViolationError):
            self.db.insert("BUSINESS", [(None, "Energy")])

    def test_unknown_relation(self):
        with pytest.raises(UnknownRelationError):
            self.db.relation("NOPE")
        with pytest.raises(UnknownRelationError):
            self.db.schema("NOPE")

    def test_select(self):
        self.db.insert("BUSINESS", [("IBM", "High Tech"), ("BP", "Energy")])
        out = self.db.select("BUSINESS", "IND", Theta.EQ, "Energy")
        assert out.rows == (("BP", "Energy"),)

    def test_select_where_conjunction(self):
        self.db.insert("BUSINESS", [("IBM", "High Tech"), ("BP", "Energy")])
        condition = Conjunction(
            [
                Comparison("IND", Theta.EQ, "High Tech"),
                Comparison("BNAME", Theta.NE, "DEC"),
            ]
        )
        out = self.db.select_where("BUSINESS", condition)
        assert out.rows == (("IBM", "High Tech"),)

    def test_load_shortcut(self):
        db = LocalDatabase("CD")
        db.load(RelationSchema("FIRM", ["FNAME", "CEO"]), [("IBM", "John Ackers")])
        assert db.relation("FIRM").cardinality == 1


class TestConditions:
    def test_true_condition(self):
        assert TrueCondition().evaluate({}) is True
        assert TrueCondition().attributes() == ()

    def test_comparison_against_value(self):
        c = Comparison("DEG", Theta.EQ, "MBA")
        assert c.evaluate({"DEG": "MBA"})
        assert not c.evaluate({"DEG": "MS"})
        assert c.attributes() == ("DEG",)
        assert str(c) == 'DEG = "MBA"'

    def test_comparison_between_attributes(self):
        c = Comparison("A", Theta.LT, right_attribute="B")
        assert c.evaluate({"A": 1, "B": 2})
        assert c.attributes() == ("A", "B")
        assert str(c) == "A < B"

    def test_conjunction_all_must_hold(self):
        c = Conjunction([Comparison("A", Theta.EQ, 1), Comparison("B", Theta.EQ, 2)])
        assert c.evaluate({"A": 1, "B": 2})
        assert not c.evaluate({"A": 1, "B": 3})

    def test_empty_conjunction_is_true(self):
        c = Conjunction([])
        assert c.evaluate({"anything": 1})
        assert str(c) == "TRUE"

    def test_conjunction_attribute_dedup(self):
        c = Conjunction([Comparison("A", Theta.EQ, 1), Comparison("A", Theta.NE, 2)])
        assert c.attributes() == ("A",)
