"""Unit tests for the untagged local relation type."""

import pytest

from repro.errors import DegreeMismatchError, UnknownAttributeError
from repro.relational.relation import Relation


class TestConstruction:
    def test_rows_dedupe(self):
        r = Relation(["A"], [("x",), ("x",), ("y",)])
        assert r.cardinality == 2

    def test_degree_mismatch(self):
        with pytest.raises(DegreeMismatchError):
            Relation(["A", "B"], [("x",)])

    def test_iteration_order_is_insertion(self):
        r = Relation(["A"], [("b",), ("a",)])
        assert list(r) == [("b",), ("a",)]

    def test_truthy_when_empty(self):
        assert Relation(["A"])


class TestAccessors:
    def setup_method(self):
        self.r = Relation(["BNAME", "IND"], [("IBM", "High Tech"), ("BP", "Energy")])

    def test_column(self):
        assert self.r.column("IND") == ("High Tech", "Energy")

    def test_column_unknown(self):
        with pytest.raises(UnknownAttributeError):
            self.r.column("Z")

    def test_row_dict(self):
        assert self.r.row_dict(("IBM", "High Tech")) == {
            "BNAME": "IBM",
            "IND": "High Tech",
        }

    def test_degree_and_len(self):
        assert self.r.degree == 2
        assert len(self.r) == 2


class TestDerivation:
    def test_rename(self):
        r = Relation(["BNAME"], [("IBM",)]).rename({"BNAME": "ONAME"})
        assert r.attributes == ("ONAME",)

    def test_replace_rows(self):
        r = Relation(["A"], [("x",)]).replace_rows([("y",)])
        assert r.rows == (("y",),)

    def test_map_values(self):
        r = Relation(["A", "B"], [("x", "y")])
        out = r.map_values(lambda attr, value: f"{attr}:{value}")
        assert out.rows == (("A:x", "B:y"),)

    def test_equality_is_set_semantics(self):
        assert Relation(["A"], [("x",), ("y",)]) == Relation(["A"], [("y",), ("x",)])
        assert Relation(["A"], [("x",)]) != Relation(["B"], [("x",)])

    def test_hashable(self):
        assert len({Relation(["A"], [("x",)]), Relation(["A"], [("x",)])}) == 1
