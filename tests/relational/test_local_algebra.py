"""Unit tests for the untagged local relational algebra."""

import pytest

from repro.core.predicate import Theta
from repro.errors import (
    AttributeCollisionError,
    InvalidOperandError,
    UnionCompatibilityError,
)
from repro.relational import algebra
from repro.relational.conditions import Comparison, Conjunction
from repro.relational.relation import Relation


@pytest.fixture
def business():
    return Relation(
        ["BNAME", "IND"],
        [("IBM", "High Tech"), ("BP", "Energy"), ("DEC", "High Tech")],
    )


class TestSelect:
    def test_select_constant(self, business):
        out = algebra.select(business, "IND", Theta.EQ, "High Tech")
        assert set(out.rows) == {("IBM", "High Tech"), ("DEC", "High Tech")}

    def test_select_none_never_matches(self):
        r = Relation(["A"], [(None,), (1,)])
        assert algebra.select(r, "A", Theta.EQ, None).cardinality == 0

    def test_select_where(self, business):
        condition = Conjunction(
            [Comparison("IND", Theta.EQ, "High Tech"), Comparison("BNAME", Theta.NE, "IBM")]
        )
        out = algebra.select_where(business, condition)
        assert out.rows == (("DEC", "High Tech"),)


class TestProject:
    def test_projection_dedupes(self, business):
        out = algebra.project(business, ["IND"])
        assert set(out.rows) == {("High Tech",), ("Energy",)}

    def test_projection_order(self, business):
        out = algebra.project(business, ["IND", "BNAME"])
        assert out.attributes == ("IND", "BNAME")

    def test_empty_projection_rejected(self, business):
        with pytest.raises(InvalidOperandError):
            algebra.project(business, [])


class TestProductAndJoin:
    def test_product(self):
        a = Relation(["A"], [(1,), (2,)])
        b = Relation(["B"], [("x",)])
        out = algebra.product(a, b)
        assert set(out.rows) == {(1, "x"), (2, "x")}

    def test_product_collision(self):
        a = Relation(["A"], [(1,)])
        with pytest.raises(AttributeCollisionError):
            algebra.product(a, a)

    def test_equi_join_uses_index(self):
        left = Relation(["K", "V"], [(1, "a"), (2, "b")])
        right = Relation(["J", "W"], [(1, "x"), (3, "z")])
        out = algebra.join(left, right, "K", Theta.EQ, "J")
        assert out.rows == ((1, "a", 1, "x"),)

    def test_equi_join_none_keys_never_match(self):
        left = Relation(["K"], [(None,)])
        right = Relation(["J"], [(None,)])
        assert algebra.join(left, right, "K", Theta.EQ, "J").cardinality == 0

    def test_theta_join(self):
        left = Relation(["K"], [(1,), (5,)])
        right = Relation(["J"], [(3,)])
        out = algebra.join(left, right, "K", Theta.GT, "J")
        assert out.rows == ((5, 3),)

    def test_join_shared_attribute_rejected(self):
        left = Relation(["K", "X"], [(1, "a")])
        right = Relation(["J", "X"], [(1, "b")])
        with pytest.raises(AttributeCollisionError):
            algebra.join(left, right, "K", Theta.EQ, "J")


class TestSetOperators:
    def test_union_dedupes(self):
        a = Relation(["A"], [(1,), (2,)])
        b = Relation(["A"], [(2,), (3,)])
        assert algebra.union(a, b).cardinality == 3

    def test_union_incompatible(self):
        with pytest.raises(UnionCompatibilityError):
            algebra.union(Relation(["A"]), Relation(["B"]))

    def test_difference(self):
        a = Relation(["A"], [(1,), (2,)])
        b = Relation(["A"], [(2,)])
        assert algebra.difference(a, b).rows == ((1,),)

    def test_difference_incompatible(self):
        with pytest.raises(UnionCompatibilityError):
            algebra.difference(Relation(["A"]), Relation(["B"]))

    def test_rename(self, business):
        out = algebra.rename(business, {"BNAME": "ONAME"})
        assert out.attributes == ("ONAME", "IND")
