"""A real distributed federation: three LQP servers on loopback.

Everything the other examples do in-process, this one does over the wire:

1. each of the paper's three local databases (AD, PD, CD) is exposed by
   its own :class:`~repro.net.server.LQPServer` — a separate TCP endpoint,
   exactly the autonomous-source topology of the paper's Figure 1;
2. the PQP side registers them by ``polygen://host:port`` URL — the
   registry dials each server and learns the database name from its hello
   frame — and runs the paper's worked CEO query end-to-end, verifying the
   answer is tag-identical to the in-process federation;
3. a bulk source then shows what chunked streaming buys: first tuples of
   a large remote retrieve are usable at first-chunk latency, long before
   the whole result has crossed the wire;
4. the federation's stats report the new per-transport counters.

Run with::

    PYTHONPATH=src python examples/remote_federation.py
"""

import time

from repro.datasets.paper import (
    paper_databases,
    paper_identity_resolver,
    paper_polygen_schema,
)
from repro.lqp.registry import LQPRegistry
from repro.lqp.relational_lqp import RelationalLQP
from repro.net import LQPServer, RemoteLQP
from repro.pqp.processor import PolygenQueryProcessor
from repro.relational.database import LocalDatabase
from repro.relational.schema import RelationSchema
from repro.service.federation import PolygenFederation

PAPER_SQL = """
SELECT ONAME, CEO
FROM PORGANIZATION, PALUMNUS
WHERE CEO = ANAME AND ONAME IN
    (SELECT ONAME FROM PCAREER WHERE AID# IN
        (SELECT AID# FROM PALUMNUS WHERE DEGREE = "MBA"))
"""

BULK_ROWS = 20_000


def main() -> None:
    schema = paper_polygen_schema()

    # -- 1. three autonomous sources, each behind its own TCP server -------
    servers = [
        LQPServer(RelationalLQP(database)).start()
        for database in paper_databases().values()
    ]
    print("Local databases now serving on loopback:")
    for server in servers:
        print(f"  {server.database}: {server.url}")

    # -- 2. a federation over nothing but URLs ------------------------------
    registry = LQPRegistry()
    for server in servers:
        registry.register(server.url, concurrency=4, timeout=10.0)

    with PolygenFederation(
        schema, registry, resolver=paper_identity_resolver()
    ) as federation:
        with federation.session(name="wan-client") as session:
            result = session.execute(PAPER_SQL)
        print("\nThe paper's CEO query, executed over the network:")
        print(result.render())

        reference = _in_process_reference().run_sql(PAPER_SQL)
        identical = (
            result.relation == reference.relation
            and result.lineage == reference.lineage
        )
        print(f"\ntag-identical to the in-process federation: {identical}")

        # -- 4. the transport counters show what crossed the wire ----------
        print("\nFederation stats (note the per-transport counters):")
        print(federation.stats().render())

    for server in servers:
        server.stop()

    # -- 3. streamed vs batch: first tuples before the last ones land ------
    bulk = LocalDatabase("BULK")
    bulk.load(
        RelationSchema("EVENTS", ["EID", "KIND", "WEIGHT"], key=["EID"]),
        [(i, f"kind-{i % 7}", float(i % 100)) for i in range(BULK_ROWS)],
    )
    with LQPServer(RelationalLQP(bulk), chunk_size=256) as bulk_server:
        with RemoteLQP(bulk_server.url, timeout=30.0) as remote:
            began = time.perf_counter()
            whole = remote.retrieve("EVENTS")
            batch_seconds = time.perf_counter() - began

            first_chunk_at = []

            def on_chunk(attributes, rows):
                if not first_chunk_at:
                    first_chunk_at.append(time.perf_counter() - began)

            began = time.perf_counter()
            streamed = remote.retrieve_stream("EVENTS", on_chunk)
            stream_seconds = time.perf_counter() - began

    assert streamed == whole
    print(
        f"\nStreaming a {BULK_ROWS}-tuple remote relation "
        f"(256-tuple chunks):"
    )
    print(f"  whole result landed after  {batch_seconds * 1e3:8.1f} ms")
    print(
        f"  first rows usable after    {first_chunk_at[0] * 1e3:8.1f} ms "
        f"(complete after {stream_seconds * 1e3:.1f} ms)"
    )
    print(
        f"  first-row latency improvement: "
        f"{batch_seconds / first_chunk_at[0]:.1f}x"
    )


def _in_process_reference() -> PolygenQueryProcessor:
    registry = LQPRegistry()
    for database in paper_databases().values():
        registry.register(RelationalLQP(database))
    return PolygenQueryProcessor(
        schema=paper_polygen_schema(),
        registry=registry,
        resolver=paper_identity_resolver(),
    )


if __name__ == "__main__":
    main()
