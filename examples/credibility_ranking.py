#!/usr/bin/env python3
"""Source credibility: ranking, filtering and conflict resolution.

"Knowing the data source credibility will enable the user or the query
processor to further resolve potential conflicts amongst the data retrieved
from different sources" (paper, §I).  This example:

1. scores the paper's answer tuples by the credibility of their sources,
2. shows how corroboration (multiple origins) raises a cell's credibility,
3. resolves a synthetic cross-database conflict with credibility-driven
   Merge — where the paper's plain Coalesce would drop the tuple entirely.

Run:  python examples/credibility_ranking.py
"""

from repro.core.relation import PolygenRelation
from repro.datasets.paper import build_paper_federation
from repro.display.render import render_relation
from repro.quality.credibility import CredibilityModel, credibility_merge

PAPER_SQL = """
SELECT ONAME, CEO
FROM PORGANIZATION, PALUMNUS
WHERE CEO = ANAME AND ONAME IN
    (SELECT ONAME FROM PCAREER WHERE AID# IN
        (SELECT AID# FROM PALUMNUS WHERE DEGREE = "MBA"))
"""


def main() -> None:
    pqp = build_paper_federation()
    result = pqp.run_sql(PAPER_SQL)

    # The analyst trusts the commercial Company Database most, the Alumni
    # Database a lot, and the student-maintained Placement Database least.
    model = CredibilityModel({"CD": 0.95, "AD": 0.80, "PD": 0.40})

    print("Tagged answer (paper, Table 9)")
    print("------------------------------")
    print(render_relation(result.relation, sort=True))
    print()

    print("Credibility ranking (weakest-link tuple scores)")
    print("-----------------------------------------------")
    for score, row in model.rank(result.relation):
        organization, ceo = row.data
        print(f"  {score:0.2f}  {organization} — {ceo}")
    print()

    print("Corroboration raises credibility")
    print("--------------------------------")
    citicorp = [t for t in result.relation if t.data[0] == "Citicorp"][0]
    oname_cell, ceo_cell = citicorp[0], citicorp[1]
    print(
        f"  Citicorp (ONAME) is corroborated by {sorted(oname_cell.origins)} "
        f"→ score {model.cell_score(oname_cell):0.2f}"
    )
    print(
        f"  John Reed (CEO) rests on {sorted(ceo_cell.origins)} alone "
        f"→ score {model.cell_score(ceo_cell):0.2f}"
    )
    print()

    print("Conflict resolution (the data-conflict follow-up the paper anticipates)")
    print("------------------------------------------------------------------------")
    # Two databases disagree about Oracle's headquarters state.
    west_coast_db = PolygenRelation.from_data(
        ["ONAME", "HEADQUARTERS"], [["Oracle", "CA"]], origins=["CD"]
    )
    stale_db = PolygenRelation.from_data(
        ["ONAME", "HEADQUARTERS"], [["Oracle", "NY"]], origins=["PD"]
    )
    from repro.core.derived import merge

    plain = merge([stale_db, west_coast_db], ["ONAME"])
    print(f"  Plain polygen Merge keeps {plain.cardinality} tuple(s) — the")
    print("  paper's Coalesce drops conflicting tuples outright.")
    resolved = credibility_merge([stale_db, west_coast_db], ["ONAME"], model)
    print("  Credibility-driven Merge instead keeps the credible side:")
    print()
    print(render_relation(resolved))
    row = resolved.tuples[0]
    print()
    print(
        f"  The datum came from {sorted(row[1].origins)}; the out-voted PD is\n"
        f"  recorded as an intermediate source: {sorted(row[1].intermediates)}."
    )


if __name__ == "__main__":
    main()
