#!/usr/bin/env python3
"""The ComputerWorld CEO report, two ways (paper, §I vs §III).

The paper motivates source tagging with Sullivan-Trainor's special report:
find CEOs who graduated with an MBA.  Section I poses a simple polygen
query joining PORGANIZATION with PALUMNUS directly; Section III poses the
richer nested-IN variant.  This example runs both and shows how the §I
query exercises the *other* branch of the two-pass interpreter — the one
where both sides of a join still need LQP work (Figure 4's both-local
case), so FIRM and ALUMNUS are materialized before the PQP joins them.

Run:  python examples/ceo_report.py
"""

from repro.datasets.paper import build_paper_federation
from repro.display.render import render_relation

SECTION_ONE_SQL = """
SELECT CEO
FROM PORGANIZATION, PALUMNUS
WHERE CEO = ANAME AND DEGREE = "MBA"
"""

#: The §I query expressed directly in the polygen algebra with the paper's
#: operand order (PORGANIZATION on the left), to force the both-sides-local
#: translation branch.
SECTION_ONE_ALGEBRA = '((PORGANIZATION [CEO = ANAME] PALUMNUS) [DEGREE = "MBA"]) [CEO]'

SECTION_THREE_SQL = """
SELECT ONAME, CEO
FROM PORGANIZATION, PALUMNUS
WHERE CEO = ANAME AND ONAME IN
    (SELECT ONAME FROM PCAREER WHERE AID# IN
        (SELECT AID# FROM PALUMNUS WHERE DEGREE = "MBA"))
"""


def main() -> None:
    pqp = build_paper_federation()

    print("Section I query (SQL translation: select first, then join)")
    print("-----------------------------------------------------------")
    via_sql = pqp.run_sql(SECTION_ONE_SQL)
    print(via_sql.expression.render())
    print()
    print(via_sql.iom.render())
    print()
    print(render_relation(via_sql.relation, sort=True))
    print()

    print("Section I query (paper's operand order: both sides local)")
    print("----------------------------------------------------------")
    via_algebra = pqp.run_algebra(SECTION_ONE_ALGEBRA)
    print(via_algebra.expression.render())
    print()
    print(via_algebra.iom.render())
    print()
    print(render_relation(via_algebra.relation, sort=True))
    print()

    print("Section III query (nested IN; the full worked example)")
    print("-------------------------------------------------------")
    full = pqp.run_sql(SECTION_THREE_SQL)
    print(render_relation(full.relation, sort=True))
    print()

    ceos_simple = {row.data[0] for row in via_sql.relation}
    ceos_full = {row.data[1] for row in full.relation}
    print(f"CEOs from the §I query:   {sorted(ceos_simple)}")
    print(f"CEOs from the §III query: {sorted(ceos_full)}")
    print()
    print(
        "Both phrasings find the same three MBA CEOs; the §III variant also\n"
        "verifies (via PCAREER) that each one actually holds the CEO position\n"
        "recorded by the Alumni Database."
    )


if __name__ == "__main__":
    main()
