#!/usr/bin/env python3
"""A synthetic federation "with hundreds of databases" — well, twelve.

The paper closes §IV with: "In a federated database environment with
hundreds of databases, the data source and intermediate source information
can be very valuable to the user as well as the polygen query processor."
This example generates a 12-database federation with overlapping coverage
of 300 organizations, merges them through the polygen pipeline, and uses
the tags to answer questions no untagged system can:

- which databases actually contributed to the answer,
- which organizations are known to one database only (fragile facts),
- which are corroborated by many (robust facts),
- how much LQP traffic the optimizer saved,
- and — with every database injecting realistic per-query latency — how
  the concurrent DAG runtime overlaps the twelve autonomous sources,
  printing the scheduling simulator's predicted makespan next to the
  measured one.

Run:  python examples/federation_at_scale.py
"""

from collections import Counter

from repro.datasets.generators import FederationSpec, generate_federation
from repro.lqp.cost import CostModel, LatencyLQP
from repro.lqp.registry import LQPRegistry
from repro.lqp.relational_lqp import RelationalLQP
from repro.pqp.explain import source_summary
from repro.pqp.processor import PolygenQueryProcessor
from repro.pqp.schedule import schedule_plan, validate_against_trace
from repro.service.federation import PolygenFederation

SPEC = FederationSpec(
    databases=12,
    organizations=300,
    coverage=0.25,
    people_per_database=40,
    seed=42,
)

#: Simulated network/engine latency per local query, in seconds.
LATENCY = 0.02


def latency_processor(federation, **kwargs) -> PolygenQueryProcessor:
    """A PQP whose LQPs each sleep LATENCY per query — autonomous sources
    that are genuinely worth overlapping."""
    registry = LQPRegistry()
    for database in federation.databases.values():
        registry.register(LatencyLQP(RelationalLQP(database), per_query=LATENCY))
    return PolygenQueryProcessor(federation.schema, registry, **kwargs)


def main() -> None:
    federation = generate_federation(SPEC)
    pqp = federation.processor(concurrent=True)

    print(
        f"Federation: {SPEC.databases} databases, universe of "
        f"{SPEC.organizations} organizations, {SPEC.coverage:.0%} coverage each"
    )
    print()

    result = pqp.run_algebra('(GORGANIZATION [INDUSTRY = "Banking"]) [NAME, INDUSTRY]')
    relation = result.relation

    print(f"Banking organizations found: {relation.cardinality}")
    print(source_summary(relation))
    print()

    corroboration = Counter(len(row[0].origins) for row in relation)
    print("Corroboration profile (how many databases know each organization):")
    for sources, count in sorted(corroboration.items()):
        print(f"  known to {sources:2d} database(s): {count} organizations")
    print()

    fragile = [row.data[0] for row in relation if len(row[0].origins) == 1]
    print(f"Fragile facts (single-source organizations): {len(fragile)}")
    for name in sorted(fragile)[:5]:
        row = [r for r in relation if r.data[0] == name][0]
        (only_db,) = row[0].origins
        print(f"  {name} — only {only_db} knows it")
    if len(fragile) > 5:
        print(f"  … and {len(fragile) - 5} more")
    print()

    stats = pqp.registry.total_stats()
    print("LQP traffic for this query:")
    print(f"  local queries: {stats.queries}")
    print(f"  tuples shipped: {stats.tuples_shipped}")
    if result.optimization:
        print(
            f"  optimizer: {result.optimization.retrieves_deduplicated} retrieves "
            f"and {result.optimization.merges_deduplicated} merges deduplicated, "
            f"{result.optimization.rows_pruned} plan rows pruned"
        )
    print()

    print("Cross-database join: who works at a Banking organization?")
    print("----------------------------------------------------------")
    # Twelve per-scheme queries — one per person database — submitted
    # together to a multi-user federation service: up to six run at once,
    # all sharing one long-lived per-database worker pool.
    banking_rows = []
    with PolygenFederation(
        federation.schema, pqp.registry, max_concurrent_queries=6
    ) as service:
        with service.session(name="banking-audit") as session:
            handles = [
                session.submit(
                    f'(GPERSON{index:02d} [EMPLOYER = NAME] '
                    f'(GORGANIZATION [INDUSTRY = "Banking"])) [PNAME, EMPLOYER]'
                )
                for index in range(SPEC.databases)
            ]
            for handle in handles:
                banking_rows.extend(handle.result().relation.tuples)
    print(f"  people employed in Banking across the federation: {len(banking_rows)}")
    sample = banking_rows[0]
    print(
        f"  e.g. {sample.data[0]} at {sample.data[1]} "
        f"(employer datum from {sorted(sample[1].origins)}, "
        f"mediated by {sorted(sample[1].intermediates)})"
    )
    print()

    print(f"Concurrent runtime vs the model ({LATENCY * 1000:.0f} ms/query LQPs)")
    print("----------------------------------------------------------")
    query = "GORGANIZATION [NAME, INDUSTRY]"
    serial_run = latency_processor(federation).run_algebra(query)
    concurrent_pqp = latency_processor(federation, concurrent=True)
    concurrent_run = concurrent_pqp.run_algebra(query)
    assert concurrent_run.relation == serial_run.relation

    costs = {
        name: CostModel(per_query=LATENCY, per_tuple=0.0)
        for name in federation.database_names()
    }
    schedule = schedule_plan(
        concurrent_run.iom,
        concurrent_run.trace,
        local_costs=costs,
        pqp_cost_per_tuple=0.0,
        registry=concurrent_pqp.registry,
    )
    validation = validate_against_trace(schedule, concurrent_run.trace)
    print(f"  serial executor measured makespan:     {serial_run.trace.wall_clock:8.3f}s")
    print(f"  concurrent runtime measured makespan:  {validation.measured_makespan:8.3f}s")
    print(f"  scheduling model simulated makespan:   {validation.simulated_makespan:8.3f}s")
    print(
        f"  measured speedup {serial_run.trace.wall_clock / validation.measured_makespan:.1f}x, "
        f"model predicted {validation.simulated_speedup:.1f}x "
        f"over its simulated serial cost {validation.simulated_serial:.3f}s"
    )


if __name__ == "__main__":
    main()
