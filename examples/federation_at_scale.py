#!/usr/bin/env python3
"""A synthetic federation "with hundreds of databases" — well, twelve.

The paper closes §IV with: "In a federated database environment with
hundreds of databases, the data source and intermediate source information
can be very valuable to the user as well as the polygen query processor."
This example generates a 12-database federation with overlapping coverage
of 300 organizations, merges them through the polygen pipeline, and uses
the tags to answer questions no untagged system can:

- which databases actually contributed to the answer,
- which organizations are known to one database only (fragile facts),
- which are corroborated by many (robust facts),
- how much LQP traffic the optimizer saved.

Run:  python examples/federation_at_scale.py
"""

from collections import Counter

from repro.datasets.generators import FederationSpec, generate_federation
from repro.pqp.explain import source_summary

SPEC = FederationSpec(
    databases=12,
    organizations=300,
    coverage=0.25,
    people_per_database=40,
    seed=42,
)


def main() -> None:
    federation = generate_federation(SPEC)
    pqp = federation.processor()

    print(
        f"Federation: {SPEC.databases} databases, universe of "
        f"{SPEC.organizations} organizations, {SPEC.coverage:.0%} coverage each"
    )
    print()

    result = pqp.run_algebra('(GORGANIZATION [INDUSTRY = "Banking"]) [NAME, INDUSTRY]')
    relation = result.relation

    print(f"Banking organizations found: {relation.cardinality}")
    print(source_summary(relation))
    print()

    corroboration = Counter(len(row[0].origins) for row in relation)
    print("Corroboration profile (how many databases know each organization):")
    for sources, count in sorted(corroboration.items()):
        print(f"  known to {sources:2d} database(s): {count} organizations")
    print()

    fragile = [row.data[0] for row in relation if len(row[0].origins) == 1]
    print(f"Fragile facts (single-source organizations): {len(fragile)}")
    for name in sorted(fragile)[:5]:
        row = [r for r in relation if r.data[0] == name][0]
        (only_db,) = row[0].origins
        print(f"  {name} — only {only_db} knows it")
    if len(fragile) > 5:
        print(f"  … and {len(fragile) - 5} more")
    print()

    stats = pqp.registry.total_stats()
    print("LQP traffic for this query:")
    print(f"  local queries: {stats.queries}")
    print(f"  tuples shipped: {stats.tuples_shipped}")
    if result.optimization:
        print(
            f"  optimizer: {result.optimization.retrieves_deduplicated} retrieves "
            f"and {result.optimization.merges_deduplicated} merges deduplicated, "
            f"{result.optimization.rows_pruned} plan rows pruned"
        )
    print()

    print("Cross-database join: who works at a Banking organization?")
    print("----------------------------------------------------------")
    banking_rows = []
    for index in range(SPEC.databases):
        scheme = f"GPERSON{index:02d}"
        answer = pqp.run_algebra(
            f'({scheme} [EMPLOYER = NAME] (GORGANIZATION [INDUSTRY = "Banking"]))'
            " [PNAME, EMPLOYER]"
        )
        banking_rows.extend(answer.relation.tuples)
    print(f"  people employed in Banking across the federation: {len(banking_rows)}")
    sample = banking_rows[0]
    print(
        f"  e.g. {sample.data[0]} at {sample.data[1]} "
        f"(employer datum from {sorted(sample[1].origins)}, "
        f"mediated by {sorted(sample[1].intermediates)})"
    )


if __name__ == "__main__":
    main()
