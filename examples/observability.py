"""Unified telemetry over a distributed federation.

The paper's worked CEO query runs against two loopback LQP servers (AD
and CD over TCP, PD in-process), and the federation's three telemetry
surfaces show what happened:

1. **one stitched trace** — the coordinator's ``query`` span with the
   pipeline stages and per-row spans underneath, plus the *server-side*
   spans each :class:`~repro.net.server.LQPServer` opened, shipped back
   on the wire and stitched into the same tree (``[remote]``);
2. **the slow-query log** — with a deliberately tiny ``slow_query_ms``
   threshold the query trips the structured event log, recording its
   plan fingerprint, cache disposition, per-LQP busy time and the
   source tags it consulted;
3. **the metrics registry** — Prometheus text exposition with query
   counters, per-source-tag counters and the latency histogram.

Run with::

    PYTHONPATH=src python examples/observability.py
"""

from repro.datasets.paper import (
    paper_databases,
    paper_identity_resolver,
    paper_polygen_schema,
)
from repro.display.trace import render_span_tree, render_timeline
from repro.lqp.registry import LQPRegistry
from repro.lqp.relational_lqp import RelationalLQP
from repro.net import LQPServer
from repro.service.federation import PolygenFederation

PAPER_SQL = """
SELECT ONAME, CEO
FROM PORGANIZATION, PALUMNUS
WHERE CEO = ANAME AND ONAME IN
    (SELECT ONAME FROM PCAREER WHERE AID# IN
        (SELECT AID# FROM PALUMNUS WHERE DEGREE = "MBA"))
"""


def main() -> None:
    # -- two sources behind real TCP servers, one in-process ----------------
    databases = paper_databases()
    servers = [
        LQPServer(RelationalLQP(databases[name])).start() for name in ("AD", "CD")
    ]
    registry = LQPRegistry()
    for server in servers:
        registry.register(server.url, timeout=10.0)
    registry.register(RelationalLQP(databases["PD"]))
    print("Sources: " + ", ".join(
        f"{s.database} @ {s.url}" for s in servers
    ) + ", PD in-process")

    with PolygenFederation(
        paper_polygen_schema(), registry, resolver=paper_identity_resolver()
    ) as federation:
        # A 0ms threshold makes every query "slow" — handy for a demo.
        with federation.session(
            name="analyst", slow_query_ms=0.0
        ) as session:
            result = session.execute(PAPER_SQL)
        print("\nThe paper's CEO query, over the wire:")
        print(result.render())

        # -- 1. one stitched trace: coordinator + server-side spans ---------
        remote = [span for span in result.trace.spans if span.remote]
        print(
            f"\nStitched trace: {len(result.trace.spans)} spans, "
            f"{len(remote)} shipped back by the LQP servers"
        )
        print(render_span_tree(result, attributes=False))
        print("\nTimeline (* = server-side span):")
        print(render_timeline(result, width=48))

        # -- 2. the slow-query log ------------------------------------------
        entry = federation.events.records("slow_query")[-1]
        print("\nSlow-query log entry:")
        for key in (
            "session", "engine", "elapsed_ms", "cache", "fingerprint",
            "busy_by_location", "sources",
        ):
            print(f"  {key}: {entry[key]}")

        # -- 3. the metrics registry ----------------------------------------
        text = federation.metrics_text()
        wanted = (
            "polygen_queries_total",
            "polygen_source_consulted_total",
            "polygen_query_seconds_bucket",
            "polygen_slow_queries_total",
            "polygen_transport_requests",
        )
        print("\nMetrics snapshot (selected families):")
        for line in text.splitlines():
            if line.startswith(wanted):
                print(f"  {line}")

    for server in servers:
        server.stop()


if __name__ == "__main__":
    main()
