#!/usr/bin/env python3
"""The federation as a service: sessions, handles, cursors, stats.

The paper's PQP (Figure 2) is a system that serves *many users* over a
federation of autonomous databases.  This example runs it that way: one
long-lived :class:`~repro.service.federation.PolygenFederation` over the
paper's three databases (each injecting a little latency, as a real
autonomous source would), three user sessions submitting queries
concurrently, a streaming cursor, a per-call option override, and the
service's own accounting at the end.

Run:  python examples/federation_service.py
"""

from repro.datasets.paper import (
    paper_databases,
    paper_identity_resolver,
    paper_polygen_schema,
)
from repro.lqp.cost import LatencyLQP
from repro.lqp.registry import LQPRegistry
from repro.lqp.relational_lqp import RelationalLQP
from repro.service.federation import PolygenFederation

#: Simulated per-query latency of each autonomous database, in seconds.
LATENCY = 0.01

PAPER_SQL = """
SELECT ONAME, CEO
FROM PORGANIZATION, PALUMNUS
WHERE CEO = ANAME AND ONAME IN
    (SELECT ONAME FROM PCAREER WHERE AID# IN
        (SELECT AID# FROM PALUMNUS WHERE DEGREE = "MBA"))
"""


def main() -> None:
    registry = LQPRegistry()
    for database in paper_databases().values():
        registry.register(LatencyLQP(RelationalLQP(database), per_query=LATENCY))

    with PolygenFederation(
        paper_polygen_schema(),
        registry,
        resolver=paper_identity_resolver(),
        max_concurrent_queries=8,
    ) as federation:
        print("Three users, one federation, queries in flight together")
        print("-------------------------------------------------------")
        alice = federation.session(name="alice")
        bob = federation.session(name="bob")
        carol = federation.session(name="carol", engine="serial")

        # All three submitted before any result is awaited.
        mba_ceos = alice.submit(PAPER_SQL)
        banking = bob.submit('(PORGANIZATION [INDUSTRY = "High Tech"]) [ONAME, INDUSTRY]')
        serial_run = carol.submit('(PCAREER [POSITION = "CEO"]) [ONAME]')

        print("alice — the paper's §I query (Table 9):")
        for row in mba_ceos.result().relation:
            print(f"  {row.data[0]}, CEO {row.data[1]}")

        print("bob — streaming High Tech organizations through a cursor:")
        cursor = banking.cursor()
        while True:
            batch = cursor.fetchmany(2)
            if not batch:
                break
            for row in batch:
                print(
                    f"  {row.data[0]} (origins {sorted(row[0].origins)})"
                )

        print("carol — serial engine by session option override:")
        workers = {t.worker for t in serial_run.result().trace.timings.values()}
        print(
            f"  {serial_run.result().relation.cardinality} organizations with a CEO"
            f" on record, executed by {sorted(workers)}"
        )
        print()

        print("Scheduling model vs what the service measured (alice's query)")
        from repro.lqp.cost import CostModel

        costs = {
            name: CostModel(per_query=LATENCY, per_tuple=0.0)
            for name in registry.names()
        }
        validation = federation.validate(
            mba_ceos.result(), local_costs=costs, pqp_cost_per_tuple=0.0
        )
        print(f"  measured makespan:  {validation.measured_makespan:.3f}s")
        print(f"  simulated makespan: {validation.simulated_makespan:.3f}s")
        print()

        print("Federation stats")
        print("----------------")
        print(federation.stats().render())


if __name__ == "__main__":
    main()
