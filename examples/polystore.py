"""A polystore federation: three backends, one paper query, identical tags.

The paper's premise is that the PQP never cares what a local database
*is* — "to the PQP, each LQP behaves as a local relational system" (§I).
This example makes that concrete with three genuinely different engines:

1. **AD lives in SQLite** (:class:`~repro.backends.SqliteLQP`): a real
   SQL engine in a real file; selections, ranges and projections compile
   to ``WHERE`` clauses and run inside the engine;
2. **PD lives in an append-only log**
   (:class:`~repro.backends.LogStoreLQP`): JSONL segments replayed into
   an index, every query a scan-filter;
3. **CD stays in memory** (:class:`~repro.lqp.RelationalLQP`): the
   reproduction's reference engine.

Each backend declares its native powers through its
:class:`~repro.lqp.Capabilities`, the optimizer pushes work only where
the capability exists, and the paper's worked CEO query comes back
**tag-identical** to the all-in-memory answer — same rows, same source
tags — while the transfer counters show each backend shipping its share.

Run with::

    PYTHONPATH=src python examples/polystore.py
"""

import tempfile

from repro.backends import LogStoreLQP, SqliteLQP
from repro.display.render import render_relation
from repro.datasets.paper import (
    paper_databases,
    paper_identity_resolver,
    paper_polygen_schema,
)
from repro.lqp.registry import LQPRegistry
from repro.lqp.relational_lqp import RelationalLQP
from repro.pqp.processor import PolygenQueryProcessor

PAPER_SQL = """
SELECT ONAME, CEO
FROM PORGANIZATION, PALUMNUS
WHERE CEO = ANAME AND ONAME IN
    (SELECT ONAME FROM PCAREER WHERE AID# IN
        (SELECT AID# FROM PALUMNUS WHERE DEGREE = "MBA"))
"""

CAPABILITY_COLUMNS = (
    "native_select",
    "native_range",
    "native_projection",
    "splittable_scans",
    "signals_writes",
)


def capability_matrix(lqps) -> str:
    header = f"{'backend':<24}" + "".join(f"{c:<18}" for c in CAPABILITY_COLUMNS)
    lines = [header, "-" * len(header)]
    for label, lqp in lqps:
        cells = lqp.capabilities().to_dict()
        lines.append(
            f"{label:<24}"
            + "".join(
                f"{'yes' if cells[c] else '-':<18}" for c in CAPABILITY_COLUMNS
            )
        )
    return "\n".join(lines)


def main() -> None:
    databases = paper_databases()
    workdir = tempfile.mkdtemp(prefix="polygen-polystore-")

    # -- 1. one database per storage technology -----------------------------
    ad = SqliteLQP.from_database(databases["AD"], f"{workdir}/ad.db")
    pd = LogStoreLQP.from_database(databases["PD"], f"{workdir}/pd-log")
    cd = RelationalLQP(databases["CD"])
    print("The paper's three sources, three storage technologies:")
    print(f"  AD: sqlite file   {ad.path}")
    print(f"  PD: jsonl log     {pd.path} ({pd.segment_count()} segment(s))")
    print(f"  CD: in-memory     {cd.name}")
    print()
    print(capability_matrix([("AD (sqlite)", ad), ("PD (log)", pd), ("CD (memory)", cd)]))
    print()

    # -- 2. the paper's CEO query across all three --------------------------
    registry = LQPRegistry()
    for lqp in (ad, pd, cd):
        registry.register(lqp)
    polystore = PolygenQueryProcessor(
        schema=paper_polygen_schema(),
        registry=registry,
        resolver=paper_identity_resolver(),
        pushdown=True,
        prune_projections=True,
    )
    result = polystore.run_sql(PAPER_SQL)
    print("CEO query over the polystore (Table 9):")
    print(render_relation(result.relation, sort=True))
    print()

    # -- 3. tag-identical to the all-in-memory federation -------------------
    memory_registry = LQPRegistry()
    for database in databases.values():
        memory_registry.register(RelationalLQP(database))
    baseline = PolygenQueryProcessor(
        schema=paper_polygen_schema(),
        registry=memory_registry,
        resolver=paper_identity_resolver(),
        optimize=False,
    )
    reference = baseline.run_sql(PAPER_SQL)
    assert result.relation == reference.relation
    assert result.lineage == reference.lineage
    print("Tag-identical to the all-in-memory baseline: data, headings, tags.")
    print()

    # -- 4. what each backend actually shipped -------------------------------
    print("Per-backend transfer counters:")
    for name, stats in sorted(registry.stats().items()):
        print(
            f"  {name}: {stats.queries} local queries, "
            f"{stats.tuples_shipped} tuples shipped"
        )

    polystore.close()
    baseline.close()
    ad.close()
    pd.close()


if __name__ == "__main__":
    main()
