#!/usr/bin/env python3
"""Heterogeneous access interfaces behind uniform LQPs.

The paper's prototype wrapped sources as different as I.P. Sharp's
proprietary query language and Finsbury's menu-driven interface: "To the
PQP, each LQP behaves as a local relational system."  This example rebuilds
the Company Database as a *CSV document source* — a stand-in for such a
foreign interface — registers it next to the in-memory relational AD and
PD, and runs the paper's query unchanged.  Same plan, same tagged answer.

Run:  python examples/heterogeneous_sources.py
"""

from repro.datasets.paper import (
    build_paper_federation,
    paper_databases,
    paper_identity_resolver,
    paper_polygen_schema,
)
from repro.display.render import render_relation
from repro.lqp.csv_lqp import CsvLQP
from repro.lqp.registry import LQPRegistry
from repro.lqp.relational_lqp import RelationalLQP
from repro.pqp.processor import PolygenQueryProcessor

PAPER_SQL = """
SELECT ONAME, CEO
FROM PORGANIZATION, PALUMNUS
WHERE CEO = ANAME AND ONAME IN
    (SELECT ONAME FROM PCAREER WHERE AID# IN
        (SELECT AID# FROM PALUMNUS WHERE DEGREE = "MBA"))
"""

#: The Company Database as CSV documents — exactly the paper's FIRM and
#: FINANCE instance data, now behind a file-ish interface.
FIRM_CSV = """FNAME,CEO,HQ
AT&T,Robert Allen,"NY, NY"
Langley Castle,Stu Madnick,"Cambridge, MA"
Banker's Trust,Charles Sanford,"NY, NY"
CitiCorp,John Reed,"NY, NY"
Ford,Donald Peterson,"Dearborn, MI"
IBM,John Ackers,"Armonk, NY"
Apple,John Sculley,"Cupertino, CA"
Oracle,Lawrence Ellison,"Belmont, CA"
DEC,Ken Olsen,"Maynard, MA"
Genentech,Bob Swanson,"So. San Francisco, CA"
"""

FINANCE_CSV = """FNAME,YR,PROFIT
AT&T,1989,-1.7 bil
Langley Castle,1989,1 mil
Banker's Trust,1989,648 mil
CitiCorp,1989,1.7 bil
Ford,1989,5.3 bil
IBM,1989,5.5 bil
Apple,1989,400 mil
Oracle,1989,43 mil
DEC,1989,1.3 bil
Genentech,1989,21 mil
"""


def main() -> None:
    databases = paper_databases()
    registry = LQPRegistry()
    registry.register(RelationalLQP(databases["AD"]))
    registry.register(RelationalLQP(databases["PD"]))
    registry.register(
        CsvLQP("CD", {"FIRM": FIRM_CSV, "FINANCE": FINANCE_CSV}, infer_types=False)
    )

    heterogeneous = PolygenQueryProcessor(
        schema=paper_polygen_schema(),
        registry=registry,
        resolver=paper_identity_resolver(),
    )
    homogeneous = build_paper_federation()

    print("CD is now a CSV-document source behind the same LQP contract.")
    print()
    print("Answer over the heterogeneous federation")
    print("----------------------------------------")
    mixed = heterogeneous.run_sql(PAPER_SQL)
    print(render_relation(mixed.relation, sort=True))
    print()

    reference = homogeneous.run_sql(PAPER_SQL)
    assert mixed.relation == reference.relation
    print("Identical — data, origins and intermediates — to the all-relational")
    print("federation: the PQP cannot tell the access interfaces apart.")
    print()

    profits = heterogeneous.run_sql(
        'SELECT ONAME, PROFIT FROM PFINANCE WHERE YEAR = 1989'
    )
    print("Domain mapping still applies at the CSV boundary (PROFIT in $):")
    for row in profits.relation.sorted_by_data().tuples[:4]:
        name, profit = row.data
        print(f"  {name:16s} {profit:>14,.0f}")


if __name__ == "__main__":
    main()
