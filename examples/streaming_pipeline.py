"""End-to-end pipelined streaming: first-row latency on a million-tuple scan.

A single remote source serves a 10^6-tuple relation; the client is three
lines — ``repro.connect(url)``, ``session.submit``, ``cursor.chunks()``.
The demo measures what the streaming pipeline buys:

1. **first-row latency** — the first columnar batch is usable after one
   chunk's work at every layer (server slice → wire frame → executor
   select/project → cursor), while the whole-result path must wait for
   the entire scan to cross the wire;
2. **negotiated binary wire format** — the connection speaks binary
   columnar v2 frames (negotiated at hello, JSON v1 kept as fallback),
   and the transport counters show the byte savings against a JSON-forced
   connection carrying identical rows.

Run with::

    PYTHONPATH=src python examples/streaming_pipeline.py

``STREAMING_PIPELINE_ROWS`` scales the relation (default 1,000,000).
"""

import os
import time

import repro
from repro.lqp.relational_lqp import RelationalLQP
from repro.net import LQPServer, RemoteLQP
from repro.catalog.mapping import AttributeMapping
from repro.catalog.schema import PolygenSchema
from repro.catalog.scheme import PolygenScheme
from repro.relational.database import LocalDatabase
from repro.relational.schema import RelationSchema

ROWS = int(os.environ.get("STREAMING_PIPELINE_ROWS", "1000000"))
SERVER_CHUNK = 8192
STREAM_CHUNK = 1024


def build_schema() -> PolygenSchema:
    schema = PolygenSchema()
    schema.add(
        PolygenScheme(
            "PREADING",
            {
                "RID": [AttributeMapping("SENSORS", "READINGS", "RID")],
                "STATION": [AttributeMapping("SENSORS", "READINGS", "STATION")],
                "VALUE": [AttributeMapping("SENSORS", "READINGS", "VALUE")],
            },
            primary_key=["RID"],
        )
    )
    return schema


def main() -> None:
    database = LocalDatabase("SENSORS")
    database.load(
        RelationSchema("READINGS", ["RID", "STATION", "VALUE"], key=["RID"]),
        [(i, f"station-{i % 50}", float(i % 997)) for i in range(ROWS)],
    )

    with LQPServer(
        RelationalLQP(database), chunk_size=SERVER_CHUNK, schema=build_schema()
    ) as server:
        print(f"Remote source serving {ROWS:,} tuples at {server.url}")

        # -- one call from URL to session: schema comes from the server ----
        with repro.connect(server.url, stream_chunk_size=STREAM_CHUNK) as session:
            query = "(PREADING [RID, VALUE])"

            began = time.perf_counter()
            handle = session.submit(query)
            whole = handle.result(timeout=300)
            whole_seconds = time.perf_counter() - began
            print(
                f"\nWhole-result delivery: {whole.relation.cardinality:,} "
                f"tuples in {whole_seconds:.2f}s"
            )

            began = time.perf_counter()
            handle = session.submit(query)
            batches = 0
            streamed = 0
            first_seconds = None
            for batch in handle.stream().chunks(timeout=300):
                if first_seconds is None:
                    first_seconds = time.perf_counter() - began
                batches += 1
                streamed += batch.cardinality
            total_seconds = time.perf_counter() - began
            print(
                f"Pipelined delivery:    first batch after {first_seconds*1e3:.1f}ms, "
                f"{streamed:,} tuples / {batches:,} batches in {total_seconds:.2f}s"
            )
            print(
                f"First-row latency improvement: "
                f"{whole_seconds / first_seconds:.0f}x"
            )
            assert streamed == whole.relation.cardinality

        # -- what the negotiated binary frames saved on the wire -----------
        sizes = {}
        for wire_format in ("binary", "json"):
            with RemoteLQP(server.url, wire_format=wire_format) as remote:
                for _ in remote.retrieve_chunks("READINGS", chunk_size=SERVER_CHUNK):
                    pass
                stats = remote.transport_stats()
                sizes[wire_format] = stats.bytes_received
                label = "binary v2" if stats.binary_chunks else "JSON v1  "
                print(
                    f"{label} scan: {stats.bytes_received:,} bytes received "
                    f"({stats.chunks} chunks, {stats.binary_chunks} binary)"
                )
        print(
            f"Bytes-on-wire reduction from the v2 format: "
            f"{sizes['json'] / sizes['binary']:.1f}x"
        )


if __name__ == "__main__":
    main()
