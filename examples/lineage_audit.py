#!/usr/bin/env python3
"""Lineage auditing: reverse mapping, provenance narratives, and the
cardinality inconsistency problem.

Implements the paper's §IV observation (3) — "the polygen query processor
can derive the information that Genentech is from the BNAME column,
BUSINESS relation in the Alumni Database and from the FNAME column, FIRM
relation in the Company Database … with a simple mapping" — and §V's
footnote 13, detecting referential integrity violations that autonomous
databases cannot prevent.

Run:  python examples/lineage_audit.py
"""

from repro.datasets.paper import build_paper_federation, paper_polygen_schema
from repro.pqp.explain import explain_result
from repro.quality.diagnostics import dangling_references

PAPER_SQL = """
SELECT ONAME, CEO
FROM PORGANIZATION, PALUMNUS
WHERE CEO = ANAME AND ONAME IN
    (SELECT ONAME FROM PCAREER WHERE AID# IN
        (SELECT AID# FROM PALUMNUS WHERE DEGREE = "MBA"))
"""


def main() -> None:
    pqp = build_paper_federation()
    schema = paper_polygen_schema()

    print("Provenance narrative for the paper's Table 9")
    print("============================================")
    result = pqp.run_sql(PAPER_SQL)
    print(explain_result(result, schema))
    print()

    print("Cardinality inconsistency audit (paper, §V footnote 13)")
    print("=======================================================")
    print(
        "Referential integrity is not enforceable across autonomous\n"
        "databases; with tags the PQP can at least locate the damage:\n"
    )

    career = pqp.run_algebra("PCAREER [ONAME, POSITION]").relation
    finance = pqp.run_algebra("PFINANCE [ONAME, YEAR]").relation
    organizations = pqp.run_algebra("PORGANIZATION [ONAME, INDUSTRY]").relation

    report_vs_finance = dangling_references(career, "ONAME", finance, "ONAME")
    print("CAREER.ONAME → FINANCE.ONAME")
    print(report_vs_finance.render())
    print()

    report_vs_orgs = dangling_references(career, "ONAME", organizations, "ONAME")
    print("CAREER.ONAME → merged PORGANIZATION.ONAME")
    print(report_vs_orgs.render())
    print()
    print(
        "The Company Database's FINANCE relation has no rows for MIT or BP\n"
        "(CD only tracks disclosing firms), while the merged PORGANIZATION\n"
        "covers every organization CAREER mentions — the tags say exactly\n"
        "which database to reconcile (AD) if the federation wants FINANCE\n"
        "coverage for them."
    )


if __name__ == "__main__":
    main()
