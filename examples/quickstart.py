#!/usr/bin/env python3
"""Quickstart: the paper's worked example, end to end.

Builds the three-database federation of Wang & Madnick (1990) — the Alumni
Database (AD), Placement Database (PD) and Company Database (CD) — and runs
the ComputerWorld "MBA CEOs" polygen query through the full pipeline:

    SQL → polygen algebra → POM (Table 1) → IOM (Table 3) → tagged answer
    (Table 9)

Every stage is printed in the paper's notation.

Run:  python examples/quickstart.py
"""

from repro.datasets.paper import build_paper_federation
from repro.display.render import render_relation
from repro.pqp.explain import source_summary

PAPER_SQL = """
SELECT ONAME, CEO
FROM PORGANIZATION, PALUMNUS
WHERE CEO = ANAME AND ONAME IN
    (SELECT ONAME FROM PCAREER WHERE AID# IN
        (SELECT AID# FROM PALUMNUS WHERE DEGREE = "MBA"))
"""


def main() -> None:
    pqp = build_paper_federation()

    print("SQL polygen query")
    print("-----------------")
    print(PAPER_SQL.strip())
    print()

    result = pqp.run_sql(PAPER_SQL)

    print("Polygen algebraic expression (paper, §III)")
    print("------------------------------------------")
    print(result.expression.render())
    print()

    print("Polygen Operation Matrix (paper, Table 1)")
    print("-----------------------------------------")
    print(result.pom.render())
    print()

    print("Intermediate Operation Matrix (paper, Table 3)")
    print("----------------------------------------------")
    print(result.iom.render())
    print()

    print("Source-tagged answer (paper, Table 9)")
    print("-------------------------------------")
    print(render_relation(result.relation, sort=True))
    print()

    print(source_summary(result.relation))
    print()
    print(
        "Reading the tags: Genentech's CEO, Bob Swanson, is a datum from CD\n"
        "(the Company Database), and AD served as an intermediate source —\n"
        "the Alumni Database selected *which* CEOs qualify without\n"
        "contributing the datum itself.  That is the paper's Data Source\n"
        "Tagging and Intermediate Source Tagging, reproduced."
    )


if __name__ == "__main__":
    main()
