"""Legacy setup shim.

The environment this reproduction targets may lack the ``wheel`` package, in
which case PEP 660 editable installs (``pip install -e .``) cannot build an
editable wheel.  ``python setup.py develop`` installs the package in
development mode using setuptools alone; all metadata lives in
``pyproject.toml``.
"""

from setuptools import setup

setup()
